#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test -q --workspace

echo "== smoke: fleetbench checkpoint / kill / resume"
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/indra-ci-smoke.XXXXXX")"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/fleetbench \
  --shards 2 --requests 8 --scale 30 --attack-per-mille 200 \
  --checkpoint-every 3 --store "$SMOKE_DIR" --halt-after 1
./target/release/fleetbench --resume "$SMOKE_DIR"

echo "== smoke: fleetbench chaos campaign (supervised revival)"
# The default chaos profile kills shards, tears journal tails and fires
# guest fault bursts; the run must finish on its own, actually revive
# something, and lose no request to quarantine or abandonment. The
# timeout guards against a supervisor livelock ever landing on main.
CHAOS_JSON="$SMOKE_DIR/BENCH_chaos_smoke.json"
timeout 300 ./target/release/fleetbench \
  --chaos default --quick --chaos-out "$CHAOS_JSON" \
  --assert-revivals-min 1 --assert-availability-min 0.99
grep -qF '"profile":"default"' "$CHAOS_JSON" || {
  echo "BENCH_chaos_smoke.json is missing the default profile run" >&2
  exit 1
}

echo "== smoke: simbench host-MIPS floor"
# Short deterministic workloads; --min-mips is a conservative regression
# guard (the optimized loop runs well above it), not a tight gate.
SIMBENCH_JSON="$SMOKE_DIR/BENCH_simcore.json"
./target/release/simbench --quick --out "$SIMBENCH_JSON" --min-mips 4
for key in '"bench":"simcore"' '"quick":true' '"workloads"' \
           '"name":"compute"' '"name":"memory"' '"name":"attack_mix"' \
           '"insns"' '"wall_seconds"' '"mips"'; do
  grep -qF "$key" "$SIMBENCH_JSON" || {
    echo "BENCH_simcore.json is missing $key" >&2
    exit 1
  }
done

echo "== static analysis: benign workloads lint clean"
# Every shipped service must pass the CFI lint with zero findings —
# `lint` exits nonzero on any finding, and we pin the empty findings
# array so a silently-degraded JSON shape can't fake a pass.
for app in ftpd httpd bind sendmail imap nfs; do
  LINT_JSON="$(./target/release/ir32 lint --app "$app" --scale 20 --json)"
  echo "$LINT_JSON" | grep -qF '"findings":[]' || {
    echo "ir32 lint --app $app reported findings: $LINT_JSON" >&2
    exit 1
  }
done

echo "== static analysis: fixtures trigger their expected findings"
# results/ANALYZE_expected.json maps fixture name -> finding kind; the
# analyzer must report exactly the advertised kind for each one.
FIXTURES="$(tr ',{}' '\n' < results/ANALYZE_expected.json | sed 's/"//g; s/^ *//' | grep ':')"
[ -n "$FIXTURES" ] || { echo "results/ANALYZE_expected.json parsed empty" >&2; exit 1; }
while IFS=: read -r name kind; do
  ./target/release/ir32 analyze --fixture "$name" --json \
    | grep -qF "\"kind\":\"$kind\"" || {
    echo "fixture $name did not report finding kind $kind" >&2
    exit 1
  }
done <<< "$FIXTURES"

echo "CI green."
