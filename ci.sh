#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release
# Workspace-member bins the smokes below invoke (simbench lives in
# crates/bench and is not built by the root-package build above).
cargo build --release --workspace

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test -q --workspace

echo "== smoke: fleetbench checkpoint / kill / resume"
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/indra-ci-smoke.XXXXXX")"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/fleetbench \
  --shards 2 --requests 8 --scale 30 --attack-per-mille 200 \
  --checkpoint-every 3 --store "$SMOKE_DIR" --halt-after 1
./target/release/fleetbench --resume "$SMOKE_DIR"

echo "== smoke: fleetbench chaos campaign (supervised revival)"
# The default chaos profile kills shards, tears journal tails and fires
# guest fault bursts; the run must finish on its own, actually revive
# something, and lose no request to quarantine or abandonment. The
# timeout guards against a supervisor livelock ever landing on main.
CHAOS_JSON="$SMOKE_DIR/BENCH_chaos_smoke.json"
timeout 300 ./target/release/fleetbench \
  --chaos default --quick --chaos-out "$CHAOS_JSON" \
  --assert-revivals-min 1 --assert-availability-min 0.99
grep -qF '"profile":"default"' "$CHAOS_JSON" || {
  echo "BENCH_chaos_smoke.json is missing the default profile run" >&2
  exit 1
}

echo "== smoke: replica voting masks stealth corruption"
# Three replicas per shard under the stealth profile: silent guest-memory
# bit flips the monitor never sees. The run must catch at least one
# divergence by voting, fire at least one scheduled rejuvenation, and —
# the headline property — produce FleetStats byte-identical to the same
# run with chaos off (the fault is masked, not merely reported).
REPLICA_CLEAN="$SMOKE_DIR/replica_clean_stats.json"
REPLICA_STEALTH="$SMOKE_DIR/replica_stealth_stats.json"
timeout 300 ./target/release/fleetbench \
  --quick --replicas 3 --rejuvenate-every 4 --chaos-out "$REPLICA_CLEAN"
timeout 300 ./target/release/fleetbench \
  --quick --replicas 3 --rejuvenate-every 4 --chaos stealth \
  --chaos-out "$REPLICA_STEALTH" \
  --assert-divergences-min 1 --assert-revivals-min 2
cmp "$REPLICA_CLEAN" "$REPLICA_STEALTH" || {
  echo "stealth run's FleetStats diverged from the chaos-free run" >&2
  exit 1
}

echo "== smoke: fleetd service loop + deterministic replay"
# Boot the serve daemon on an ephemeral loopback port, drive it with the
# open-loop load generator (which probes HEALTH and asserts at least one
# live detection), shut it down gracefully over the wire, then replay
# the ingress logs — the replayed stats must be byte-identical to the
# FLEET_stats.json the live daemon wrote at shutdown.
SERVE_STATE="$SMOKE_DIR/serve-state"
SERVE_LOG="$SMOKE_DIR/fleetd.log"
timeout 300 ./target/release/fleetd --quick --state "$SERVE_STATE" \
  > "$SERVE_LOG" 2>&1 &
FLEETD_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 150); do
  SERVE_ADDR="$(sed -n 's/^fleetd listening on //p' "$SERVE_LOG")"
  [ -n "$SERVE_ADDR" ] && break
  kill -0 "$FLEETD_PID" 2>/dev/null || {
    echo "fleetd died before announcing its port:" >&2
    cat "$SERVE_LOG" >&2
    exit 1
  }
  sleep 0.2
done
[ -n "$SERVE_ADDR" ] || { echo "fleetd never announced its port" >&2; exit 1; }
timeout 120 ./target/release/loadgen --quick --addr "$SERVE_ADDR" \
  --assert-min-detections 1 --shutdown --out "$SMOKE_DIR/loadgen.json"
wait "$FLEETD_PID"
timeout 120 ./target/release/fleetd --replay "$SERVE_STATE" \
  --out "$SMOKE_DIR/replay.json" > /dev/null
cmp "$SERVE_STATE/FLEET_stats.json" "$SMOKE_DIR/replay.json" || {
  echo "replay diverged from the live FLEET_stats.json" >&2
  exit 1
}

echo "== smoke: simbench host-MIPS floor"
# Short deterministic workloads; --min-mips is a conservative regression
# guard (the superblock engine runs the compute workload several times
# faster than this floor), not a tight gate.
SIMBENCH_JSON="$SMOKE_DIR/BENCH_simcore.json"
./target/release/simbench --quick --out "$SIMBENCH_JSON" --min-mips 12
for key in '"bench":"simcore"' '"quick":true' '"superblocks":true' '"workloads"' \
           '"name":"compute"' '"name":"memory"' '"name":"attack_mix"' \
           '"insns"' '"wall_seconds"' '"mips"'; do
  grep -qF "$key" "$SIMBENCH_JSON" || {
    echo "BENCH_simcore.json is missing $key" >&2
    exit 1
  }
done

echo "== smoke: superblocks off is byte-identical"
# The superblock engine is a host-side optimization: the deterministic
# FleetStats must not move by a single byte when it is disabled — even
# under the K=3 voting executor. The reference is the replica-clean
# stats written by the stage above (superblocks on, chaos off).
SB_OFF="$SMOKE_DIR/sb_off_stats.json"
timeout 300 ./target/release/fleetbench \
  --quick --replicas 3 --rejuvenate-every 4 --no-superblocks \
  --chaos-out "$SB_OFF"
cmp "$REPLICA_CLEAN" "$SB_OFF" || {
  echo "FleetStats changed when the superblock engine was disabled" >&2
  exit 1
}

echo "== smoke: compartment rewind-and-discard"
# An attack mix over every Table 2 family must fire at least one
# compartment discard (the dormant family's sealed-planter heal) while
# losing zero benign requests — the tentpole's requests-lost bar.
COMPART_JSON="$SMOKE_DIR/BENCH_compartment.json"
timeout 300 ./target/release/compartmentbench --quick \
  --out "$COMPART_JSON" --assert-discards-min 1 --assert-benign-lost-max 0
for key in '"bench":"compartment"' '"family":"dormant"' '"benign_lost_on":0' \
           '"discards_on"' '"wal_bytes"' '"wal_pages"'; do
  grep -qF "$key" "$COMPART_JSON" || {
    echo "BENCH_compartment.json is missing $key" >&2
    exit 1
  }
done

echo "== smoke: compartments off is byte-identical when attack-free"
# Compartment tracking is free on the hot path: with no attacks and no
# faults the deterministic FleetStats must not move by a single byte
# when the feature is disabled. (Under attack it changes outcomes by
# design, so the equivalence leg pins attack-per-mille 0.)
CMP_ON="$SMOKE_DIR/compartments_on_stats.json"
CMP_OFF="$SMOKE_DIR/compartments_off_stats.json"
timeout 300 ./target/release/fleetbench \
  --quick --replicas 3 --attack-per-mille 0 --chaos-out "$CMP_ON"
timeout 300 ./target/release/fleetbench \
  --quick --replicas 3 --attack-per-mille 0 --no-compartments \
  --chaos-out "$CMP_OFF"
cmp "$CMP_ON" "$CMP_OFF" || {
  echo "FleetStats changed when compartments were disabled on attack-free traffic" >&2
  exit 1
}

echo "== static analysis: benign workloads lint clean"
# Every shipped service must pass the CFI lint with zero findings —
# `lint` exits nonzero on any finding, and we pin the empty findings
# array so a silently-degraded JSON shape can't fake a pass.
for app in ftpd httpd bind sendmail imap nfs; do
  LINT_JSON="$(./target/release/ir32 lint --app "$app" --scale 20 --json)"
  echo "$LINT_JSON" | grep -qF '"findings":[]' || {
    echo "ir32 lint --app $app reported findings: $LINT_JSON" >&2
    exit 1
  }
done

echo "== static analysis: fixtures trigger their expected findings"
# results/ANALYZE_expected.json carries two sections: "fixtures" maps
# fixture name -> finding kind (the analyzer must report exactly the
# advertised kind for each), and "surface" locks every stock app's
# attack-surface score (gated below).
FIXTURES="$(sed -n 's/.*"fixtures":{\([^}]*\)}.*/\1/p' results/ANALYZE_expected.json \
  | tr ',' '\n' | tr -d '"')"
[ -n "$FIXTURES" ] || { echo "ANALYZE_expected.json: fixtures section parsed empty" >&2; exit 1; }
while IFS=: read -r name kind; do
  ./target/release/ir32 analyze --fixture "$name" --json \
    | grep -qF "\"kind\":\"$kind\"" || {
    echo "fixture $name did not report finding kind $kind" >&2
    exit 1
  }
done <<< "$FIXTURES"

echo "== static analysis: benign attack-surface scores are locked"
# `ir32 gadgets` prices the residual in-policy surface of every stock
# workload; the committed scores are a regression lock — a new dispatch
# site, writable slot or registered target moves the number and must be
# acknowledged by updating results/ANALYZE_expected.json.
SURFACE="$(sed -n 's/.*"surface":{\([^}]*\)}.*/\1/p' results/ANALYZE_expected.json \
  | tr ',' '\n' | tr -d '"')"
[ -n "$SURFACE" ] || { echo "ANALYZE_expected.json: surface section parsed empty" >&2; exit 1; }
while IFS=: read -r app score; do
  GADGET_JSON="$(./target/release/ir32 gadgets --app "$app" --scale 20 --json || true)"
  echo "$GADGET_JSON" | grep -qF "\"attack_surface\":$score" || {
    echo "ir32 gadgets --app $app surface moved off the locked score $score" >&2
    echo "$GADGET_JSON" >&2
    exit 1
  }
done <<< "$SURFACE"

echo "== smoke: red-team campaign is deterministic and scores detections"
# Two quick campaigns from the same seed must produce byte-identical
# JSON (no wall-clock leaks into the report), exercise all four attack
# families, score at least one detection — and keep at least one
# payload that runs undetected (the in-policy JOP plant the gadget
# finder predicts).
RT_A="$SMOKE_DIR/BENCH_redteam_a.json"
RT_B="$SMOKE_DIR/BENCH_redteam_b.json"
timeout 300 ./target/release/redteambench --quick --seed 7 --out "$RT_A" \
  --assert-families-min 4 --assert-detections-min 1 --assert-undetected-min 1
timeout 300 ./target/release/redteambench --quick --seed 7 --out "$RT_B" > /dev/null
cmp "$RT_A" "$RT_B" || {
  echo "redteambench output is not byte-deterministic for a fixed seed" >&2
  exit 1
}
for key in '"bench":"redteam"' '"family":"jop_chain"' '"family":"rop_ret"' \
           '"family":"dormant_span"' '"family":"exhaust"' '"latency"'; do
  grep -qF "$key" "$RT_A" || {
    echo "BENCH_redteam json is missing $key" >&2
    exit 1
  }
done

echo "== red-team corpus replays to its pinned outcomes"
cargo test -q --test redteam_corpus

echo "CI green."
