#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test -q --workspace

echo "== smoke: fleetbench checkpoint / kill / resume"
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/indra-ci-smoke.XXXXXX")"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/fleetbench \
  --shards 2 --requests 8 --scale 30 --attack-per-mille 200 \
  --checkpoint-every 3 --store "$SMOKE_DIR" --halt-after 1
./target/release/fleetbench --resume "$SMOKE_DIR"

echo "== smoke: fleetbench chaos campaign (supervised revival)"
# The default chaos profile kills shards, tears journal tails and fires
# guest fault bursts; the run must finish on its own, actually revive
# something, and lose no request to quarantine or abandonment. The
# timeout guards against a supervisor livelock ever landing on main.
CHAOS_JSON="$SMOKE_DIR/BENCH_chaos_smoke.json"
timeout 300 ./target/release/fleetbench \
  --chaos default --quick --chaos-out "$CHAOS_JSON" \
  --assert-revivals-min 1 --assert-availability-min 0.99
grep -qF '"profile":"default"' "$CHAOS_JSON" || {
  echo "BENCH_chaos_smoke.json is missing the default profile run" >&2
  exit 1
}

echo "== smoke: simbench host-MIPS floor"
# Short deterministic workloads; --min-mips is a conservative regression
# guard (the optimized loop runs well above it), not a tight gate.
SIMBENCH_JSON="$SMOKE_DIR/BENCH_simcore.json"
./target/release/simbench --quick --out "$SIMBENCH_JSON" --min-mips 4
for key in '"bench":"simcore"' '"quick":true' '"workloads"' \
           '"name":"compute"' '"name":"memory"' '"name":"attack_mix"' \
           '"insns"' '"wall_seconds"' '"mips"'; do
  grep -qF "$key" "$SIMBENCH_JSON" || {
    echo "BENCH_simcore.json is missing $key" >&2
    exit 1
  }
done

echo "CI green."
