#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root; fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests"
cargo test -q --workspace

echo "CI green."
