//! Static disassembly and control-flow recovery from encoded bytes.
//!
//! Everything here works on the *encoded* words of an image's executable
//! segments — never on the assembler's AST — so the analysis sees exactly
//! what a resurrectee core would fetch, including hand-crafted attack
//! images that no toolchain produced.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use indra_isa::{Image, Instruction, Reg};

/// One decoded word of an executable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeWord {
    /// The raw little-endian word.
    pub word: u32,
    /// The decoded instruction, or `None` for an illegal encoding.
    pub inst: Option<Instruction>,
}

/// Static disassembly of every *initialized* executable byte of an image.
///
/// Only initialized bytes (`Segment::data`) are decoded: the zero-filled
/// tail of a text segment and dynamic-code regions hold no instructions
/// until runtime, so decoding them would only drown real findings in
/// all-zero "illegal word" noise.
#[derive(Debug, Clone, Default)]
pub struct Disassembly {
    /// Address → decoded word for every word-aligned initialized word of
    /// an executable segment.
    pub words: BTreeMap<u32, CodeWord>,
    /// Initialized executable byte runs that cannot hold an instruction:
    /// unaligned segment heads and sub-word tails, as `(addr, len)`.
    pub ragged: Vec<(u32, u32)>,
}

impl Disassembly {
    /// Decodes the initialized part of every executable segment.
    ///
    /// Total for hostile input: misaligned bases, segments that wrap the
    /// 32-bit address space, and sub-word tails are recorded in
    /// [`Disassembly::ragged`] instead of being decoded (or panicking).
    #[must_use]
    pub fn of_image(image: &Image) -> Disassembly {
        let mut d = Disassembly::default();
        for seg in image.segments.iter().filter(|s| s.perms.execute) {
            let base = u64::from(seg.vaddr);
            let skip = (base.next_multiple_of(4) - base) as usize;
            if skip > 0 {
                d.ragged.push((seg.vaddr, skip.min(seg.data.len()) as u32));
            }
            if skip >= seg.data.len() {
                continue;
            }
            let mut addr = base + skip as u64;
            for chunk in seg.data[skip..].chunks(4) {
                if chunk.len() < 4 || addr > u64::from(u32::MAX) {
                    d.ragged.push((addr as u32, chunk.len() as u32));
                    break;
                }
                let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                d.words
                    .insert(addr as u32, CodeWord { word, inst: Instruction::decode(word).ok() });
                addr += 4;
            }
        }
        d
    }
}

/// Static successors of the instruction at `addr`: the explicit transfer
/// target (if the instruction encodes one) and whether execution can fall
/// through to `addr + 4`.
///
/// Calls fall through to their return continuation; indirect transfers
/// have no static target (their landing sites come from the address-taken
/// analysis); `halt` stops the core.
#[must_use]
pub fn successors(addr: u32, inst: Instruction) -> (Option<u32>, bool) {
    match inst {
        Instruction::Halt => (None, false),
        Instruction::Branch { offset, .. } => (Some(addr.wrapping_add(offset as u32)), true),
        Instruction::Jal { rd, offset } => (Some(addr.wrapping_add(offset as u32)), rd == Reg::RA),
        Instruction::Jalr { rd, .. } => (None, rd == Reg::RA),
        _ => (None, true),
    }
}

/// Whether `inst` terminates a basic block — i.e. it is the last
/// instruction of any block containing it. True for every control
/// transfer (branch, jump, call, return, syscall) and for `halt`, which
/// stops the core outright.
///
/// This is the boundary rule [`Cfg::build`] applies statically when
/// carving reachable code into blocks; the simulator's superblock
/// translator applies the same predicate dynamically, so its hot traces
/// coincide with the static blocks the analyzer reasons about.
#[must_use]
pub fn ends_block(inst: Instruction) -> bool {
    inst.is_control() || matches!(inst, Instruction::Halt)
}

/// A recovered basic block: straight-line code with one entry and one exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Number of instructions in the block.
    pub insns: u32,
    /// Static successor block addresses.
    pub succs: Vec<u32>,
}

/// The control-flow graph reachable from a set of root addresses.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Every instruction address reachable from the roots.
    pub reachable: BTreeSet<u32>,
    /// Recovered basic blocks, ordered by start address.
    pub blocks: Vec<BasicBlock>,
    /// Total CFG edges (sum of block successor counts).
    pub edges: u64,
    /// Reachable direct-call sites as `(site, target)` pairs.
    pub call_sites: Vec<(u32, u32)>,
    /// Reachable indirect-call sites (`jalr ra, …`).
    pub indirect_call_sites: Vec<u32>,
    /// Reachable addresses holding an illegal encoding.
    pub illegal: BTreeSet<u32>,
    /// Reachable instructions whose fall-through leaves initialized code.
    pub fallthrough_exits: BTreeSet<u32>,
}

impl Cfg {
    /// Recovers the CFG reachable from `roots` (roots outside the decoded
    /// words are ignored — they cannot execute).
    #[must_use]
    pub fn build(disasm: &Disassembly, roots: &BTreeSet<u32>) -> Cfg {
        let mut cfg = Cfg::default();
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        let mut work: VecDeque<u32> =
            roots.iter().copied().filter(|a| disasm.words.contains_key(a)).collect();
        leaders.extend(work.iter().copied());

        while let Some(addr) = work.pop_front() {
            if !cfg.reachable.insert(addr) {
                continue;
            }
            let cw = disasm.words[&addr];
            let Some(inst) = cw.inst else {
                cfg.illegal.insert(addr);
                continue;
            };
            match inst {
                Instruction::Jal { rd, offset } if rd == Reg::RA => {
                    cfg.call_sites.push((addr, addr.wrapping_add(offset as u32)));
                }
                Instruction::Jalr { rd, .. } if rd == Reg::RA => {
                    cfg.indirect_call_sites.push(addr);
                }
                _ => {}
            }
            let (target, falls) = successors(addr, inst);
            if let Some(t) = target {
                if disasm.words.contains_key(&t) {
                    leaders.insert(t);
                    work.push_back(t);
                }
            }
            if falls {
                let next = addr.wrapping_add(4);
                if disasm.words.contains_key(&next) {
                    if inst.is_control() {
                        leaders.insert(next);
                    }
                    work.push_back(next);
                } else {
                    cfg.fallthrough_exits.insert(addr);
                }
            }
        }
        cfg.call_sites.sort_unstable();
        cfg.indirect_call_sites.sort_unstable();

        // Carve the reachable instructions into blocks at the leaders.
        let reachable: Vec<u32> = cfg.reachable.iter().copied().collect();
        let mut i = 0;
        while i < reachable.len() {
            let start = reachable[i];
            let mut end = start;
            let mut n = 1u32;
            let mut last = disasm.words[&start];
            while i + 1 < reachable.len() {
                let next = reachable[i + 1];
                if next != end.wrapping_add(4) || leaders.contains(&next) {
                    break;
                }
                // A block ends at its first terminator (`halt` never
                // falls through, so the next word — if reachable at all —
                // is necessarily a leader; including it here keeps the
                // rule identical to the dynamic translator's).
                if last.inst.is_some_and(ends_block) {
                    break;
                }
                i += 1;
                end = next;
                n += 1;
                last = disasm.words[&end];
            }
            let mut succs = Vec::new();
            if let Some(inst) = last.inst {
                let (target, falls) = successors(end, inst);
                if let Some(t) = target {
                    if cfg.reachable.contains(&t) {
                        succs.push(t);
                    }
                }
                if falls {
                    let next = end.wrapping_add(4);
                    if cfg.reachable.contains(&next) {
                        succs.push(next);
                    }
                }
            }
            cfg.edges += succs.len() as u64;
            cfg.blocks.push(BasicBlock { start, insns: n, succs });
            i += 1;
        }
        cfg
    }
}

/// The recovered call graph, plus the shadow-stack depth bound it implies.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function-entry nodes.
    pub nodes: BTreeSet<u32>,
    /// Caller entry → callee entries.
    pub edges: BTreeMap<u32, BTreeSet<u32>>,
    /// Total call edges.
    pub edge_count: u64,
    /// Maximum statically-possible shadow-stack depth (frames), or `None`
    /// when recursion makes the depth unbounded.
    pub max_depth: Option<u32>,
    /// A sample recursion cycle (function entries), when one exists.
    pub cycle: Option<Vec<u32>>,
}

impl CallGraph {
    /// Builds the call graph over `entries` (function entry addresses).
    ///
    /// Direct edges come from reachable `jal ra` sites; every reachable
    /// indirect-call site conservatively edges to every address-taken
    /// code address (mapped to its containing function).
    #[must_use]
    pub fn build(cfg: &Cfg, entries: &BTreeSet<u32>, address_taken: &BTreeSet<u32>) -> CallGraph {
        let mut g = CallGraph { nodes: entries.clone(), ..CallGraph::default() };
        let containing = |addr: u32| entries.range(..=addr).next_back().copied();
        let add = |g: &mut CallGraph, from: u32, to: u32| {
            if g.edges.entry(from).or_default().insert(to) {
                g.edge_count += 1;
            }
        };
        for &(site, target) in &cfg.call_sites {
            if let (Some(caller), Some(callee)) = (containing(site), containing(target)) {
                if callee == target {
                    add(&mut g, caller, callee);
                }
            }
        }
        let indirect_callees: BTreeSet<u32> =
            address_taken.iter().filter_map(|&t| containing(t)).collect();
        for &site in &cfg.indirect_call_sites {
            if let Some(caller) = containing(site) {
                for &callee in &indirect_callees {
                    add(&mut g, caller, callee);
                }
            }
        }
        g.compute_depth();
        g
    }

    /// Longest call chain via iterative DFS; detects recursion cycles.
    fn compute_depth(&mut self) {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color: HashMap<u32, u8> = HashMap::new();
        let mut depth: HashMap<u32, u32> = HashMap::new();
        let mut best = 0u32;
        for &root in &self.nodes {
            if color.get(&root).copied().unwrap_or(WHITE) != WHITE {
                continue;
            }
            // Stack of (node, callees, next callee index).
            let mut stack: Vec<(u32, Vec<u32>, usize)> = Vec::new();
            color.insert(root, GRAY);
            stack.push((root, self.callees_of(root), 0));
            while !stack.is_empty() {
                let next = {
                    let top = stack.last_mut().expect("stack nonempty");
                    if top.2 < top.1.len() {
                        top.2 += 1;
                        Some(top.1[top.2 - 1])
                    } else {
                        None
                    }
                };
                match next {
                    Some(s) => match color.get(&s).copied().unwrap_or(WHITE) {
                        WHITE => {
                            color.insert(s, GRAY);
                            stack.push((s, self.callees_of(s), 0));
                        }
                        GRAY => {
                            // An active call chain reached itself: recursion.
                            let from = stack.iter().position(|&(n, _, _)| n == s).unwrap_or(0);
                            let mut cycle: Vec<u32> =
                                stack[from..].iter().map(|&(n, _, _)| n).collect();
                            cycle.push(s);
                            self.cycle = Some(cycle);
                            self.max_depth = None;
                            return;
                        }
                        _ => {}
                    },
                    None => {
                        let (node, succs, _) = stack.pop().expect("stack nonempty");
                        // Frames pushed when `node` runs: one per nested call.
                        let d = succs
                            .iter()
                            .map(|s| 1 + depth.get(s).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0);
                        depth.insert(node, d);
                        best = best.max(d);
                        color.insert(node, BLACK);
                    }
                }
            }
        }
        self.max_depth = Some(best);
    }

    fn callees_of(&self, node: u32) -> Vec<u32> {
        self.edges.get(&node).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use indra_isa::{AluOp, Cond, Instruction, Reg, Width};

    use super::ends_block;

    #[test]
    fn ends_block_matches_the_carving_rule() {
        let terminators = [
            Instruction::Branch { cond: Cond::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: 8 },
            Instruction::Jal { rd: Reg::ZERO, offset: 16 },
            Instruction::call(32),
            Instruction::ret(),
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
            Instruction::Syscall { code: 3 },
            Instruction::Halt,
        ];
        for inst in terminators {
            assert!(ends_block(inst), "{inst} must end a block");
        }
        let straight_line = [
            Instruction::Alu { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T1, rs2: Reg::T2 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: 1 },
            Instruction::Lui { rd: Reg::T0, imm: 0x1234 },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::T0,
                rs1: Reg::SP,
                offset: 0,
            },
            Instruction::Store { width: Width::Word, rs2: Reg::T0, rs1: Reg::SP, offset: 0 },
            Instruction::Nop,
        ];
        for inst in straight_line {
            assert!(!ends_block(inst), "{inst} must not end a block");
        }
    }
}
