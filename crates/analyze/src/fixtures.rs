//! Misdeclared and hostile images exercising each finding kind.
//!
//! Each fixture is a small image whose *bytes* are valid input to the
//! loader path but whose declared policy (or code) is wrong in exactly
//! one way. They back the `ir32 analyze --fixture` CLI, the
//! `results/ANALYZE_expected.json` allowlist stage in ci, and the
//! static-policy integration tests.

use indra_isa::{assemble, Image, Perms, Segment};

use crate::policy::FindingKind;

/// Names of every fixture, in a stable order.
pub const FIXTURE_NAMES: [&str; 7] = [
    "overdeclared",
    "undeclared_table",
    "wx_segment",
    "unreachable",
    "illegal_words",
    "fallthrough",
    "recursive",
];

/// The finding kind each fixture is built to trigger.
#[must_use]
pub fn expected_finding(name: &str) -> Option<FindingKind> {
    Some(match name {
        "overdeclared" => FindingKind::OverbroadDeclaration,
        "undeclared_table" => FindingKind::UndeclaredIndirectTarget,
        "wx_segment" => FindingKind::WxViolation,
        "unreachable" => FindingKind::UnreachableCode,
        "illegal_words" => FindingKind::IllegalEncoding,
        "fallthrough" => FindingKind::FallthroughOffSegmentEnd,
        "recursive" => FindingKind::CallGraphCycle,
        _ => return None,
    })
}

/// Builds the named fixture image, or `None` for an unknown name.
#[must_use]
pub fn fixture(name: &str) -> Option<Image> {
    match name {
        "overdeclared" => Some(overdeclared()),
        "undeclared_table" => Some(undeclared_table()),
        "wx_segment" => Some(wx_segment()),
        "unreachable" => Some(unreachable()),
        "illegal_words" => Some(illegal_words()),
        "fallthrough" => Some(fallthrough()),
        "recursive" => Some(recursive()),
        // Not in FIXTURE_NAMES (its declarations are clean); resolvable
        // here so `ir32 gadgets --fixture gadget_chain` can demo the
        // offensive pass.
        "gadget_chain" => Some(gadget_chain()),
        _ => None,
    }
}

fn asm(name: &str, src: &str) -> Image {
    assemble(name, src).expect("fixture source must assemble")
}

/// Declares a mid-function address as an indirect target: dead policy
/// surface an attacker can land on without tripping the monitor.
fn overdeclared() -> Image {
    let mut img = asm(
        "overdeclared",
        "main:\n    call work\n    halt\nwork:\n    addi a0, zero, 1\n    addi a0, a0, 2\n    ret\n",
    );
    let mid = img.addr_of("work").expect("work symbol") + 4;
    img.indirect_targets.insert(mid);
    img
}

/// Ships a function-pointer table whose second entry was never declared
/// an indirect target — the dispatch through it would be flagged at
/// runtime even though the program is "correct".
fn undeclared_table() -> Image {
    let mut img = asm(
        "undeclared_table",
        concat!(
            "    .data\n",
            "handlers:\n",
            "    .target f, g\n",
            "    .text\n",
            "main:\n    halt\n",
            "f:\n    ret\n",
            "g:\n    ret\n",
        ),
    );
    let g = img.addr_of("g").expect("g symbol");
    img.indirect_targets.remove(&g);
    img
}

/// Maps a writable+executable segment without declaring it a dynamic-code
/// region — exactly what a shellcode stager needs.
fn wx_segment() -> Image {
    let mut img = asm("wx_segment", "main:\n    halt\n");
    img.segments.push(Segment {
        name: ".stage".into(),
        vaddr: 0x2000_0000,
        data: Vec::new(),
        size: 4096,
        perms: Perms::RWX,
    });
    img
}

/// Instructions after an unconditional `halt` with no label: unreachable
/// from every entry, symbol, and landing site.
fn unreachable() -> Image {
    asm("unreachable", "main:\n    halt\n    addi a0, zero, 5\n    addi a0, a0, 1\n    ret\n")
}

/// A reachable word that decodes as nothing: the patched `halt` becomes
/// 0xFFFF_FFFF, straight on main's execution path.
fn illegal_words() -> Image {
    let mut img = asm("illegal_words", "main:\n    nop\n    halt\n");
    let halt_addr = img.entry + 4;
    let seg = img
        .segments
        .iter_mut()
        .find(|s| s.perms.execute && s.contains(halt_addr))
        .expect("text segment");
    let off = (halt_addr - seg.vaddr) as usize;
    seg.data[off..off + 4].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
    img
}

/// The last initialized instruction is a plain `addi`: execution falls
/// off the end of the code into the zero-filled tail.
fn fallthrough() -> Image {
    asm("fallthrough", "main:\n    addi a0, zero, 1\n")
}

/// Direct self-recursion: the shadow-stack depth has no static bound.
fn recursive() -> Image {
    asm("recursive", "main:\n    call spin\n    halt\nspin:\n    call spin\n    ret\n")
}

/// A dispatch table of two registered handlers whose bodies are short
/// store gadgets ending in further indirect transfers: the canonical
/// CFI-respecting gadget chain, with writable code-pointer slots an
/// attacker overwrites to steer it.
///
/// Not in [`FIXTURE_NAMES`]: its declared policy is *correct* (the
/// analyzer reports no misdeclaration), so it backs the offensive
/// [`crate::enumerate_gadgets`] pass and the `ir32 gadgets` CLI rather
/// than the `analyze` cross-check.
#[must_use]
pub fn gadget_chain() -> Image {
    asm(
        "gadget_chain",
        concat!(
            "    .data\n",
            "handlers:\n",
            "    .target store_a, store_b\n",
            "scratch:\n",
            "    .space 16\n",
            "    .text\n",
            "main:\n",
            "    la t0, handlers\n",
            "    lw t1, 0(t0)\n",
            "    jalr t1\n",
            "    halt\n",
            "store_a:\n",
            "    la s0, scratch\n",
            "    sw a0, 0(s0)\n",
            "    la t2, handlers\n",
            "    lw t2, 4(t2)\n",
            "    jr t2\n",
            "store_b:\n",
            "    addi a1, zero, 7\n",
            "    la t3, handlers\n",
            "    lw t3, 0(t3)\n",
            "    jalr t3\n",
            "    halt\n",
        ),
    )
}
