//! CFI-aware gadget enumeration: the *offensive* reading of a tightened
//! policy.
//!
//! [`crate::tighten`] narrows an image's declared indirect targets to
//! what the analysis can justify; the monitor then flags any indirect
//! transfer elsewhere. This module asks the attacker's follow-up
//! question: **what remains reachable without tripping that policy?**
//! Every registered target is a legal landing site, so the straight-line
//! suffix from a registered target to its first control transfer is a
//! *gadget* — code an attacker who controls a code pointer can run
//! in-policy. Gadgets ending in another indirect transfer chain: the
//! next hop may land on any registered target, and the monitor approves
//! every step.
//!
//! The output is a [`SurfaceReport`]: the gadget catalog with per-gadget
//! effect summaries (registers clobbered, memory written, syscalls
//! reachable), writable memory slots already holding registered targets
//! (one overwrite away from redirecting an in-policy dispatch), a
//! representative gadget chain, typed findings, and a scalar
//! `attack_surface` score the CI locks per stock workload.

use std::collections::{BTreeMap, BTreeSet};

use indra_isa::{Image, Instruction, Reg};

use crate::cfg::{ends_block, Cfg, Disassembly};
use crate::policy::{analyze_image, dest_reg, Finding, FindingKind, MAX_PER_KIND};

/// Longest straight-line suffix considered a gadget. Beyond this an
/// attacker is just running the program; the interesting primitives are
/// short.
const MAX_GADGET_LEN: u32 = 32;

/// How a gadget's terminating indirect transfer is checked at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GadgetKind {
    /// `jalr ra, …` — checked against the registered indirect targets;
    /// any registered target is a legal next hop.
    IndirectCall,
    /// `jalr` writing neither `ra` nor reading it — a computed jump,
    /// checked against the registered targets like a call.
    IndirectJump,
    /// `jalr …, ra` — a return, constrained by the shadow stack to the
    /// recorded call site; not attacker-steerable under the monitor.
    Return,
}

impl GadgetKind {
    /// Stable snake_case name used in `--json` output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            GadgetKind::IndirectCall => "indirect_call",
            GadgetKind::IndirectJump => "indirect_jump",
            GadgetKind::Return => "return",
        }
    }
}

/// What executing one gadget does to machine state, from a linear
/// abstract interpretation of its straight-line body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GadgetEffects {
    /// Bitmask of register indices the gadget writes (bit `i` =
    /// register index `i`, including the terminator's link register).
    pub regs_clobbered: u32,
    /// Stores executed by the straight-line body.
    pub mem_writes: u32,
    /// Loads executed by the straight-line body.
    pub mem_reads: u32,
    /// A `syscall` instruction is reachable in the CFG from the gadget
    /// entry without leaving the registered policy.
    pub syscall_reachable: bool,
}

/// One CFI-respecting gadget: the straight-line suffix from a registered
/// indirect target to its first control transfer, when that transfer is
/// itself indirect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// The registered indirect target the gadget starts at — a legal
    /// landing site under the tightened policy.
    pub entry: u32,
    /// Instructions from entry to the terminator, inclusive.
    pub insns: u32,
    /// Address of the terminating indirect transfer.
    pub transfer_at: u32,
    /// How the terminator is checked at runtime.
    pub kind: GadgetKind,
    /// In-policy targets the terminator may reach: the full registered
    /// set for calls/jumps, empty for shadow-stack-constrained returns.
    pub targets: Vec<u32>,
    /// Effect summary of the straight-line body.
    pub effects: GadgetEffects,
}

/// One writable data word already holding a registered indirect target —
/// a code-pointer slot an attacker overwrites to redirect an in-policy
/// dispatch without ever leaving the registered target set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritableSlot {
    /// Address of the writable word.
    pub addr: u32,
    /// The registered target it holds.
    pub target: u32,
    /// Name of the segment the slot lives in.
    pub segment: String,
}

/// Attack-surface statistics from one enumeration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurfaceStats {
    /// Indirect targets the tightened policy registers.
    pub registered_targets: u64,
    /// Reachable indirect call/jump sites (returns excluded — the
    /// shadow stack pins them).
    pub dispatch_sites: u64,
    /// `dispatch_sites × registered_targets`: transfer pairs the
    /// monitor approves.
    pub in_policy_pairs: u64,
    /// Gadgets cataloged (all kinds).
    pub gadgets: u64,
    /// Gadgets whose terminator can steer to another gadget entry.
    pub chainable_gadgets: u64,
    /// Writable data words holding registered targets.
    pub writable_slots: u64,
    /// Registered targets from which a `syscall` is reachable.
    pub syscall_reachable_targets: u64,
    /// Scalar attack-surface score:
    /// `in_policy_pairs + 16·writable_slots + 8·syscall_reachable_targets`.
    pub attack_surface: u64,
}

/// The full result of enumerating an image's residual attack surface.
#[derive(Debug, Clone)]
pub struct SurfaceReport {
    /// Image name, for diagnostics.
    pub image: String,
    /// Cataloged gadgets, ordered by entry address.
    pub gadgets: Vec<Gadget>,
    /// Writable code-pointer slots, ordered by address.
    pub writable_slots: Vec<WritableSlot>,
    /// A representative in-policy gadget chain (entry addresses, every
    /// hop approved by the monitor), empty when fewer than two gadgets
    /// chain.
    pub chain: Vec<u32>,
    /// Typed offensive findings, ordered by kind then address.
    pub findings: Vec<Finding>,
    /// Finding kinds whose occurrences exceeded the per-kind cap:
    /// kind name → total occurrences found.
    pub truncated: BTreeMap<&'static str, u64>,
    /// Summary statistics, including the `attack_surface` score.
    pub stats: SurfaceStats,
}

impl SurfaceReport {
    /// `true` when the enumeration produced no findings — no gadget
    /// chains, no writable slots, no residual dispatch surface.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Classifies a `jalr` terminator.
fn classify(rd: Reg, rs1: Reg) -> GadgetKind {
    if rd == Reg::RA {
        GadgetKind::IndirectCall
    } else if rs1 == Reg::RA {
        GadgetKind::Return
    } else {
        GadgetKind::IndirectJump
    }
}

/// Walks the straight-line suffix from `entry`; `Some` when it ends in
/// an indirect transfer within [`MAX_GADGET_LEN`] cleanly-decoding
/// instructions.
fn walk_gadget(disasm: &Disassembly, entry: u32, registered: &BTreeSet<u32>) -> Option<Gadget> {
    let mut addr = entry;
    let mut effects = GadgetEffects::default();
    for n in 1..=MAX_GADGET_LEN {
        let inst = disasm.words.get(&addr)?.inst?;
        if let Some(rd) = dest_reg(inst) {
            effects.regs_clobbered |= 1 << rd.index();
        }
        match inst {
            Instruction::Store { .. } => effects.mem_writes += 1,
            Instruction::Load { .. } => effects.mem_reads += 1,
            _ => {}
        }
        if ends_block(inst) {
            let Instruction::Jalr { rd, rs1, .. } = inst else { return None };
            let kind = classify(rd, rs1);
            let targets = match kind {
                GadgetKind::Return => Vec::new(),
                _ => registered.iter().copied().collect(),
            };
            return Some(Gadget { entry, insns: n, transfer_at: addr, kind, targets, effects });
        }
        addr = addr.wrapping_add(4);
    }
    None
}

/// Block-level fixed point: the set of block starts from which a
/// `syscall` instruction is reachable, following fall-through/branch
/// edges, direct-call edges, and dispatch edges to every registered
/// block (an indirect transfer may legally land on any of them).
fn syscall_reaching_blocks(
    disasm: &Disassembly,
    cfg: &Cfg,
    registered: &BTreeSet<u32>,
) -> BTreeSet<u32> {
    // Address → containing block start, and the per-block facts.
    let mut block_of: BTreeMap<u32, u32> = BTreeMap::new();
    let mut has_syscall: BTreeSet<u32> = BTreeSet::new();
    let mut dispatches: BTreeSet<u32> = BTreeSet::new();
    for b in &cfg.blocks {
        for i in 0..b.insns {
            let a = b.start.wrapping_add(4 * i);
            block_of.insert(a, b.start);
            match disasm.words.get(&a).and_then(|cw| cw.inst) {
                Some(Instruction::Syscall { .. }) => {
                    has_syscall.insert(b.start);
                }
                Some(Instruction::Jalr { rd, rs1, .. })
                    if classify(rd, rs1) != GadgetKind::Return =>
                {
                    dispatches.insert(b.start);
                }
                _ => {}
            }
        }
    }
    let registered_blocks: Vec<u32> =
        registered.iter().filter_map(|t| block_of.get(t).copied()).collect();

    let mut edges: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for b in &cfg.blocks {
        let out = edges.entry(b.start).or_default();
        out.extend(b.succs.iter().copied());
        if dispatches.contains(&b.start) {
            out.extend(registered_blocks.iter().copied());
        }
    }
    for &(site, target) in &cfg.call_sites {
        if let (Some(&from), Some(&to)) = (block_of.get(&site), block_of.get(&target)) {
            edges.entry(from).or_default().insert(to);
        }
    }

    let mut can = has_syscall;
    loop {
        let mut grew = false;
        for (&from, out) in &edges {
            if !can.contains(&from) && out.iter().any(|t| can.contains(t)) {
                can.insert(from);
                grew = true;
            }
        }
        if !grew {
            return can;
        }
    }
}

/// Enumerates the residual attack surface of an image under its own
/// tightened policy: every CFI-respecting gadget, every writable
/// code-pointer slot, and the in-policy transfer pairs that survive
/// [`crate::tighten`].
///
/// Never panics, whatever the bytes — hostile images degrade to an
/// empty or partial catalog, exactly like [`analyze_image`].
#[must_use]
pub fn enumerate_gadgets(image: &Image) -> SurfaceReport {
    let policy = analyze_image(image);
    let registered = &policy.tightened.indirect_targets;
    let disasm = Disassembly::of_image(image);

    // Attacker-relevant reachability: what control can touch starting
    // from the program entry or any registered landing site.
    let mut roots: BTreeSet<u32> = registered.clone();
    roots.insert(image.entry);
    let cfg = Cfg::build(&disasm, &roots);

    let gadgets: Vec<Gadget> =
        registered.iter().filter_map(|&t| walk_gadget(&disasm, t, registered)).collect();

    // Writable code-pointer slots: aligned words of writable,
    // non-executable initialized data holding a registered target.
    let mut writable_slots = Vec::new();
    for seg in image.segments.iter().filter(|s| s.perms.write && !s.perms.execute) {
        let mut off = (4 - (seg.vaddr % 4) as usize) % 4;
        while off + 4 <= seg.data.len() {
            let w = u32::from_le_bytes([
                seg.data[off],
                seg.data[off + 1],
                seg.data[off + 2],
                seg.data[off + 3],
            ]);
            if registered.contains(&w) {
                writable_slots.push(WritableSlot {
                    addr: seg.vaddr.wrapping_add(off as u32),
                    target: w,
                    segment: seg.name.clone(),
                });
            }
            off += 4;
        }
    }

    // Representative chain: chainable gadgets (steerable terminator)
    // linked in address order — each hop lands on the next gadget's
    // entry, which its predecessor's target set contains by
    // construction, so the monitor approves every transfer.
    let chainable: Vec<u32> = gadgets
        .iter()
        .filter(|g| g.kind != GadgetKind::Return && !g.targets.is_empty())
        .map(|g| g.entry)
        .collect();
    let chain: Vec<u32> =
        if chainable.len() >= 2 { chainable.iter().take(8).copied().collect() } else { Vec::new() };

    // Dispatch sites: reachable indirect transfers the registered set
    // (not the shadow stack) constrains.
    let dispatch_sites = cfg
        .reachable
        .iter()
        .filter_map(|a| disasm.words.get(a).and_then(|cw| cw.inst))
        .filter(|i| {
            matches!(i, Instruction::Jalr { rd, rs1, .. }
                if classify(*rd, *rs1) != GadgetKind::Return)
        })
        .count() as u64;

    let reaching = syscall_reaching_blocks(&disasm, &cfg, registered);
    let syscall_reachable_targets =
        registered.iter().filter(|t| reaching.contains(t)).count() as u64;
    let gadgets: Vec<Gadget> = gadgets
        .into_iter()
        .map(|mut g| {
            g.effects.syscall_reachable = reaching.contains(&g.entry);
            g
        })
        .collect();

    let in_policy_pairs = dispatch_sites * registered.len() as u64;
    let stats = SurfaceStats {
        registered_targets: registered.len() as u64,
        dispatch_sites,
        in_policy_pairs,
        gadgets: gadgets.len() as u64,
        chainable_gadgets: chainable.len() as u64,
        writable_slots: writable_slots.len() as u64,
        syscall_reachable_targets,
        attack_surface: in_policy_pairs
            + 16 * writable_slots.len() as u64
            + 8 * syscall_reachable_targets,
    };

    // -- Findings.
    let mut findings = Vec::new();
    let mut truncated: BTreeMap<&'static str, u64> = BTreeMap::new();

    if in_policy_pairs > 0 {
        findings.push(Finding {
            kind: FindingKind::PolicyResidualSurface,
            addr: None,
            detail: format!(
                "{dispatch_sites} reachable dispatch site(s) × {} registered target(s) = \
                 {in_policy_pairs} in-policy transfer pair(s) survive tightening",
                registered.len()
            ),
        });
    }
    for slot in writable_slots.iter().take(MAX_PER_KIND) {
        findings.push(Finding {
            kind: FindingKind::WritableCodePointerSlot,
            addr: Some(slot.addr),
            detail: format!(
                "writable word in {} holds registered target {:#010x} — one overwrite \
                 redirects an in-policy dispatch",
                slot.segment, slot.target
            ),
        });
    }
    if writable_slots.len() > MAX_PER_KIND {
        truncated
            .insert(FindingKind::WritableCodePointerSlot.as_str(), writable_slots.len() as u64);
    }
    if chain.len() >= 2 {
        let path: Vec<String> = chain.iter().map(|a| format!("{a:#010x}")).collect();
        findings.push(Finding {
            kind: FindingKind::ReachableGadgetChain,
            addr: chain.first().copied(),
            detail: format!(
                "{} chainable gadget(s) link under the registered policy: {} — every hop \
                 is a monitor-approved transfer",
                chainable.len(),
                path.join(" → ")
            ),
        });
    }

    findings.sort_by_key(|f| (f.kind.as_str(), f.addr));
    SurfaceReport {
        image: image.name.clone(),
        gadgets,
        writable_slots,
        chain,
        findings,
        truncated,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use indra_isa::assemble;

    use super::*;

    #[test]
    fn straight_line_program_has_no_gadgets() {
        let img = assemble("t", "main:\n    halt\n").unwrap();
        let r = enumerate_gadgets(&img);
        assert!(r.gadgets.is_empty());
        assert_eq!(r.stats.attack_surface, 0);
        assert!(r.clean());
    }

    #[test]
    fn dispatch_table_yields_chainable_gadgets_and_slots() {
        let img = crate::fixtures::gadget_chain();
        let r = enumerate_gadgets(&img);
        assert!(r.stats.gadgets >= 2, "gadgets: {:?}", r.gadgets);
        assert!(r.chain.len() >= 2, "chain: {:?}", r.chain);
        assert!(r.stats.writable_slots >= 2, "slots: {:?}", r.writable_slots);
        assert!(r.stats.attack_surface > 0);
        for kind in [
            FindingKind::ReachableGadgetChain,
            FindingKind::WritableCodePointerSlot,
            FindingKind::PolicyResidualSurface,
        ] {
            assert!(r.findings.iter().any(|f| f.kind == kind), "missing {kind}: {:?}", r.findings);
        }
    }

    #[test]
    fn return_gadgets_have_no_steerable_targets() {
        let img = assemble(
            "t",
            ".data\ntable:\n    .target f\n.text\nmain:\n    call f\n    halt\nf:\n    ret\n",
        )
        .unwrap();
        let r = enumerate_gadgets(&img);
        for g in &r.gadgets {
            if g.kind == GadgetKind::Return {
                assert!(g.targets.is_empty(), "return gadget must not be steerable");
            }
        }
    }

    #[test]
    fn hostile_bytes_never_panic() {
        use indra_isa::{Image, Perms, Segment};
        let mut img = Image::new("garbage");
        img.entry = 3;
        img.segments.push(Segment {
            name: "a".into(),
            vaddr: 1,
            data: vec![0xFF; 11],
            size: 11,
            perms: Perms::RX,
        });
        img.indirect_targets = (0..64u32).map(|k| k.wrapping_mul(0x4001_0003)).collect();
        let _ = enumerate_gadgets(&img);
    }
}
