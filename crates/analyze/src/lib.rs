#![warn(missing_docs)]
//! # indra-analyze — static CFG recovery and CFI policy verification
//!
//! The paper's monitor enforces code-origin and control-transfer policies
//! built from *statically derived* program information — symbol tables,
//! export lists, page attributes (§3.2.2–3.2.3). This crate is that
//! derivation, run over the **encoded bytes** of an assembled IR32 image
//! rather than anything the toolchain claims: it disassembles every
//! executable segment, recovers basic blocks, a control-flow graph and a
//! call graph, derives the minimal CFI policy (executable pages,
//! direct-call targets, computed landing sites, function entries), and
//! cross-checks it against the image's *declared* [`AppMetadata`].
//!
//! Disagreements become typed [`Finding`]s; the agreement becomes
//! [`tighten`] — the metadata a strict loader registers with the monitor:
//! the intersection of what the image declares and what the analysis can
//! justify. An image can over-declare all it wants; under
//! `strict_policy` the monitor never hears about the excess, so a
//! transfer there is flagged at runtime.
//!
//! ```
//! use indra_analyze::{analyze_image, tighten};
//!
//! let img = indra_isa::assemble("demo", "main:\n    halt\n").unwrap();
//! let report = analyze_image(&img);
//! assert!(report.clean());
//! assert_eq!(tighten(&img).indirect_targets, img.indirect_targets);
//! ```

mod cfg;
pub mod fixtures;
mod gadget;
mod policy;

pub use cfg::{ends_block, successors, BasicBlock, CallGraph, Cfg, CodeWord, Disassembly};
pub use gadget::{
    enumerate_gadgets, Gadget, GadgetEffects, GadgetKind, SurfaceReport, SurfaceStats, WritableSlot,
};
pub use policy::{
    analyze_image, tighten, AppMetadata, Finding, FindingKind, PolicyReport, PolicyStats,
};

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use indra_isa::assemble;

    use super::*;

    fn img(src: &str) -> indra_isa::Image {
        assemble("t", src).expect("test source assembles")
    }

    #[test]
    fn clean_program_has_no_findings() {
        let i = img("main:\n    call f\n    halt\nf:\n    addi a0, zero, 1\n    ret\n");
        let r = analyze_image(&i);
        assert!(r.clean(), "unexpected findings: {:?}", r.findings);
        assert_eq!(r.stats.declared_indirect, r.stats.registered_indirect);
        assert_eq!(r.stats.max_call_depth, Some(1));
        assert!(r.stats.blocks >= 2);
    }

    #[test]
    fn tighten_matches_from_image_for_clean_declarations() {
        let i = img("main:\n    call f\n    halt\nf:\n    ret\n");
        let declared = AppMetadata::from_image(&i);
        let tight = tighten(&i);
        assert_eq!(tight.executable_pages, declared.executable_pages);
        assert_eq!(tight.indirect_targets, declared.indirect_targets);
    }

    #[test]
    fn tighten_drops_overdeclared_targets() {
        let mut i = img("main:\n    call f\n    halt\nf:\n    addi a0, zero, 1\n    ret\n");
        let mid = i.addr_of("f").unwrap() + 4;
        i.indirect_targets.insert(mid);
        let r = analyze_image(&i);
        assert!(r.findings.iter().any(|f| f.kind == FindingKind::OverbroadDeclaration));
        assert!(!r.tightened.indirect_targets.contains(&mid));
        assert!(r.tightened.indirect_targets.contains(&i.addr_of("f").unwrap()));
    }

    #[test]
    fn every_fixture_triggers_its_expected_finding() {
        for name in fixtures::FIXTURE_NAMES {
            let image = fixtures::fixture(name).expect("known fixture");
            let expected = fixtures::expected_finding(name).expect("expected kind");
            let r = analyze_image(&image);
            assert!(
                r.findings.iter().any(|f| f.kind == expected),
                "{name}: expected {expected}, got {:?}",
                r.findings
            );
        }
    }

    #[test]
    fn unknown_fixture_is_none() {
        assert!(fixtures::fixture("nope").is_none());
        assert!(fixtures::expected_finding("nope").is_none());
    }

    #[test]
    fn recursion_unbounds_the_depth() {
        let i = fixtures::fixture("recursive").unwrap();
        let r = analyze_image(&i);
        assert_eq!(r.stats.max_call_depth, None);
    }

    #[test]
    fn capped_kinds_surface_in_truncated_map() {
        // 40 declared targets each landing on an illegal word: more
        // occurrences than the per-kind cap. The list holds the first
        // 32; the machine-readable `truncated` map carries the total —
        // no prose-tail pseudo-findings.
        use indra_isa::{Perms, Segment};
        let mut i = img("main:\n    halt\n");
        let base = 0x3000_0000u32;
        i.segments.push(Segment {
            name: ".junk".into(),
            vaddr: base,
            data: vec![0xFF; 40 * 4],
            size: 40 * 4,
            perms: Perms::RX,
        });
        for k in 0..40 {
            i.indirect_targets.insert(base + 4 * k);
        }
        let r = analyze_image(&i);
        let shown = r.findings.iter().filter(|f| f.kind == FindingKind::IllegalEncoding).count();
        assert_eq!(shown, 32, "list capped at MAX_PER_KIND");
        assert_eq!(r.truncated.get("illegal_encoding"), Some(&40));
        assert!(
            r.findings.iter().all(|f| f.addr.is_some()),
            "no prose-tail findings without an address: {:?}",
            r.findings
        );
    }

    #[test]
    fn uncapped_reports_have_empty_truncated_map() {
        let i = img("main:\n    call f\n    halt\nf:\n    ret\n");
        assert!(analyze_image(&i).truncated.is_empty());
    }

    #[test]
    fn hostile_bytes_never_panic() {
        // Raw garbage image: misdeclared, misaligned, wrapping segments.
        use indra_isa::{Image, Perms, Segment};
        let mut i = Image::new("garbage");
        i.entry = 3;
        i.segments.push(Segment {
            name: "a".into(),
            vaddr: 1,
            data: vec![0xFF; 11],
            size: 11,
            perms: Perms::RX,
        });
        i.segments.push(Segment {
            name: "b".into(),
            vaddr: u32::MAX - 5,
            data: vec![0x13; 10],
            size: 4096,
            perms: Perms::RWX,
        });
        i.indirect_targets =
            (0..64u32).map(|k| k.wrapping_mul(0x4001_0003)).collect::<BTreeSet<_>>();
        let r = analyze_image(&i);
        assert!(!r.clean());
        assert!(tighten(&i).indirect_targets.is_subset(&i.indirect_targets));
    }
}
