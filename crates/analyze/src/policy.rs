//! CFI policy derivation, declared-vs-proven cross-checking, and the
//! `tighten` entry point used by the OS loader.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use indra_isa::{AluOp, Image, Instruction, Reg, SymbolKind};
use indra_mem::PAGE_SHIFT;

use crate::cfg::{CallGraph, Cfg, Disassembly};

/// Per-application metadata a service registers with the monitor when it
/// starts (§3.2.3: symbol tables, export/import lists, page attributes).
///
/// Lives in the analysis crate because this *is* the static policy: the
/// loader either copies it from the image's declarations
/// ([`AppMetadata::from_image`]) or derives it by intersecting the
/// declarations with what the analyzer can prove ([`crate::tighten`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppMetadata {
    /// Virtual page numbers holding executable code.
    pub executable_pages: BTreeSet<u32>,
    /// Legitimate targets of indirect calls/jumps.
    pub indirect_targets: BTreeSet<u32>,
    /// Legitimate longjmp resumption points (instruction after a setjmp).
    pub longjmp_targets: BTreeSet<u32>,
    /// Declared dynamic-code regions `(base, size)`.
    pub dynamic_regions: Vec<(u32, u32)>,
}

impl AppMetadata {
    /// Derives the metadata from a linked image, exactly as the OS process
    /// manager would when loading the binary (§3.2.2) — trusting every
    /// declaration the image carries.
    #[must_use]
    pub fn from_image(image: &Image) -> AppMetadata {
        let mut meta = AppMetadata::default();
        for seg in image.segments.iter().filter(|s| s.perms.execute && s.size > 0) {
            let first = seg.vaddr >> PAGE_SHIFT;
            let last = ((u64::from(seg.vaddr) + u64::from(seg.size) - 1) >> PAGE_SHIFT) as u32;
            meta.executable_pages.extend(first..=last);
        }
        meta.indirect_targets = image.indirect_targets.clone();
        meta.dynamic_regions = image.dynamic_code_regions.clone();
        meta
    }

    /// Whether `addr` falls inside a declared dynamic-code region.
    #[must_use]
    pub fn in_dynamic_region(&self, addr: u32) -> bool {
        self.dynamic_regions.iter().any(|&(base, size)| {
            u64::from(addr) >= u64::from(base)
                && u64::from(addr) < u64::from(base) + u64::from(size)
        })
    }
}

/// The typed classes of static policy findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// The binary takes the address of a code location it never declared
    /// as an indirect target — an indirect transfer there would be flagged
    /// at runtime even though the program itself computes the pointer.
    UndeclaredIndirectTarget,
    /// Declared indirect targets the analysis cannot justify (not a
    /// function entry, never address-taken, never called) — dead policy
    /// surface an attacker could hide a landing site in.
    OverbroadDeclaration,
    /// A writable+executable segment outside every declared dynamic-code
    /// region.
    WxViolation,
    /// Decodable, non-padding instructions unreachable from every entry,
    /// function symbol, or computed landing site.
    UnreachableCode,
    /// A reachable word that does not decode as any IR32 instruction.
    IllegalEncoding,
    /// A reachable instruction whose fall-through leaves the initialized
    /// part of its segment (execution would run into zero-fill).
    FallthroughOffSegmentEnd,
    /// Recursion in the call graph: the shadow-stack depth cannot be
    /// statically bounded.
    CallGraphCycle,
    /// Two or more CFI-respecting gadgets link into a chain every hop of
    /// which the monitor approves (emitted by
    /// [`crate::enumerate_gadgets`], never by [`analyze_image`]).
    ReachableGadgetChain,
    /// A writable data word already holds a registered indirect target —
    /// one overwrite redirects an in-policy dispatch (emitted by
    /// [`crate::enumerate_gadgets`]).
    WritableCodePointerSlot,
    /// Dispatch sites × registered targets pairs the tightened policy
    /// still permits (emitted by [`crate::enumerate_gadgets`]).
    PolicyResidualSurface,
}

impl FindingKind {
    /// Stable snake_case name (used in `--json` output and allowlists).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::UndeclaredIndirectTarget => "undeclared_indirect_target",
            FindingKind::OverbroadDeclaration => "overbroad_declaration",
            FindingKind::WxViolation => "wx_violation",
            FindingKind::UnreachableCode => "unreachable_code",
            FindingKind::IllegalEncoding => "illegal_encoding",
            FindingKind::FallthroughOffSegmentEnd => "fallthrough_off_segment_end",
            FindingKind::CallGraphCycle => "call_graph_cycle",
            FindingKind::ReachableGadgetChain => "reachable_gadget_chain",
            FindingKind::WritableCodePointerSlot => "writable_code_pointer_slot",
            FindingKind::PolicyResidualSurface => "policy_residual_surface",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One static policy finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The finding class.
    pub kind: FindingKind,
    /// The address the finding anchors to, when one exists.
    pub addr: Option<u32>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(f, "[{}] {:#010x}: {}", self.kind, a, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Per-image statistics from one analysis pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Decodable instructions in initialized executable memory.
    pub insns: u64,
    /// Recovered basic blocks (reachable code only).
    pub blocks: u64,
    /// CFG edges between recovered blocks.
    pub cfg_edges: u64,
    /// Function entries (symbols, the entry point, direct-call targets).
    pub functions: u64,
    /// Call-graph edges.
    pub call_edges: u64,
    /// Indirect targets the image declares.
    pub declared_indirect: u64,
    /// Indirect targets the analysis proves plausible (function entries,
    /// call targets, address-taken code addresses, the entry point).
    pub proven_indirect: u64,
    /// Indirect targets a strict loader registers: declared ∩ proven.
    pub registered_indirect: u64,
    /// Executable pages.
    pub executable_pages: u64,
    /// Shadow-stack frame bound, or `None` when recursion was found.
    pub max_call_depth: Option<u32>,
}

/// The full result of statically analyzing one image.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Image name, for diagnostics.
    pub image: String,
    /// Cross-check findings, ordered by kind then address.
    pub findings: Vec<Finding>,
    /// Summary statistics.
    pub stats: PolicyStats,
    /// The metadata a strict loader should register: declared policy
    /// narrowed to what the analysis can justify.
    pub tightened: AppMetadata,
    /// Finding kinds whose occurrences exceeded the per-kind cap:
    /// kind name → **total** occurrences found (of which only the first
    /// [`MAX_PER_KIND`] appear in `findings`). Empty when nothing was
    /// capped.
    pub truncated: BTreeMap<&'static str, u64>,
}

impl PolicyReport {
    /// `true` when the cross-check produced no findings.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Cap per finding kind: hostile blobs can make thousands of illegal or
/// unreachable words; the excess is summarized in the report's
/// `truncated` map instead of drowning the list.
pub(crate) const MAX_PER_KIND: usize = 32;

/// Statically analyzes an image: disassembles its executable segments,
/// recovers CFG and call graph, derives the minimal CFI policy, and
/// cross-checks it against the image's declarations.
///
/// Never panics, whatever the bytes: illegal encodings, misaligned or
/// wrapping segments, and absurd declarations all become findings or are
/// ignored, exactly because attack payload images are expected input.
#[must_use]
pub fn analyze_image(image: &Image) -> PolicyReport {
    let disasm = Disassembly::of_image(image);
    let meta = AppMetadata::from_image(image);
    let declared = &image.indirect_targets;

    // -- Derivation: function entries and address-taken code addresses.
    let symbols: BTreeSet<u32> = image
        .symbols
        .iter()
        .filter(|s| s.kind == SymbolKind::Function)
        .map(|s| s.addr)
        .filter(|a| disasm.words.contains_key(a))
        .collect();
    let address_taken = scan_address_taken(image, &disasm);

    // Reachability roots: every address control can legitimately reach
    // without a prior violation. Declared targets count — in permissive
    // mode the monitor would accept transfers there.
    let mut roots: BTreeSet<u32> = symbols.clone();
    roots.insert(image.entry);
    roots.extend(address_taken.keys().copied());
    roots.extend(declared.iter().copied());
    let cfg = Cfg::build(&disasm, &roots);

    let call_targets: BTreeSet<u32> = cfg.call_sites.iter().map(|&(_, t)| t).collect();
    let mut entries: BTreeSet<u32> = symbols.clone();
    entries.extend(call_targets.iter().copied());
    if disasm.words.contains_key(&image.entry) {
        entries.insert(image.entry);
    }

    let mut proven: BTreeSet<u32> = entries.clone();
    proven.extend(address_taken.keys().filter(|a| disasm.words.contains_key(a)));

    let taken_set: BTreeSet<u32> = address_taken.keys().copied().collect();
    let graph = CallGraph::build(&cfg, &entries, &taken_set);

    // -- Cross-check: findings.
    let mut findings = Vec::new();
    let mut truncated: BTreeMap<&'static str, u64> = BTreeMap::new();

    for seg in image.segments.iter().filter(|s| s.perms.write && s.perms.execute) {
        let covered = image.dynamic_code_regions.iter().any(|&(base, size)| {
            u64::from(seg.vaddr) >= u64::from(base)
                && u64::from(seg.vaddr) + u64::from(seg.size) <= u64::from(base) + u64::from(size)
        });
        if !covered {
            findings.push(Finding {
                kind: FindingKind::WxViolation,
                addr: Some(seg.vaddr),
                detail: format!(
                    "segment {} ({} bytes) is writable+executable outside every declared dynamic-code region",
                    seg.name, seg.size
                ),
            });
        }
    }

    for (&addr, provenance) in &address_taken {
        if !declared.contains(&addr) && !meta.in_dynamic_region(addr) {
            findings.push(Finding {
                kind: FindingKind::UndeclaredIndirectTarget,
                addr: Some(addr),
                detail: format!("{provenance}, but the image never declares it an indirect target"),
            });
        }
    }

    let unused: Vec<u32> = declared
        .iter()
        .copied()
        .filter(|&t| !proven.contains(&t) && !meta.in_dynamic_region(t))
        .collect();
    if !unused.is_empty() {
        let shown: Vec<String> = unused.iter().take(8).map(|t| format!("{t:#010x}")).collect();
        let more =
            if unused.len() > 8 { format!(" … ({} total)", unused.len()) } else { String::new() };
        findings.push(Finding {
            kind: FindingKind::OverbroadDeclaration,
            addr: Some(unused[0]),
            detail: format!(
                "{} declared indirect target(s) the analysis cannot justify: {}{}",
                unused.len(),
                shown.join(", "),
                more
            ),
        });
    }

    for &addr in cfg.illegal.iter().take(MAX_PER_KIND) {
        let word = disasm.words[&addr].word;
        findings.push(Finding {
            kind: FindingKind::IllegalEncoding,
            addr: Some(addr),
            detail: format!("reachable word {word:#010x} is not a valid IR32 instruction"),
        });
    }
    if cfg.illegal.len() > MAX_PER_KIND {
        truncated.insert(FindingKind::IllegalEncoding.as_str(), cfg.illegal.len() as u64);
    }

    for &addr in cfg.fallthrough_exits.iter().take(MAX_PER_KIND) {
        findings.push(Finding {
            kind: FindingKind::FallthroughOffSegmentEnd,
            addr: Some(addr),
            detail: "execution falls through past the end of initialized code".to_owned(),
        });
    }

    // Unreachable code: decodable non-padding instructions outside the
    // reachable set, reported as maximal runs. `nop` runs are the
    // toolchain's page padding, not code.
    let mut run_start: Option<u32> = None;
    let mut run_len = 0u32;
    let mut prev: Option<u32> = None;
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for (&addr, cw) in &disasm.words {
        let is_dead =
            cw.inst.is_some_and(|i| i != Instruction::Nop) && !cfg.reachable.contains(&addr);
        let contiguous = prev == Some(addr.wrapping_sub(4));
        if is_dead {
            match run_start {
                Some(_) if contiguous => run_len += 1,
                _ => {
                    if let Some(s) = run_start {
                        runs.push((s, run_len));
                    }
                    run_start = Some(addr);
                    run_len = 1;
                }
            }
        } else if let Some(s) = run_start.take() {
            runs.push((s, run_len));
        }
        prev = Some(addr);
    }
    if let Some(s) = run_start {
        runs.push((s, run_len));
    }
    for &(start, len) in runs.iter().take(MAX_PER_KIND) {
        findings.push(Finding {
            kind: FindingKind::UnreachableCode,
            addr: Some(start),
            detail: format!(
                "{len} instruction(s) unreachable from every entry, function, or landing site"
            ),
        });
    }
    if runs.len() > MAX_PER_KIND {
        truncated.insert(FindingKind::UnreachableCode.as_str(), runs.len() as u64);
    }

    if let Some(cycle) = &graph.cycle {
        let path: Vec<String> = cycle
            .iter()
            .map(|&a| match image.function_containing(a) {
                Some(sym) => format!("{} ({a:#010x})", sym.name),
                None => format!("{a:#010x}"),
            })
            .collect();
        findings.push(Finding {
            kind: FindingKind::CallGraphCycle,
            addr: cycle.first().copied(),
            detail: format!(
                "recursive call chain {} — shadow-stack depth cannot be statically bounded",
                path.join(" → ")
            ),
        });
    }

    // -- Tightened registration: declared ∩ (proven ∪ dynamic regions).
    let tightened = AppMetadata {
        executable_pages: meta.executable_pages.clone(),
        indirect_targets: declared
            .iter()
            .copied()
            .filter(|&t| proven.contains(&t) || meta.in_dynamic_region(t))
            .collect(),
        longjmp_targets: BTreeSet::new(),
        dynamic_regions: meta.dynamic_regions.clone(),
    };

    let stats = PolicyStats {
        insns: disasm.words.values().filter(|cw| cw.inst.is_some()).count() as u64,
        blocks: cfg.blocks.len() as u64,
        cfg_edges: cfg.edges,
        functions: entries.len() as u64,
        call_edges: graph.edge_count,
        declared_indirect: declared.len() as u64,
        proven_indirect: proven.len() as u64,
        registered_indirect: tightened.indirect_targets.len() as u64,
        executable_pages: meta.executable_pages.len() as u64,
        max_call_depth: graph.max_depth,
    };

    findings.sort_by_key(|f| (f.kind.as_str(), f.addr));
    PolicyReport { image: image.name.clone(), findings, stats, tightened, truncated }
}

/// Derives the metadata a *strict* loader registers with the monitor: the
/// declared policy narrowed to what static analysis can justify. Never
/// wider than [`AppMetadata::from_image`].
#[must_use]
pub fn tighten(image: &Image) -> AppMetadata {
    analyze_image(image).tightened
}

/// Finds every code address the binary materializes: word-aligned
/// executable addresses stored in initialized data (function-pointer
/// tables) and `lui`+`ori` pairs in text (`la` of a text label). Returns
/// address → provenance description.
fn scan_address_taken(image: &Image, disasm: &Disassembly) -> BTreeMap<u32, String> {
    let mut taken: BTreeMap<u32, String> = BTreeMap::new();
    let candidate = |w: u32| w != 0 && w.is_multiple_of(4) && image.is_executable(w);

    for seg in image.segments.iter().filter(|s| !s.perms.execute) {
        let mut off = (4 - (seg.vaddr % 4) as usize) % 4;
        while off + 4 <= seg.data.len() {
            let w = u32::from_le_bytes([
                seg.data[off],
                seg.data[off + 1],
                seg.data[off + 2],
                seg.data[off + 3],
            ]);
            if candidate(w) {
                let at = seg.vaddr.wrapping_add(off as u32);
                taken.entry(w).or_insert_with(|| {
                    format!("address-taken by data word at {at:#010x} in {}", seg.name)
                });
            }
            off += 4;
        }
    }

    // Linear `lui rd, hi` / `ori rd, rd, lo` pairing per contiguous run;
    // any other write to rd, any control transfer, or a run break clears
    // the pending upper half. (Deliberately no folding through `addi`:
    // a longjmp pad computed as `label + 4` stays unproven and must be
    // declared via the runtime registration path instead.)
    let mut pending = [None::<u32>; 32];
    let mut prev: Option<u32> = None;
    for (&addr, cw) in &disasm.words {
        if prev != Some(addr.wrapping_sub(4)) {
            pending = [None; 32];
        }
        prev = Some(addr);
        let Some(inst) = cw.inst else {
            pending = [None; 32];
            continue;
        };
        if inst.is_control() {
            pending = [None; 32];
            continue;
        }
        match inst {
            Instruction::Lui { rd, imm } => pending[rd.index() as usize] = Some(imm << 16),
            Instruction::AluImm { op: AluOp::Or, rd, rs1, imm } if rd == rs1 => {
                if let Some(hi) = pending[rd.index() as usize] {
                    let w = hi | (imm as u32 & 0xFFFF);
                    if candidate(w) {
                        taken
                            .entry(w)
                            .or_insert_with(|| format!("address-taken by lui+ori at {addr:#010x}"));
                    }
                }
                pending[rd.index() as usize] = None;
            }
            _ => {
                if let Some(rd) = dest_reg(inst) {
                    pending[rd.index() as usize] = None;
                }
            }
        }
    }
    taken
}

/// The register an instruction writes, if any.
pub(crate) fn dest_reg(inst: Instruction) -> Option<Reg> {
    match inst {
        Instruction::Alu { rd, .. }
        | Instruction::AluImm { rd, .. }
        | Instruction::Lui { rd, .. }
        | Instruction::Load { rd, .. }
        | Instruction::Jal { rd, .. }
        | Instruction::Jalr { rd, .. } => Some(rd),
        _ => None,
    }
}
