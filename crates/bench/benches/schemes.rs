//! Microbenchmarks of the checkpoint schemes' hot paths — the per-store
//! hook (Table 3's backup column) and the rollback (Table 3's recovery
//! column), plus an end-to-end request per scheme.
//!
//! Plain `Instant`-based harness (`cargo bench -p indra-bench --bench
//! schemes`); the build is fully offline, so no Criterion.

use std::time::Instant;

use indra_bench::{run, RunOptions};
use indra_core::{DeltaBackupEngine, DeltaConfig, Scheme, SchemeKind, UndoLog, VirtualCheckpoint};
use indra_mem::{FrameAllocator, PhysicalMemory};
use indra_sim::{AddressSpace, Pte};
use indra_workloads::{Attack, ServiceApp, UNMAPPED_ADDR};

const ASID: u16 = 7;

/// Times `iters` calls of `f` after a small warm-up and prints µs/iter.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<44} {iters:>9} iters {:>12.2} us/iter",
        elapsed.as_micros() as f64 / f64::from(iters)
    );
}

fn rig() -> (AddressSpace, PhysicalMemory) {
    let mut space = AddressSpace::new(ASID);
    for p in 0..16 {
        space.map(0x10 + p, Pte { ppn: 0x50 + p, read: true, write: true, execute: false });
    }
    (space, PhysicalMemory::new())
}

/// One synthetic request: 64 pages-worth of scattered stores.
fn write_burst(scheme: &mut dyn Scheme, space: &mut AddressSpace, phys: &mut PhysicalMemory) {
    scheme.begin_request(ASID, space, phys);
    for i in 0..512u32 {
        let vaddr = (0x10000 + (i * 97 % (16 * 4096))) & !3;
        let paddr = space.translate(vaddr, indra_sim::AccessKind::Write).unwrap();
        scheme.before_write(ASID, vaddr, paddr, phys);
        phys.write_u32(paddr, i);
    }
}

fn bench_backup_hot_path() {
    let schemes: Vec<(&str, Box<dyn Scheme>)> = vec![
        (
            "backup_hook_per_request/delta",
            Box::new(DeltaBackupEngine::new(
                DeltaConfig::default(),
                FrameAllocator::new(0x1000, 0x4000),
            )),
        ),
        ("backup_hook_per_request/undo_log", Box::new(UndoLog::new())),
        (
            "backup_hook_per_request/virtual_checkpoint",
            Box::new(VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x4000))),
        ),
    ];
    for (name, mut s) in schemes {
        let (mut space, mut phys) = rig();
        s.register(ASID);
        bench(name, 2_000, || write_burst(s.as_mut(), &mut space, &mut phys));
    }
}

fn bench_rollback() {
    let schemes: Vec<(&str, Box<dyn Scheme>)> = vec![
        (
            "rollback_after_request/delta_lazy",
            Box::new(DeltaBackupEngine::new(
                DeltaConfig::default(),
                FrameAllocator::new(0x1000, 0x4000),
            )),
        ),
        ("rollback_after_request/undo_log_walk", Box::new(UndoLog::new())),
        (
            "rollback_after_request/page_copy_back",
            Box::new(VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x4000))),
        ),
    ];
    for (name, mut s) in schemes {
        let (mut space, mut phys) = rig();
        s.register(ASID);
        bench(name, 1_000, || {
            write_burst(s.as_mut(), &mut space, &mut phys);
            s.fail_and_rollback(ASID, &mut space, &mut phys);
        });
    }
}

fn bench_end_to_end() {
    for (name, scheme, attack) in [
        ("end_to_end_bind/delta_clean", SchemeKind::Delta, None),
        (
            "end_to_end_bind/delta_under_attack",
            SchemeKind::Delta,
            Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 2)),
        ),
        ("end_to_end_bind/virtual_ckpt_clean", SchemeKind::VirtualCheckpoint, None),
    ] {
        bench(name, 10, || {
            let mut o = RunOptions::quick(ServiceApp::Bind);
            o.scale = 20;
            o.requests = 4;
            o.warmup = 1;
            o.scheme = scheme;
            o.attack = attack;
            let _ = run(&o);
        });
    }
}

fn main() {
    bench_backup_hot_path();
    bench_rollback();
    bench_end_to_end();
}
