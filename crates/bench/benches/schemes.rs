//! Criterion microbenchmarks of the checkpoint schemes' hot paths —
//! the per-store hook (Table 3's backup column) and the rollback
//! (Table 3's recovery column), plus an end-to-end request per scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use indra_bench::{run, RunOptions};
use indra_core::{
    DeltaBackupEngine, DeltaConfig, Scheme, SchemeKind, UndoLog, VirtualCheckpoint,
};
use indra_mem::{FrameAllocator, PhysicalMemory};
use indra_sim::{AddressSpace, Pte};
use indra_workloads::{Attack, ServiceApp, UNMAPPED_ADDR};

const ASID: u16 = 7;

fn rig() -> (AddressSpace, PhysicalMemory) {
    let mut space = AddressSpace::new(ASID);
    for p in 0..16 {
        space.map(0x10 + p, Pte { ppn: 0x50 + p, read: true, write: true, execute: false });
    }
    (space, PhysicalMemory::new())
}

/// One synthetic request: 64 pages-worth of scattered stores.
fn write_burst(scheme: &mut dyn Scheme, space: &mut AddressSpace, phys: &mut PhysicalMemory) {
    scheme.begin_request(ASID, space, phys);
    for i in 0..512u32 {
        let vaddr = (0x10000 + (i * 97 % (16 * 4096))) & !3;
        let paddr = space.translate(vaddr, indra_sim::AccessKind::Write).unwrap();
        scheme.before_write(ASID, vaddr, paddr, phys);
        phys.write_u32(paddr, i);
    }
}

fn bench_backup_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("backup_hook_per_request");
    group.sample_size(20);

    group.bench_function("delta", |b| {
        let (mut space, mut phys) = rig();
        let mut s = DeltaBackupEngine::new(
            DeltaConfig::default(),
            FrameAllocator::new(0x1000, 0x4000),
        );
        s.register(ASID);
        b.iter(|| write_burst(&mut s, &mut space, &mut phys));
    });
    group.bench_function("undo_log", |b| {
        let (mut space, mut phys) = rig();
        let mut s = UndoLog::new();
        s.register(ASID);
        b.iter(|| write_burst(&mut s, &mut space, &mut phys));
    });
    group.bench_function("virtual_checkpoint", |b| {
        let (mut space, mut phys) = rig();
        let mut s = VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x4000));
        s.register(ASID);
        b.iter(|| write_burst(&mut s, &mut space, &mut phys));
    });
    group.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_after_request");
    group.sample_size(20);

    group.bench_function("delta_lazy", |b| {
        let (mut space, mut phys) = rig();
        let mut s = DeltaBackupEngine::new(
            DeltaConfig::default(),
            FrameAllocator::new(0x1000, 0x4000),
        );
        s.register(ASID);
        b.iter_batched(
            || (),
            |()| {
                write_burst(&mut s, &mut space, &mut phys);
                s.fail_and_rollback(ASID, &mut space, &mut phys);
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("undo_log_walk", |b| {
        let (mut space, mut phys) = rig();
        let mut s = UndoLog::new();
        s.register(ASID);
        b.iter_batched(
            || (),
            |()| {
                write_burst(&mut s, &mut space, &mut phys);
                s.fail_and_rollback(ASID, &mut space, &mut phys);
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("page_copy_back", |b| {
        let (mut space, mut phys) = rig();
        let mut s = VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x4000));
        s.register(ASID);
        b.iter_batched(
            || (),
            |()| {
                write_burst(&mut s, &mut space, &mut phys);
                s.fail_and_rollback(ASID, &mut space, &mut phys);
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_bind");
    group.sample_size(10);
    for (name, scheme, attack) in [
        ("delta_clean", SchemeKind::Delta, None),
        ("delta_under_attack", SchemeKind::Delta, Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 2))),
        ("virtual_ckpt_clean", SchemeKind::VirtualCheckpoint, None),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut o = RunOptions::quick(ServiceApp::Bind);
                o.scale = 20;
                o.requests = 4;
                o.warmup = 1;
                o.scheme = scheme;
                o.attack = attack;
                run(&o)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backup_hot_path, bench_rollback, bench_end_to_end);
criterion_main!(benches);
