//! Criterion microbenchmarks of the simulator substrate: cache, TLB,
//! DRAM, monitor event processing and raw instruction throughput — the
//! costs every figure's simulation rests on.

use criterion::{criterion_group, criterion_main, Criterion};

use indra_core::{AppMetadata, Monitor, MonitorConfig};
use indra_isa::assemble;
use indra_mem::{Cache, CacheConfig, DramConfig, Sdram, Tlb, TlbConfig};
use indra_sim::{CoreStep, Machine, MachineConfig, StampedEvent, TraceEvent};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.bench_function("l1_hit_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1());
        cache.access(0x1000, false);
        let mut addr = 0x1000u32;
        b.iter(|| {
            addr = (addr.wrapping_add(4)) & 0x1FFF;
            cache.access(0x1000 + addr % 32, false)
        });
    });
    group.bench_function("l2_miss_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l2());
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(64 * 2048); // new set every time
            cache.access(addr, true)
        });
    });
    group.bench_function("tlb_lookup", |b| {
        let mut tlb = Tlb::new(TlbConfig::dtlb());
        let mut vpn = 0u32;
        b.iter(|| {
            vpn = (vpn + 1) % 128;
            tlb.access(1, vpn)
        });
    });
    group.bench_function("sdram_access", |b| {
        let mut dram = Sdram::new(DramConfig::default());
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            dram.access(addr, 64)
        });
    });
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.bench_function("call_return_pair", |b| {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register_app(1, AppMetadata::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            m.process(StampedEvent {
                event: TraceEvent::Call { pc: 0x40_0000, target: 0x40_0100, return_addr: 0x40_0004, sp: 0x7000 },
                cycle: t,
                asid: 1,
            });
            m.process(StampedEvent {
                event: TraceEvent::Return { pc: 0x40_0104, target: 0x40_0004, sp: 0x7000 },
                cycle: t + 5,
                asid: 1,
            })
        });
    });
    group.finish();
}

fn bench_simulator_ips(c: &mut Criterion) {
    // Raw simulated-instruction throughput: how many instructions the
    // cycle-accounting core retires per wall-clock second.
    let mut group = c.benchmark_group("simulator");
    group.bench_function("instructions_per_iteration_x1000", |b| {
        let mut machine = Machine::new(MachineConfig::default());
        machine.boot_asymmetric();
        machine.set_monitoring(false);
        let img = assemble(
            "spin",
            "main:\n li t0, 0\nloop:\n addi t0, t0, 1\n xor t1, t1, t0\n add t2, t2, t1\n j loop\n",
        )
        .unwrap();
        machine.create_space(5);
        machine.load_image(5, &img).unwrap();
        machine.core_mut(1).set_asid(5);
        machine.core_mut(1).set_pc(img.entry);
        b.iter(|| {
            for _ in 0..1000 {
                match machine.step_core_simple(1) {
                    CoreStep::Executed => {}
                    other => panic!("{other:?}"),
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_monitor, bench_simulator_ips);
criterion_main!(benches);
