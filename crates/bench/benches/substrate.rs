//! Microbenchmarks of the simulator substrate: cache, TLB, DRAM,
//! monitor event processing and raw instruction throughput — the costs
//! every figure's simulation rests on.
//!
//! Plain `Instant`-based harness (`cargo bench -p indra-bench --bench
//! substrate`); the build is fully offline, so no Criterion.

use std::time::Instant;

use indra_core::{AppMetadata, Monitor, MonitorConfig};
use indra_isa::assemble;
use indra_mem::{Cache, CacheConfig, DramConfig, Sdram, Tlb, TlbConfig};
use indra_sim::{CoreStep, Machine, MachineConfig, StampedEvent, TraceEvent};

/// Times `iters` calls of `f` after a 10% warm-up and prints ns/iter.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<44} {iters:>9} iters {:>12.1} ns/iter",
        elapsed.as_nanos() as f64 / f64::from(iters)
    );
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::l1());
    cache.access(0x1000, false);
    let mut addr = 0x1000u32;
    bench("substrate/l1_hit_stream", 1_000_000, || {
        addr = (addr.wrapping_add(4)) & 0x1FFF;
        cache.access(0x1000 + addr % 32, false);
    });

    let mut l2 = Cache::new(CacheConfig::l2());
    let mut addr = 0u32;
    bench("substrate/l2_miss_stream", 1_000_000, || {
        addr = addr.wrapping_add(64 * 2048); // new set every time
        l2.access(addr, true);
    });

    let mut tlb = Tlb::new(TlbConfig::dtlb());
    let mut vpn = 0u32;
    bench("substrate/tlb_lookup", 1_000_000, || {
        vpn = (vpn + 1) % 128;
        tlb.access(1, vpn);
    });

    let mut dram = Sdram::new(DramConfig::default());
    let mut daddr = 0u32;
    bench("substrate/sdram_access", 1_000_000, || {
        daddr = daddr.wrapping_add(4096);
        dram.access(daddr, 64);
    });
}

fn bench_monitor() {
    let mut m = Monitor::new(MonitorConfig::default());
    m.register_app(1, AppMetadata::default());
    let mut t = 0u64;
    bench("monitor/call_return_pair", 500_000, || {
        t += 10;
        m.process(StampedEvent {
            event: TraceEvent::Call {
                pc: 0x40_0000,
                target: 0x40_0100,
                return_addr: 0x40_0004,
                sp: 0x7000,
            },
            cycle: t,
            asid: 1,
        });
        m.process(StampedEvent {
            event: TraceEvent::Return { pc: 0x40_0104, target: 0x40_0004, sp: 0x7000 },
            cycle: t + 5,
            asid: 1,
        });
    });
}

fn bench_simulator_ips() {
    // Raw simulated-instruction throughput: how many instructions the
    // cycle-accounting core retires per wall-clock second.
    let mut machine = Machine::new(MachineConfig::default());
    machine.boot_asymmetric();
    machine.set_monitoring(false);
    let img = assemble(
        "spin",
        "main:\n li t0, 0\nloop:\n addi t0, t0, 1\n xor t1, t1, t0\n add t2, t2, t1\n j loop\n",
    )
    .unwrap();
    machine.create_space(5);
    machine.load_image(5, &img).unwrap();
    machine.core_mut(1).set_asid(5);
    machine.core_mut(1).set_pc(img.entry);
    bench("simulator/instructions_x1000", 20_000, || {
        for _ in 0..1000 {
            match machine.step_core_simple(1) {
                CoreStep::Executed => {}
                other => panic!("{other:?}"),
            }
        }
    });
}

fn main() {
    bench_cache();
    bench_monitor();
    bench_simulator_ips();
}
