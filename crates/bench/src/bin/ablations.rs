//! Ablation studies over INDRA's design choices — the knobs the paper
//! fixes (64 B delta granularity, 32-entry CAM, one resurrectee, a
//! 3-failure hybrid threshold) swept to show *why* those are the right
//! points.
//!
//! ```text
//! cargo run --release -p indra-bench --bin ablations [--scale N]
//! ```

use indra_bench::{build_image, run, RunOptions};
use indra_core::{DeltaConfig, IndraSystem, RunState, SchemeKind, SystemConfig};
use indra_sim::CoreRole;
use indra_workloads::{attack_request, benign_request, Attack, ServiceApp, Traffic, UNMAPPED_ADDR};

fn main() {
    let scale: u32 = {
        let mut scale = 4;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if a == "--scale" {
                scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(4);
            }
        }
        scale
    };
    println!("== INDRA ablations (scale 1/{scale}) ==\n");
    ablate_line_size(scale);
    ablate_cam(scale);
    ablate_fleet(scale);
    ablate_hybrid_threshold(scale);
}

/// Delta backup granularity: the paper picks the 64 B L2 line. Smaller
/// lines copy less per backup but bookkeep more; larger lines approach
/// page-copy behaviour.
fn ablate_line_size(scale: u32) {
    println!("-- delta line size (bind, rollback every other request) --");
    println!("{:<10} {:>12} {:>14} {:>10}", "line", "line copies", "bytes backed", "slowdown");
    let mut base = RunOptions::paper(ServiceApp::Bind);
    base.scale = scale;
    base.requests = 8;
    base.warmup = 2;
    base.monitoring = false;
    base.scheme = SchemeKind::None;
    let baseline = run(&base).cycles_per_benign;

    for line_size in [32u32, 64, 128] {
        let image = build_image(&base);
        let cfg = SystemConfig {
            delta: DeltaConfig { line_size, ..DeltaConfig::default() },
            ..SystemConfig::default()
        };
        let mut sys = IndraSystem::new(cfg);
        sys.deploy(&image).unwrap();
        let script =
            Traffic::with_attacks(8, Attack::WildWrite { addr: UNMAPPED_ADDR }, 2, base.seed)
                .generate(&image);
        for r in &script {
            sys.push_request(r.data.clone(), r.malicious);
        }
        let start = sys.service_cycles();
        let state = sys.run(2_000_000_000);
        assert_eq!(state, RunState::Idle);
        let span = sys.service_cycles() - start;
        let stats = sys.scheme().stats();
        println!(
            "{:<10} {:>12} {:>14} {:>9.2}x",
            format!("{line_size}B"),
            stats.line_copies,
            stats.line_copies * u64::from(line_size),
            span as f64 / sys.report().benign_served as f64 / baseline,
        );
    }
    println!("(64B balances copy volume against per-line bookkeeping)\n");
}

/// CAM filter size beyond the paper's 32/64 pair.
fn ablate_cam(scale: u32) {
    println!("-- code-origin CAM size (httpd) --");
    println!("{:<10} {:>16} {:>14}", "entries", "checks sent", "sent %");
    for entries in [0usize, 8, 16, 32, 64, 128] {
        let mut o = RunOptions::paper(ServiceApp::Httpd);
        o.scale = scale;
        o.requests = 6;
        o.warmup = 2;
        o.cam_entries = entries;
        let m = run(&o);
        let sent = m.cam.lookups - m.cam.hits;
        println!(
            "{:<10} {:>16} {:>13.1}%",
            if entries == 0 { "disabled".to_owned() } else { entries.to_string() },
            sent,
            m.cam.sent_fraction() * 100.0
        );
    }
    println!("(returns diminish past 32 entries — the paper's choice)\n");
}

/// One resurrector, N resurrectees: monitor contention as the fleet
/// grows (the paper's design extension, Fig. 2's topology).
fn ablate_fleet(scale: u32) {
    println!("-- resurrectees per resurrector (httpd each, same traffic) --");
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "resurrectees", "benign served", "monitor events", "fifo stalls"
    );
    for n in [1usize, 2, 3] {
        let mut cfg = SystemConfig::default();
        cfg.machine.cores = std::iter::once(CoreRole::Resurrector)
            .chain(std::iter::repeat_n(CoreRole::Resurrectee, n))
            .collect();
        let mut sys = IndraSystem::new(cfg);
        let mut o = RunOptions::paper(ServiceApp::Httpd);
        o.scale = scale;
        let image = build_image(&o);
        for _ in 0..n {
            sys.deploy(&image).unwrap();
        }
        for core in sys.service_cores() {
            for i in 0..4u8 {
                sys.push_request_to(core, benign_request(i, 0x10 + i), false);
            }
        }
        let state = sys.run(3_000_000_000);
        assert_eq!(state, RunState::Idle);
        println!(
            "{:<14} {:>14} {:>16} {:>14}",
            n,
            sys.report().benign_served,
            sys.monitor().stats().events,
            sys.machine().fifo().stats().full_stalls,
        );
    }
    println!("(one monitor absorbs several services; the shared FIFO is the pressure point)\n");
}

/// Hybrid escalation threshold under a dormant attack: lower thresholds
/// sacrifice fewer benign victims before the macro restore.
fn ablate_hybrid_threshold(scale: u32) {
    println!("-- hybrid failure threshold (dormant attack, 10 benign followers) --");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "threshold", "benign served", "micro tries", "macro used"
    );
    for threshold in [1u32, 2, 3, 5] {
        let mut o = RunOptions::paper(ServiceApp::Httpd);
        o.scale = scale;
        let image = build_image(&o);
        let mut cfg = SystemConfig::default();
        cfg.hybrid.macro_interval = 2;
        cfg.hybrid.failure_threshold = threshold;
        let mut sys = IndraSystem::new(cfg);
        sys.deploy(&image).unwrap();
        for i in 0..3u8 {
            sys.push_request(benign_request(i, i + 1), false);
        }
        sys.push_request(attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image), true);
        for i in 0..10u8 {
            sys.push_request(benign_request(i, 0x21 + i), false);
        }
        let state = sys.run(3_000_000_000);
        assert_ne!(state, RunState::BudgetExhausted);
        let h = sys.hybrid().stats();
        println!(
            "{:<12} {:>11}/13 {:>14} {:>14}",
            threshold,
            sys.report().benign_served,
            h.micro_recoveries,
            h.macro_recoveries,
        );
    }
    println!("(each extra micro attempt costs one benign victim under dormant corruption)");
}
