//! Prints the no-INDRA base response time per app (development aid).
use indra_bench::{run, RunOptions};
use indra_core::SchemeKind;
use indra_workloads::ServiceApp;

fn main() {
    for app in ServiceApp::ALL {
        let mut o = RunOptions::paper(app);
        o.requests = 6;
        o.warmup = 2;
        o.monitoring = false;
        o.scheme = SchemeKind::None;
        let m = run(&o);
        println!(
            "{:<10} base_cycles={:>10.0} insns={:>9.0} CPI={:.2}",
            app.name(),
            m.mean_response_cycles,
            m.insns_per_request,
            m.mean_response_cycles / m.insns_per_request
        );
    }
}
