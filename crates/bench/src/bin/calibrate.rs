//! Calibration dashboard: prints each app's measured profile next to the
//! paper's targets so the workload specs can be tuned.
//!
//! ```text
//! cargo run --release -p indra-bench --bin calibrate [scale]
//! ```

use indra_bench::{run, RunOptions};
use indra_core::SchemeKind;
use indra_workloads::ServiceApp;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("calibration at scale 1/{scale}");
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "app", "insns/req", "IL1%", "tgtIL1%", "backup%", "tgtbk%", "mon ovh%"
    );
    let targets = [
        (ServiceApp::Ftpd, 1.5, 15.0),
        (ServiceApp::Httpd, 2.0, 20.0),
        (ServiceApp::Bind, 4.5, 45.0),
        (ServiceApp::Sendmail, 2.5, 20.0),
        (ServiceApp::Imap, 1.2, 12.0),
        (ServiceApp::Nfs, 1.8, 18.0),
    ];
    for (app, tgt_il1, tgt_bk) in targets {
        let mut opts = RunOptions::paper(app);
        opts.scale = scale;
        opts.requests = 6;
        opts.warmup = 2;
        let m = run(&opts);

        // Monitoring overhead (Fig. 11): same app, monitor off.
        let mut base = opts.clone();
        base.monitoring = false;
        base.scheme = SchemeKind::None;
        let mut mon_only = opts.clone();
        mon_only.scheme = SchemeKind::None;
        let with = run(&mon_only);
        let without = run(&base);
        let ovh = (with.cycles_per_benign / without.cycles_per_benign - 1.0) * 100.0;

        println!(
            "{:<10} {:>12.0} {:>8.2} {:>8.1} {:>9.1} {:>9.1} {:>10.2}",
            app.name(),
            m.insns_per_request,
            m.il1.miss_rate() * 100.0,
            tgt_il1,
            m.scheme.backup_fraction() * 100.0,
            tgt_bk,
            ovh,
        );
    }
}
