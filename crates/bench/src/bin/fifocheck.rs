//! Development aid: Fig. 10 (CAM) and Fig. 12 (FIFO sweep) behaviour.

use indra_bench::{run, RunOptions};
use indra_workloads::ServiceApp;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("-- fig10: % of code-origin checks sent to monitor (CAM 32 / 64) --");
    for app in ServiceApp::ALL {
        let mut o = RunOptions::paper(app);
        o.scale = scale;
        o.requests = 6;
        o.warmup = 2;
        let m32 = run(&o);
        o.cam_entries = 64;
        let m64 = run(&o);
        println!(
            "{:<10} cam32 {:>6.1}%  cam64 {:>6.1}%   (lookups {})",
            app.name(),
            m32.cam.sent_fraction() * 100.0,
            m64.cam.sent_fraction() * 100.0,
            m32.cam.lookups
        );
    }
    println!("-- fig12: normalized cycles/benign vs FIFO entries (httpd) --");
    let mut o = RunOptions::paper(ServiceApp::Httpd);
    o.scale = scale;
    o.requests = 6;
    o.warmup = 2;
    o.fifo_entries = 64;
    let base = run(&o).cycles_per_benign;
    for entries in [8, 12, 16, 24, 32, 40, 48, 56, 64] {
        o.fifo_entries = entries;
        let m = run(&o);
        println!(
            "entries {:>3}: {:.3}  (full stalls {})",
            entries,
            m.cycles_per_benign / base,
            m.fifo.full_stalls
        );
    }
}
