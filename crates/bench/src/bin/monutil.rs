//! Development aid: monitor utilization accounting.
use indra_bench::{run, RunOptions};
use indra_workloads::ServiceApp;

fn main() {
    for app in [ServiceApp::Httpd, ServiceApp::Bind] {
        let mut o = RunOptions::paper(app);
        o.scale = 2;
        o.requests = 6;
        o.warmup = 2;
        let m = run(&o);
        let span = m.cycles_per_benign * 6.0;
        println!(
            "{:<8} events={} busy={} span={:.0} util={:.2} pushes={} stalls={} events/req={:.0}",
            app.name(),
            m.monitor.events,
            m.monitor.busy_cycles,
            span,
            m.monitor.busy_cycles as f64 / span,
            m.fifo.pushes,
            m.fifo.full_stalls,
            m.monitor.events as f64 / 6.0
        );
    }
}
