//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! cargo run --release -p indra-bench --bin paper -- [--scale N] [section...]
//! sections: table2 table3 table4 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 security
//! ```
//!
//! With no section arguments, everything runs (at `--scale 1` this is the
//! full paper-scale reproduction; expect minutes of simulation).

use indra_bench::{run, CsvSink, RunOptions};
use indra_core::{FailureCause, MonitorConfig, SchemeKind, ViolationKind};
use indra_sim::MachineConfig;
use indra_workloads::{Attack, ServiceApp, UNMAPPED_ADDR};

struct Args {
    scale: u32,
    sections: Vec<String>,
    csv: CsvSink,
}

fn parse_args() -> Args {
    let mut scale = 1;
    let mut sections = Vec::new();
    let mut csv = CsvSink::disabled();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--scale" {
            scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        } else if a == "--csv" {
            csv = CsvSink::to_dir(it.next().unwrap_or_else(|| "results".to_owned()));
        } else {
            sections.push(a);
        }
    }
    Args { scale, sections, csv }
}

fn wants(args: &Args, name: &str) -> bool {
    args.sections.is_empty() || args.sections.iter().any(|s| s == name)
}

fn base_opts(app: ServiceApp, scale: u32) -> RunOptions {
    let mut o = RunOptions::paper(app);
    o.scale = scale;
    o.requests = 8;
    o.warmup = 2;
    o
}

fn main() {
    let args = parse_args();
    println!("== INDRA reproduction: evaluation harness (scale 1/{}) ==\n", args.scale);

    if wants(&args, "table4") {
        table4();
    }
    if wants(&args, "table2") {
        table2(args.scale);
    }
    if wants(&args, "table3") {
        table3(args.scale);
    }
    if wants(&args, "fig9") {
        fig9(args.scale, &args.csv);
    }
    if wants(&args, "fig10") {
        fig10(args.scale, &args.csv);
    }
    if wants(&args, "fig11") {
        fig11(args.scale, &args.csv);
    }
    if wants(&args, "fig12") {
        fig12(args.scale, &args.csv);
    }
    if wants(&args, "fig13") {
        fig13(args.scale, &args.csv);
    }
    if wants(&args, "fig14") {
        fig14(args.scale, &args.csv);
    }
    if wants(&args, "fig15") {
        fig15(args.scale, &args.csv);
    }
    if wants(&args, "fig16") {
        fig16(args.scale, &args.csv);
    }
    if wants(&args, "security") {
        security(args.scale);
    }
}

/// Table 4: processor model parameters actually in force.
fn table4() {
    let m = MachineConfig::default();
    println!("-- Table 4: processor model parameters --");
    println!("fetch/decode width        {}", m.core.fetch_width);
    println!("issue/commit width        {}", m.core.issue_width);
    println!("L1 I-cache                DM, {}KB, {}B line", m.mem.il1.size / 1024, m.mem.il1.line);
    println!("L1 D-cache                DM, {}KB, {}B line", m.mem.dl1.size / 1024, m.mem.dl1.line);
    println!(
        "L2 cache                  {}-way, unified, {}B line, WB, {}KB per core",
        m.mem.l2.ways,
        m.mem.l2.line,
        m.mem.l2.size / 1024
    );
    println!(
        "L1/L2 latency             {} cycle / {} cycles",
        m.mem.il1.hit_latency, m.mem.l2.hit_latency
    );
    println!("I-TLB                     {}-way, {} entries", m.mem.itlb.ways, m.mem.itlb.entries);
    println!("D-TLB                     {}-way, {} entries", m.mem.dtlb.ways, m.mem.dtlb.entries);
    println!(
        "memory bus                {}B wide, 1:{} core clock ratio",
        m.dram.bus_bytes_per_clock, m.dram.core_clock_ratio
    );
    println!("CAS latency               {} mem bus clocks", m.dram.cas);
    println!("precharge (RP)            {} mem bus clocks", m.dram.precharge);
    println!("RAS-to-CAS (RCD)          {} mem bus clocks\n", m.dram.ras_to_cas);
}

/// Table 2: which inspection detects which exploit. Each cell runs the
/// attack with ONLY that inspection enabled.
fn table2(scale: u32) {
    println!("-- Table 2: remote exploit inspection (detected = ✓) --");
    let app = ServiceApp::Httpd;
    let image = indra_bench::build_image(&base_opts(app, scale.max(8)));
    let handler0 = image.addr_of("handler_0").expect("handler_0");
    let attacks: [(&str, Attack); 3] = [
        ("stack smash", Attack::StackSmash { target: handler0 + 8 }),
        ("injected code", Attack::InjectedHandler),
        ("fn-pointer overwrite", Attack::HandlerHijack { target: UNMAPPED_ADDR }),
    ];
    let policies: [(&str, MonitorConfig); 3] = [
        (
            "call/return",
            MonitorConfig {
                check_code_origin: false,
                check_control_transfer: false,
                ..MonitorConfig::default()
            },
        ),
        (
            "code origin",
            MonitorConfig {
                check_call_return: false,
                check_control_transfer: false,
                ..MonitorConfig::default()
            },
        ),
        (
            "control transfer",
            MonitorConfig {
                check_call_return: false,
                check_code_origin: false,
                ..MonitorConfig::default()
            },
        ),
    ];
    println!(
        "{:<22} {:>12} {:>12} {:>17}",
        "inspection \\ exploit", "stack smash", "inj. code", "fn-ptr overwrite"
    );
    for (pname, policy) in policies {
        let mut row = format!("{pname:<22}");
        for (_aname, attack) in attacks {
            let mut o = base_opts(app, scale.max(8));
            o.requests = 3;
            o.monitor = policy;
            o.attack = Some((attack, 3));
            let m = run(&o);
            let detected = m
                .report
                .detections
                .iter()
                .any(|d| d.was_malicious && matches!(d.cause, FailureCause::Violation(_)));
            row.push_str(&format!(" {:>12}", if detected { "✓" } else { "-" }));
        }
        println!("{row}");
    }
    println!();
}

/// Table 3: measured backup/recovery cost classes of the four schemes.
fn table3(scale: u32) {
    println!("-- Table 3: memory backup approaches (measured, httpd, attack every 2nd request) --");
    println!(
        "{:<22} {:>16} {:>16} {:>12}",
        "scheme", "backup cyc/req", "recovery cyc/rb", "slowdown"
    );
    let schemes = [
        SchemeKind::SoftwareCheckpoint,
        SchemeKind::UndoLog,
        SchemeKind::VirtualCheckpoint,
        SchemeKind::Delta,
    ];
    let mut base = base_opts(ServiceApp::Httpd, scale.max(4));
    base.monitoring = false;
    base.scheme = SchemeKind::None;
    let baseline = run(&base).cycles_per_benign;
    for scheme in schemes {
        let mut o = base_opts(ServiceApp::Httpd, scale.max(4));
        o.scheme = scheme;
        o.attack = Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 2));
        let m = run(&o);
        let reqs = m.report.served.max(1);
        let rollbacks = m.scheme.rollbacks.max(1);
        // Backup work charged while requests execute: everything except
        // recovery cycles.
        let hook_cycles = m.scheme.boundary_cycles
            + u64::from(indra_core::PAGE_COPY_CYCLES) * m.scheme.page_copies
            + 25 * m.scheme.line_copies
            + u64::from(indra_core::LOG_APPEND_CYCLES) * m.scheme.log_entries;
        println!(
            "{:<22} {:>16} {:>16} {:>12.2}",
            format!("{:?}", scheme),
            hook_cycles / reqs,
            m.scheme.recovery_cycles / rollbacks,
            m.cycles_per_benign / baseline,
        );
    }
    println!("(paper: page-copy schemes back up slowly; the update log recovers slowly;\n INDRA's delta is fast on both axes)\n");
}

/// Fig. 9: IL1 instruction cache miss rate.
fn fig9(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 9: L1 instruction cache miss rate (paper: ~1-5%, avg ~2%) --");
    let mut sum = 0.0;
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let m = run(&base_opts(app, scale));
        let rate = m.il1.miss_rate() * 100.0;
        sum += rate;
        rows.push(vec![app.name().to_owned(), format!("{rate:.3}")]);
        println!("{:<10} {:>6.2}%", app.name(), rate);
    }
    println!("{:<10} {:>6.2}%\n", "average", sum / 6.0);
    csv.write("fig9_il1_miss", &["app", "miss_pct"], &rows);
}

/// Fig. 10: % of code-origin checks surviving the CAM filter.
fn fig10(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 10: code-origin checks after CAM filtering (paper: ~8% @32, ~5% @64) --");
    println!("{:<10} {:>10} {:>10}", "app", "32-entry", "64-entry");
    let (mut s32, mut s64) = (0.0, 0.0);
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let mut o = base_opts(app, scale);
        let m32 = run(&o);
        o.cam_entries = 64;
        let m64 = run(&o);
        let (f32_, f64_) = (m32.cam.sent_fraction() * 100.0, m64.cam.sent_fraction() * 100.0);
        s32 += f32_;
        s64 += f64_;
        rows.push(vec![app.name().to_owned(), format!("{f32_:.3}"), format!("{f64_:.3}")]);
        println!("{:<10} {:>9.1}% {:>9.1}%", app.name(), f32_, f64_);
    }
    println!("{:<10} {:>9.1}% {:>9.1}%\n", "average", s32 / 6.0, s64 / 6.0);
    csv.write("fig10_cam", &["app", "sent_pct_cam32", "sent_pct_cam64"], &rows);
}

/// Fig. 11: service response time overhead of monitoring.
fn fig11(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 11: monitoring overhead (paper: small, < 10%) --");
    let mut sum = 0.0;
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let mut on = base_opts(app, scale);
        on.scheme = SchemeKind::None;
        let mut off = on.clone();
        off.monitoring = false;
        let ovh = (run(&on).cycles_per_benign / run(&off).cycles_per_benign - 1.0) * 100.0;
        sum += ovh;
        rows.push(vec![app.name().to_owned(), format!("{ovh:.3}")]);
        println!("{:<10} {:>6.2}%", app.name(), ovh);
    }
    println!("{:<10} {:>6.2}%\n", "average", sum / 6.0);
    csv.write("fig11_monitor_overhead", &["app", "overhead_pct"], &rows);
}

/// Fig. 12: normalized response time vs trace FIFO size.
fn fig12(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 12: impact of shared queue size (paper: 16 too small, >=32 saturates) --");
    let apps = [ServiceApp::Httpd, ServiceApp::Sendmail, ServiceApp::Nfs];
    let sizes = [8usize, 12, 16, 24, 32, 40, 48, 56, 64];
    let mut base = [0.0f64; 3];
    for (i, app) in apps.iter().enumerate() {
        let mut o = base_opts(*app, scale);
        o.fifo_entries = 64;
        base[i] = run(&o).cycles_per_benign;
    }
    let mut rows = Vec::new();
    for entries in sizes {
        let mut norm = 0.0;
        for (i, app) in apps.iter().enumerate() {
            let mut o = base_opts(*app, scale);
            o.fifo_entries = entries;
            norm += run(&o).cycles_per_benign / base[i];
        }
        let avg = norm / apps.len() as f64;
        rows.push(vec![entries.to_string(), format!("{avg:.4}")]);
        println!("queue entries {:>3}: {:.3}", entries, avg);
    }
    println!();
    csv.write("fig12_fifo", &["entries", "normalized_response"], &rows);
}

/// Fig. 13: instructions between service requests.
fn fig13(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 13: instructions between requests (paper: bind ~150K ... imap ~2.3M) --");
    let mut sum = 0.0;
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let m = run(&base_opts(app, scale));
        sum += m.insns_per_request;
        let full = m.insns_per_request * f64::from(scale);
        rows.push(vec![app.name().to_owned(), format!("{full:.0}")]);
        println!("{:<10} {:>12.0}", app.name(), full);
    }
    println!(
        "{:<10} {:>12.0}  (scaled back to full size)\n",
        "average",
        sum / 6.0 * f64::from(scale)
    );
    csv.write("fig13_insns_per_request", &["app", "instructions"], &rows);
}

/// Fig. 14: slowdown under conventional virtual checkpointing.
fn fig14(scale: u32, csv: &CsvSink) {
    println!(
        "-- Fig. 14: slowdown with page-copy virtual checkpointing (paper: ~2-14x, bind worst) --"
    );
    let mut sum = 0.0;
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let mut base = base_opts(app, scale);
        base.monitoring = false;
        base.scheme = SchemeKind::None;
        let b = run(&base).cycles_per_benign;
        let mut vc = base_opts(app, scale);
        vc.scheme = SchemeKind::VirtualCheckpoint;
        let s = run(&vc).cycles_per_benign / b;
        sum += s;
        rows.push(vec![app.name().to_owned(), format!("{s:.3}")]);
        println!("{:<10} {:>6.2}x", app.name(), s);
    }
    println!("{:<10} {:>6.2}x\n", "average", sum / 6.0);
    csv.write("fig14_virtual_ckpt_slowdown", &["app", "slowdown"], &rows);
}

/// Fig. 15: percentage of stores that needed a line backup.
fn fig15(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 15: backed-up dirty lines over all stores (paper: small; bind ~45%) --");
    let mut sum = 0.0;
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let m = run(&base_opts(app, scale));
        let f = m.scheme.backup_fraction() * 100.0;
        sum += f;
        rows.push(vec![app.name().to_owned(), format!("{f:.3}")]);
        println!("{:<10} {:>6.1}%", app.name(), f);
    }
    println!("{:<10} {:>6.1}%\n", "average", sum / 6.0);
    csv.write("fig15_backup_fraction", &["app", "backup_pct"], &rows);
}

/// Fig. 16: INDRA's slowdown — monitor+backup, and with a rollback every
/// other request.
fn fig16(scale: u32, csv: &CsvSink) {
    println!("-- Fig. 16: INDRA slowdown (paper: M+B ~1.1-1.6; +rollback ~1.3-1.5, bind >2x) --");
    println!("{:<10} {:>14} {:>22}", "app", "monitor+backup", "monitor+backup+rollback");
    let (mut s1, mut s2) = (0.0, 0.0);
    let mut rows = Vec::new();
    for app in ServiceApp::ALL {
        let mut base = base_opts(app, scale);
        base.monitoring = false;
        base.scheme = SchemeKind::None;
        let b = run(&base).cycles_per_benign;
        let mb = run(&base_opts(app, scale)).cycles_per_benign / b;
        let mut r = base_opts(app, scale);
        r.attack = Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 1));
        let mbr = run(&r).cycles_per_benign / b;
        s1 += mb;
        s2 += mbr;
        rows.push(vec![app.name().to_owned(), format!("{mb:.3}"), format!("{mbr:.3}")]);
        println!("{:<10} {:>13.2}x {:>21.2}x", app.name(), mb, mbr);
    }
    println!("{:<10} {:>13.2}x {:>21.2}x\n", "average", s1 / 6.0, s2 / 6.0);
    csv.write("fig16_indra_slowdown", &["app", "monitor_backup", "monitor_backup_rollback"], &rows);
}

/// §4.1: detection + recovery across every attack class and every app.
fn security(scale: u32) {
    println!("-- §4.1: security evaluation: detect & recover, all apps x all attack classes --");
    println!(
        "{:<10} {:<22} {:>9} {:>10} {:>13}",
        "app", "attack", "detected", "recovered", "benign served"
    );
    let scale = scale.max(8);
    for app in ServiceApp::ALL {
        let image = indra_bench::build_image(&base_opts(app, scale));
        let handler0 = image.addr_of("handler_0").expect("symbol");
        let attacks: [(&str, Attack); 7] = [
            ("stack-smash", Attack::StackSmash { target: handler0 + 8 }),
            ("code-injection", Attack::CodeInjection),
            ("injected-handler", Attack::InjectedHandler),
            ("fn-ptr-hijack", Attack::HandlerHijack { target: UNMAPPED_ADDR }),
            ("format-string", Attack::FormatString { value: UNMAPPED_ADDR }),
            ("wild-write (DoS)", Attack::WildWrite { addr: UNMAPPED_ADDR }),
            ("dormant", Attack::Dormant { addr: UNMAPPED_ADDR }),
        ];
        for (name, attack) in attacks {
            let mut o = base_opts(app, scale);
            o.requests = 6;
            o.attack = Some((attack, 3));
            // Dormant corruption defeats micro recovery by design; it
            // needs the hybrid's macro checkpoint. Use a short cadence in
            // this compressed run (the paper's is every 10,000 requests)
            // and one dormant plant followed by a stream of benign
            // requests, whose failures escalate to the macro restore.
            if matches!(attack, Attack::Dormant { .. }) {
                o.macro_interval = Some(2);
                o.requests = 10;
                o.attack = Some((attack, 5));
            }
            let m = run(&o);
            let detected = !m.report.detections.is_empty();
            let label = m
                .report
                .detections
                .first()
                .map(|d| match d.cause {
                    FailureCause::Violation(ViolationKind::ReturnMismatch) => "ret-mismatch",
                    FailureCause::Violation(ViolationKind::CodeInjection) => "code-origin",
                    FailureCause::Violation(ViolationKind::InvalidIndirectTarget) => "bad-target",
                    FailureCause::Violation(ViolationKind::ShadowStackUnderflow) => "underflow",
                    FailureCause::Violation(ViolationKind::Custom) => "custom-policy",
                    FailureCause::Fault => "hw-fault",
                    FailureCause::Timeout => "timeout",
                })
                .unwrap_or("-");
            let total = if matches!(attack, Attack::Dormant { .. }) { 10 } else { 6 };
            // "Recovered" = the service survived to answer the final
            // benign request of the script (dormant scenarios sacrifice
            // the requests served between the plant and the escalation).
            let last_served = m
                .report
                .samples
                .iter()
                .filter(|s| !s.malicious)
                .map(|s| s.request_id)
                .max()
                .unwrap_or(0);
            let expected_last = m.requests_sent as u64 - 1;
            let recovered =
                m.report.benign_served == total || last_served >= expected_last.saturating_sub(1);
            println!(
                "{:<10} {:<22} {:>9} {:>10} {:>7}/{}",
                app.name(),
                name,
                if detected { label } else { "MISSED" },
                if recovered { "yes" } else { "partial" },
                m.report.benign_served,
                total,
            );
        }
    }
    println!("\n(every attack is detected and the service keeps serving all benign clients)");
}
