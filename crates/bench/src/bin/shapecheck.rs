//! Quick shape verification for Figs. 12, 14 and 16 during development:
//! prints the slowdown ratios the paper's bar charts report.

use indra_bench::{run, RunOptions};
use indra_core::SchemeKind;
use indra_workloads::{Attack, ServiceApp, UNMAPPED_ADDR};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("shape check at scale 1/{scale}  (fig14 = virtual ckpt slowdown; fig16 = delta M+B and M+B+R)");
    println!("{:<10} {:>8} {:>8} {:>8} {:>10}", "app", "fig14", "f16 M+B", "f16 MBR", "undo-log");
    for app in ServiceApp::ALL {
        let mut base = RunOptions::paper(app);
        base.scale = scale;
        base.requests = 6;
        base.warmup = 2;
        base.monitoring = false;
        base.scheme = SchemeKind::None;
        let baseline = run(&base).cycles_per_benign;

        let mut vc = base.clone();
        vc.monitoring = true;
        vc.scheme = SchemeKind::VirtualCheckpoint;
        let fig14 = run(&vc).cycles_per_benign / baseline;

        let mut mb = base.clone();
        mb.monitoring = true;
        mb.scheme = SchemeKind::Delta;
        let fig16_mb = run(&mb).cycles_per_benign / baseline;

        let mut mbr = mb.clone();
        mbr.attack = Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 1)); // every other request
        let fig16_mbr = run(&mbr).cycles_per_benign / baseline;

        let mut ul = base.clone();
        ul.monitoring = true;
        ul.scheme = SchemeKind::UndoLog;
        ul.attack = Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 1));
        let undo = run(&ul).cycles_per_benign / baseline;

        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>10.2}",
            app.name(),
            fig14,
            fig16_mb,
            fig16_mbr,
            undo
        );
    }
}
