//! simbench — host-side simulator throughput (MIPS) benchmark.
//!
//! Measures how many *simulated* instructions the interpreter retires
//! per wall-clock second on three deterministic workloads:
//!
//! * `compute` — a tight ALU/branch loop on a bare resurrectee core
//!   with monitoring off: the pure per-instruction stepping cost
//!   (decode, translate, fetch, execute, retire accounting).
//! * `memory`  — a strided load/store sweep over a buffer larger than
//!   the DL1, exercising the TLB/cache hierarchy and the physical
//!   memory word paths on every instruction.
//! * `attack_mix` — a full [`IndraSystem`] cell (monitoring on, delta
//!   backup) serving seeded open-loop traffic with an exploit mix:
//!   the end-to-end fleet-shard hot path including trace FIFO,
//!   CAM filtering and the monitor model.
//!
//! The simulated instruction counts are pure functions of the flags,
//! so runs are comparable across hosts and revisions; only the wall
//! time (and hence MIPS) varies. Results go to
//! `results/BENCH_simcore.json` for the repo's perf trajectory.
//!
//! `--min-mips X` turns the run into a regression gate: the process
//! exits non-zero if the compute workload lands below the floor.

use std::time::Instant;

use indra_core::json::JsonObject;
use indra_core::{IndraSystem, RunState, SchemeKind, SystemConfig};
use indra_isa::assemble;
use indra_sim::{CoreStep, Machine, MachineConfig};
use indra_workloads::{build_app_scaled, detectable_attack_suite, OpenLoopTraffic, ServiceApp};

struct Args {
    /// Scale factor for all iteration counts (1 = full run).
    quick: bool,
    /// Output JSON path.
    out: String,
    /// Optional MIPS floor for the compute workload (CI gate).
    min_mips: Option<f64>,
    /// Superblock execution engine (on by default; `--no-superblocks`
    /// measures the one-instruction reference dispatch loop).
    superblocks: bool,
    /// Per-request compartments (on by default; `--no-compartments`
    /// measures the global-rollback baseline in attack_mix).
    compartments: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "results/BENCH_simcore.json".into(),
        min_mips: None,
        superblocks: true,
        compartments: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--min-mips" => {
                let v = it.next().ok_or("--min-mips needs a value")?;
                args.min_mips = Some(v.parse().map_err(|e| format!("--min-mips: {e}"))?);
            }
            "--no-superblocks" => args.superblocks = false,
            "--no-compartments" => args.compartments = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
simbench — INDRA host-side simulator MIPS benchmark

USAGE: simbench [--quick] [--out PATH] [--min-mips X] [--no-superblocks]
                [--no-compartments]

Runs the compute / memory / attack_mix workloads, prints a MIPS table
and writes results/BENCH_simcore.json. --quick shrinks the iteration
counts for CI smoke use; --min-mips X exits non-zero if the compute
workload falls below the floor; --no-superblocks measures the
one-instruction reference dispatch loop (the simulated instruction
counts are identical either way); --no-compartments measures the
attack_mix workload without per-request compartment tracking.";

/// One workload's measurement.
struct Sample {
    name: &'static str,
    insns: u64,
    wall_seconds: f64,
}

impl Sample {
    fn mips(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.insns as f64 / self.wall_seconds / 1.0e6
        } else {
            0.0
        }
    }
}

/// Builds a bare machine with one program on the resurrectee core and
/// runs it to halt, returning (instructions, wall seconds).
fn run_bare(src: &str, max_steps: u64, superblocks: bool) -> Sample {
    let mut m = Machine::new(MachineConfig { superblocks, ..MachineConfig::default() });
    m.boot_asymmetric();
    m.set_monitoring(false);
    let img = assemble("simbench", src).expect("simbench asm");
    let asid = 10;
    m.create_space(asid);
    m.load_image(asid, &img).expect("simbench load");
    m.core_mut(1).set_asid(asid);
    m.core_mut(1).set_pc(img.entry);
    m.core_mut(1).set_reg(indra_isa::Reg::SP, img.initial_sp);

    let start = Instant::now();
    let mut halted = false;
    let mut steps = 0u64;
    while steps < max_steps {
        let (step, executed) = m.step_core_batch_simple(1, max_steps - steps);
        steps += executed.max(1);
        match step {
            CoreStep::Executed => {}
            CoreStep::Halted => {
                halted = true;
                break;
            }
            other => panic!("simbench workload faulted: {other:?}"),
        }
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(halted, "simbench workload did not halt within {max_steps} steps");
    Sample { name: "", insns: m.core(1).retired(), wall_seconds: wall }
}

/// Pure ALU/branch loop: the per-instruction stepping floor.
fn compute_workload(iters: u32, superblocks: bool) -> Sample {
    let src = format!(
        "main:
    li   s0, {iters}
    li   t0, 0x1234
    li   t1, 0x4321
    li   t2, 7
loop:
    add  t3, t0, t1
    xor  t0, t3, t0
    slli t4, t0, 3
    srli t5, t1, 2
    or   t1, t4, t5
    sub  t3, t3, t2
    and  t4, t3, t0
    addi t2, t2, 1
    slt  t5, t4, t1
    add  t0, t0, t5
    xori t1, t1, 0x55
    srai t3, t3, 1
    add  t4, t4, t3
    sltu t5, t0, t4
    sub  t1, t1, t5
    subi s0, s0, 1
    bnez s0, loop
    halt
"
    );
    let mut s = run_bare(&src, u64::from(iters) * 24 + 1000, superblocks);
    s.name = "compute";
    s
}

/// Strided load/store sweep over a 64 KiB buffer (misses the DL1).
fn memory_workload(passes: u32, superblocks: bool) -> Sample {
    let src = format!(
        "main:
    li   s0, {passes}
pass:
    la   t0, buf
    li   t1, 1024
fill:
    lw   t2, 0(t0)
    addi t2, t2, 1
    sw   t2, 0(t0)
    lw   t3, 32(t0)
    add  t2, t2, t3
    sw   t2, 32(t0)
    addi t0, t0, 64
    subi t1, t1, 1
    bnez t1, fill
    subi s0, s0, 1
    bnez s0, pass
    halt
.data
buf: .space 65600
"
    );
    let mut s = run_bare(&src, u64::from(passes) * 1024 * 12 + 1000, superblocks);
    s.name = "memory";
    s
}

/// Full INDRA cell under seeded traffic with an exploit mix — the
/// fleet-shard hot path (monitor, FIFO, CAM, delta backup included).
fn attack_mix_workload(requests: u32, superblocks: bool, compartments: bool) -> Sample {
    let cfg = SystemConfig {
        machine: MachineConfig { superblocks, ..MachineConfig::default() },
        scheme: SchemeKind::Delta,
        monitoring: true,
        compartments,
        ..SystemConfig::default()
    };
    let cores = cfg.machine.cores.len();
    let mut sys = IndraSystem::new(cfg);
    let image = build_app_scaled(ServiceApp::Httpd, 20);
    sys.deploy(&image).expect("simbench deploy");
    let attacks = detectable_attack_suite(&image);
    let schedule = OpenLoopTraffic::with_attack_mix(requests, attacks, 120, 40_000, 0x51_3BE9)
        .generate(&image);

    let start = Instant::now();
    let mut queue = schedule.into_iter().peekable();
    let mut budget = u64::from(requests.max(1)) * 4_000_000;
    loop {
        let now = sys.service_cycles();
        let mut delivered = false;
        while queue.peek().is_some_and(|r| r.arrival_cycle <= now) {
            let r = queue.next().expect("peeked");
            sys.push_request(r.data, r.malicious);
            delivered = true;
        }
        let state = sys.run(20_000.min(budget.max(1)));
        budget = budget.saturating_sub(20_000);
        match state {
            RunState::Idle => match queue.peek() {
                Some(_) if !delivered => {
                    let r = queue.next().expect("peeked");
                    sys.push_request(r.data, r.malicious);
                }
                Some(_) => {}
                None => break,
            },
            RunState::Halted => break,
            RunState::BudgetExhausted => {
                if budget == 0 {
                    break;
                }
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let insns: u64 = (0..cores).map(|c| sys.machine().core(c).retired()).sum();
    Sample { name: "attack_mix", insns, wall_seconds: wall }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (compute_iters, memory_passes, requests) =
        if args.quick { (40_000, 40, 12) } else { (400_000, 400, 60) };

    println!(
        "simbench: {} mode, superblocks {}",
        if args.quick { "quick" } else { "full" },
        if args.superblocks { "on" } else { "off" }
    );
    println!("{:>12} {:>12} {:>10} {:>10}", "workload", "insns", "wall_s", "mips");
    let samples = [
        compute_workload(compute_iters, args.superblocks),
        memory_workload(memory_passes, args.superblocks),
        attack_mix_workload(requests, args.superblocks, args.compartments),
    ];
    for s in &samples {
        println!("{:>12} {:>12} {:>10.3} {:>10.3}", s.name, s.insns, s.wall_seconds, s.mips());
    }

    let mut obj = JsonObject::new();
    obj.str("bench", "simcore")
        .bool("quick", args.quick)
        .bool("superblocks", args.superblocks)
        .bool("compartments", args.compartments);
    let items = samples.iter().map(|s| {
        JsonObject::new()
            .str("name", s.name)
            .u64("insns", s.insns)
            .f64("wall_seconds", s.wall_seconds)
            .f64("mips", s.mips())
            .finish()
    });
    obj.raw("workloads", &indra_core::json::json_array(items));
    let json = obj.finish();
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, format!("{json}\n")).expect("write results json");
    println!("wrote {}", args.out);

    if let Some(floor) = args.min_mips {
        let compute = samples[0].mips();
        if compute < floor {
            eprintln!("simbench: compute MIPS {compute:.3} below floor {floor:.3}");
            std::process::exit(1);
        }
    }
}
