//! Minimal CSV emission for the figure series (no external deps): each
//! experiment can mirror its printed table into `<dir>/<name>.csv` so the
//! series can be plotted or diffed across runs.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A CSV sink bound to one output directory; disabled when no directory
/// was requested.
#[derive(Debug, Clone, Default)]
pub struct CsvSink {
    dir: Option<PathBuf>,
}

impl CsvSink {
    /// A sink writing into `dir` (created on first use).
    #[must_use]
    pub fn to_dir(dir: impl Into<PathBuf>) -> CsvSink {
        CsvSink { dir: Some(dir.into()) }
    }

    /// A disabled sink: [`CsvSink::write`] is a no-op.
    #[must_use]
    pub fn disabled() -> CsvSink {
        CsvSink { dir: None }
    }

    /// Whether the sink writes anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Writes one table: `header` then `rows`, quoting fields only when
    /// needed. Errors are reported to stderr, never fatal — losing a CSV
    /// must not kill an hours-long evaluation run.
    pub fn write(&self, name: &str, header: &[&str], rows: &[Vec<String>]) {
        let Some(dir) = &self.dir else { return };
        if let Err(e) = self.try_write(dir, name, header, rows) {
            eprintln!("csv: failed to write {name}.csv: {e}");
        }
    }

    fn try_write(
        &self,
        dir: &Path,
        name: &str,
        header: &[&str],
        rows: &[Vec<String>],
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut out = String::new();
        writeln_row(&mut out, header.iter().map(|s| (*s).to_owned()));
        for row in rows {
            writeln_row(&mut out, row.iter().cloned());
        }
        std::fs::write(dir.join(format!("{name}.csv")), out)
    }
}

fn writeln_row(out: &mut String, fields: impl Iterator<Item = String>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n']) {
            let _ = write!(out, "\"{}\"", field.replace('"', "\"\""));
        } else {
            out.push_str(&field);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_noop() {
        let sink = CsvSink::disabled();
        assert!(!sink.is_enabled());
        sink.write("x", &["a"], &[vec!["1".into()]]); // must not panic or write
    }

    #[test]
    fn writes_and_quotes() {
        let dir = std::env::temp_dir().join("indra-csv-test");
        let _ = std::fs::remove_dir_all(&dir);
        let sink = CsvSink::to_dir(&dir);
        sink.write(
            "t",
            &["app", "value"],
            &[vec!["bind".into(), "1.5".into()], vec!["we,ird\"name".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(text, "app,value\nbind,1.5\n\"we,ird\"\"name\",2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
