//! A log-bucketed latency histogram (HDR-style, 8 sub-buckets per
//! octave), shared by the figure harness and the fleet aggregator.
//!
//! Values up to `u64::MAX` are binned with a relative error below 12.5 %
//! (1/8). Merging histograms is commutative and associative — per-shard
//! histograms folded in any order produce identical counts, which keeps
//! the fleet's aggregated report deterministic — though the fleet folds
//! in shard order anyway.

use indra_core::json::JsonObject;

/// Sub-bucket precision: 2^3 = 8 linear buckets per power of two.
const PRECISION: u32 = 3;
const SUB: u64 = 1 << PRECISION;
/// Enough buckets for the full `u64` range.
const BUCKETS: usize = ((64 - PRECISION as usize) + 1) << PRECISION;

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - PRECISION;
    let sub = (v >> shift) & (SUB - 1);
    (((shift + 1) as u64 * SUB) + sub) as usize
}

/// The largest value mapping to `bucket` (quantiles report this upper
/// bound, so `p99` errs toward overstating latency, never hiding it).
fn bucket_upper(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUB {
        return b;
    }
    let shift = (b / SUB) - 1;
    let sub = b % SUB;
    // Wrapping: the topmost bucket's bound is 2^64, which wraps to 0 and
    // subtracts to exactly `u64::MAX` — the bound we want.
    ((SUB + sub + 1) << shift).wrapping_sub(1)
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest sample, clamped
    /// to the observed maximum (0 when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bound convention; see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The fixed-size summary reports embed.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max,
        }
    }
}

/// The percentile digest of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSummary {
    /// Serializes the summary as JSON with a fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("count", self.count)
            .f64("mean", self.mean)
            .u64("min", self.min)
            .u64("p50", self.p50)
            .u64("p95", self.p95)
            .u64("p99", self.p99)
            .u64("max", self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.p50(), 3);
    }

    #[test]
    fn buckets_bound_relative_error() {
        let mut h = Histogram::new();
        for &v in &[1_000u64, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        // Every quantile answer must be >= the true value and within 12.5%.
        for (q, truth) in [(0.25, 1_000u64), (0.5, 10_000), (0.75, 100_000), (1.0, 1_000_000)] {
            let got = h.quantile(q);
            assert!(got >= truth, "q{q}: {got} < {truth}");
            assert!(got as f64 <= truth as f64 * 1.125, "q{q}: {got} overshoots {truth}");
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            whole.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.summary(), whole.summary());
    }

    #[test]
    fn merge_is_order_invariant() {
        // Property: folding any partition of a sample stream, in any
        // order, yields the same histogram as recording the stream into
        // one histogram — the fleet aggregator and the serve daemon
        // both rely on this to make shard order irrelevant.
        indra_rng::forall("hist merge order invariance", 64, |rng| {
            let parts = rng.range_usize(2, 6);
            let mut split: Vec<Histogram> = (0..parts).map(|_| Histogram::new()).collect();
            let mut whole = Histogram::new();
            for _ in 0..rng.range_usize(0, 400) {
                // Span several octaves so sub-bucket boundaries get hit.
                let octave = rng.range_u32(1, 40);
                let v = rng.range_u64(0, 1 << octave);
                let part = rng.range_usize(0, parts);
                split[part].record(v);
                whole.record(v);
            }
            // Fold in a random order, merging into a random accumulator.
            while split.len() > 1 {
                let take = rng.range_usize(0, split.len());
                let part = split.swap_remove(take);
                let into = rng.range_usize(0, split.len());
                split[into].merge(&part);
            }
            assert_eq!(split[0], whole);
            assert_eq!(split[0].summary(), whole.summary());
            assert_eq!(split[0].summary().to_json(), whole.summary().to_json());
        });
    }

    #[test]
    fn percentiles_order_and_tail() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((450..=620).contains(&p50), "p50 {p50}");
        assert!((985..=1000).contains(&p99), "p99 {p99}");
        assert!(h.summary().to_json().contains("\"p99\":"));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
