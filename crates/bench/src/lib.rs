#![warn(missing_docs)]
//! # indra-bench — the experiment harness
//!
//! Shared measurement machinery for regenerating every table and figure
//! of the paper's evaluation (§4). The [`run`] entry point drives one
//! service under one configuration and returns the [`Metrics`] every
//! figure is computed from; the `paper` binary (`cargo run -p indra-bench
//! --bin paper`) prints the actual table/figure series, and the Criterion
//! benches wrap the same runner.

mod csv;
mod hist;

pub use csv::CsvSink;
pub use hist::{Histogram, HistogramSummary};

use indra_core::{IndraSystem, MonitorConfig, RunReport, RunState, SchemeKind, SystemConfig};
use indra_isa::Image;
use indra_mem::CacheStats;
use indra_sim::{CamStats, FifoStats};
use indra_workloads::{build_service, Attack, ServiceApp, Traffic, WorkloadSpec};

/// One experiment's knobs.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The service under test.
    pub app: ServiceApp,
    /// Work-scale divisor (1 = paper scale; tests use 10–50).
    pub scale: u32,
    /// Measured benign requests.
    pub requests: u32,
    /// Warm-up requests excluded from statistics.
    pub warmup: u32,
    /// Monitoring on/off (Fig. 11's two bars).
    pub monitoring: bool,
    /// Checkpoint scheme (Table 3 / Figs. 14–16).
    pub scheme: SchemeKind,
    /// Inject an attack after every N benign requests.
    pub attack: Option<(Attack, u32)>,
    /// Trace FIFO entries (Fig. 12).
    pub fifo_entries: usize,
    /// CAM filter entries (Fig. 10); 0 disables the filter.
    pub cam_entries: usize,
    /// Monitor policy/cost overrides.
    pub monitor: MonitorConfig,
    /// Macro (application) checkpoint cadence override in requests; the
    /// paper default is 10,000 — dormant-attack experiments shrink it.
    pub macro_interval: Option<u64>,
    /// Traffic seed.
    pub seed: u64,
}

impl RunOptions {
    /// Paper-defaults for `app`: INDRA fully on, Table 4 machine.
    #[must_use]
    pub fn paper(app: ServiceApp) -> RunOptions {
        RunOptions {
            app,
            scale: 1,
            requests: 12,
            warmup: 3,
            monitoring: true,
            scheme: SchemeKind::Delta,
            attack: None,
            fifo_entries: 32,
            cam_entries: 32,
            monitor: MonitorConfig::default(),
            macro_interval: None,
            seed: 0x0001_e00a + app as u64,
        }
    }

    /// Like [`RunOptions::paper`] but scaled down for fast runs.
    #[must_use]
    pub fn quick(app: ServiceApp) -> RunOptions {
        RunOptions { scale: 10, requests: 8, warmup: 2, ..RunOptions::paper(app) }
    }
}

/// Everything the figures need from one run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Mean resurrectee cycles per benign response, measured
    /// delivery→response (excludes queueing and recovery time).
    pub mean_response_cycles: f64,
    /// Total measured resurrectee cycles divided by benign responses —
    /// the service-time metric the paper's response-time figures use:
    /// recovery work delays subsequent clients, so it must count.
    pub cycles_per_benign: f64,
    /// Mean instructions per request (Fig. 13).
    pub insns_per_request: f64,
    /// IL1 statistics (Fig. 9).
    pub il1: CacheStats,
    /// CAM filter statistics (Fig. 10).
    pub cam: CamStats,
    /// FIFO statistics (Fig. 12).
    pub fifo: FifoStats,
    /// Scheme statistics (Figs. 14–16, Table 3).
    pub scheme: indra_core::SchemeStats,
    /// Monitor statistics.
    pub monitor: indra_core::MonitorStats,
    /// The raw run report (detections, samples).
    pub report: RunReport,
    /// Requests the harness queued.
    pub requests_sent: usize,
}

/// Builds the service image for `opts` (callers reuse it when they need
/// symbol addresses for attack targeting).
#[must_use]
pub fn build_image(opts: &RunOptions) -> Image {
    let spec = WorkloadSpec::for_app(opts.app);
    let spec = if opts.scale > 1 { spec.scaled_down(opts.scale) } else { spec };
    build_service(&spec)
}

/// Runs one experiment to completion and collects metrics.
///
/// # Panics
///
/// Panics if the run exhausts its instruction budget without the service
/// going idle — that indicates a harness bug, not a measurement.
#[must_use]
pub fn run(opts: &RunOptions) -> Metrics {
    let image = build_image(opts);
    run_with_image(opts, &image)
}

/// [`run`] against a pre-built image.
#[must_use]
pub fn run_with_image(opts: &RunOptions, image: &Image) -> Metrics {
    let mut cfg = SystemConfig {
        machine: indra_sim::MachineConfig {
            fifo_entries: opts.fifo_entries,
            cam_entries: opts.cam_entries,
            ..indra_sim::MachineConfig::default()
        },
        monitor: opts.monitor,
        monitoring: opts.monitoring,
        scheme: opts.scheme,
        ..SystemConfig::default()
    };
    if let Some(interval) = opts.macro_interval {
        cfg.hybrid.macro_interval = interval;
    }
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(image).expect("deploy");

    let budget_per_request =
        WorkloadSpec::for_app(opts.app).approx_insns_per_request().max(100_000) * 6;

    // Warm-up.
    let warm = Traffic::benign(opts.warmup, opts.seed ^ 0x5EED).generate(image);
    for r in &warm {
        sys.push_request(r.data.clone(), r.malicious);
    }
    let state = sys.run(budget_per_request * u64::from(opts.warmup.max(1)));
    assert_eq!(state, RunState::Idle, "warmup must drain");
    sys.reset_measurements();

    // Measured traffic.
    let script = match opts.attack {
        Some((attack, every)) => Traffic::with_attacks(opts.requests, attack, every, opts.seed),
        None => Traffic::benign(opts.requests, opts.seed),
    }
    .generate(image);
    for r in &script {
        sys.push_request(r.data.clone(), r.malicious);
    }
    let start_cycles = sys.service_cycles();
    let budget = budget_per_request * (script.len() as u64 + 2);
    let state = sys.run(budget);
    // Halted is a legitimate outcome: undetected shellcode kills the
    // service (the unmonitored-injection experiments rely on observing
    // exactly that).
    assert_ne!(state, RunState::BudgetExhausted, "{}: run must settle", opts.app);
    let span = sys.service_cycles() - start_cycles;

    let core = sys.config().service_core;
    let benign = sys.report().benign_served.max(1);
    Metrics {
        mean_response_cycles: sys.report().mean_benign_response(),
        cycles_per_benign: span as f64 / benign as f64,
        insns_per_request: sys.report().mean_instructions_per_request(),
        il1: sys.machine().core_mem(core).il1().stats(),
        cam: sys.machine().cam(core).stats(),
        fifo: sys.machine().fifo().stats(),
        scheme: sys.scheme().stats(),
        monitor: sys.monitor().stats(),
        report: sys.report().clone(),
        requests_sent: script.len(),
    }
}

/// Convenience: the monitoring-overhead ratio for one app (Fig. 11) —
/// response time with monitoring over response time without.
#[must_use]
pub fn monitoring_overhead(app: ServiceApp, scale: u32) -> f64 {
    let mut on = RunOptions::paper(app);
    on.scale = scale;
    on.scheme = SchemeKind::None; // isolate monitoring (backup measured separately)
    let mut off = on.clone();
    off.monitoring = false;
    let with = run(&on);
    let without = run(&off);
    with.cycles_per_benign / without.cycles_per_benign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_metrics() {
        let mut opts = RunOptions::quick(ServiceApp::Bind);
        opts.requests = 4;
        opts.warmup = 1;
        let m = run(&opts);
        assert_eq!(m.report.served, 4);
        assert!(m.mean_response_cycles > 0.0);
        assert!(m.insns_per_request > 1000.0);
        assert!(m.il1.accesses > 0);
        assert!(m.report.detections.is_empty());
    }
}
