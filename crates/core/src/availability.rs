//! Service-availability accounting.
//!
//! The paper's goal is *availability*: "the system, ideally, can quickly
//! recover from the 'wounds' and continues to serve legitimate and
//! well-behaved clients" (§2.2). This module turns a [`RunReport`] into
//! the numbers that claim is judged by: what fraction of honest clients
//! were served, how long recoveries took, and how much service time was
//! lost to attacks.

use crate::{RecoveryLevel, RunReport};

/// Availability metrics derived from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Benign requests served.
    pub benign_served: u64,
    /// Benign requests sacrificed (consumed but never answered — dormant
    /// victims and requests in flight at detection time).
    pub benign_lost: u64,
    /// Recovery episodes, total.
    pub recoveries: u64,
    /// Micro (per-request) recoveries among them.
    pub micro_recoveries: u64,
    /// Macro (application checkpoint) recoveries among them.
    pub macro_recoveries: u64,
    /// Mean resurrectee cycles from a detection to the next successful
    /// benign response on the same core (the observable outage, "MTTR").
    pub mean_cycles_to_next_service: f64,
    /// Fraction of honest clients served, in `[0, 1]`.
    pub benign_service_ratio: f64,
}

impl AvailabilityReport {
    /// Derives availability metrics from a run report, given how many
    /// benign requests the harness actually queued.
    #[must_use]
    pub fn from_run(report: &RunReport, benign_sent: u64) -> AvailabilityReport {
        let benign_served = report.benign_served;
        let benign_lost = benign_sent.saturating_sub(benign_served);

        let micro =
            report.detections.iter().filter(|d| d.level == RecoveryLevel::Micro).count() as u64;
        let macro_ = report.detections.len() as u64 - micro;

        // For each detection, find the first benign sample on the same
        // core whose completion lies after the detection; the gap is the
        // client-visible outage.
        let mut gaps = Vec::new();
        for d in &report.detections {
            let next = report
                .samples
                .iter()
                .filter(|s| !s.malicious && s.core == d.core)
                .map(|s| s.completed_at)
                .filter(|&done| done > d.at_cycle)
                .min();
            if let Some(done) = next {
                gaps.push((done - d.at_cycle) as f64);
            }
        }
        let mean_gap =
            if gaps.is_empty() { 0.0 } else { gaps.iter().sum::<f64>() / gaps.len() as f64 };

        AvailabilityReport {
            benign_served,
            benign_lost,
            recoveries: report.detections.len() as u64,
            micro_recoveries: micro,
            macro_recoveries: macro_,
            mean_cycles_to_next_service: mean_gap,
            benign_service_ratio: if benign_sent == 0 {
                1.0
            } else {
                benign_served as f64 / benign_sent as f64
            },
        }
    }
}

impl AvailabilityReport {
    /// Serializes the report as JSON with a fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::json::JsonObject::new()
            .u64("benign_served", self.benign_served)
            .u64("benign_lost", self.benign_lost)
            .u64("recoveries", self.recoveries)
            .u64("micro_recoveries", self.micro_recoveries)
            .u64("macro_recoveries", self.macro_recoveries)
            .f64("mean_cycles_to_next_service", self.mean_cycles_to_next_service)
            .f64("benign_service_ratio", self.benign_service_ratio)
            .finish()
    }
}

impl std::fmt::Display for AvailabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "benign served {}/{} ({:.1}%)",
            self.benign_served,
            self.benign_served + self.benign_lost,
            self.benign_service_ratio * 100.0
        )?;
        writeln!(
            f,
            "recoveries: {} ({} micro, {} macro)",
            self.recoveries, self.micro_recoveries, self.macro_recoveries
        )?;
        write!(
            f,
            "mean cycles from detection to next served client: {:.0}",
            self.mean_cycles_to_next_service
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detection, FailureCause, RequestSample, ViolationKind};

    fn sample(core: usize, completion: u64, malicious: bool) -> RequestSample {
        RequestSample {
            request_id: 0,
            cycles: 100,
            instructions: 1000,
            malicious,
            core,
            completed_at: completion,
        }
    }

    fn detection(core: usize, at: u64, level: RecoveryLevel) -> Detection {
        Detection {
            cause: FailureCause::Violation(ViolationKind::ReturnMismatch),
            request_id: Some(1),
            was_malicious: true,
            level,
            at_cycle: at,
            insns_into_request: 0,
            core,
            retried: false,
            discarded: None,
            discarded_was_malicious: false,
        }
    }

    #[test]
    fn ratios_and_counts() {
        let report = RunReport {
            served: 5,
            benign_served: 4,
            detections: vec![
                detection(1, 1_000, RecoveryLevel::Micro),
                detection(1, 9_000, RecoveryLevel::Macro),
            ],
            samples: vec![
                sample(1, 500, false),
                sample(1, 2_000, false),
                sample(1, 3_000, true),
                sample(1, 12_000, false),
            ],
            quarantined: vec![],
            policy: Default::default(),
        };
        let a = AvailabilityReport::from_run(&report, 6);
        assert_eq!(a.benign_served, 4);
        assert_eq!(a.benign_lost, 2);
        assert_eq!(a.recoveries, 2);
        assert_eq!(a.micro_recoveries, 1);
        assert_eq!(a.macro_recoveries, 1);
        // gaps: detection@1000 -> next benign completion 2000 (1000);
        //       detection@9000 -> 12000 (3000); mean 2000.
        assert!((a.mean_cycles_to_next_service - 2000.0).abs() < 1e-9);
        assert!((a.benign_service_ratio - 4.0 / 6.0).abs() < 1e-9);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn clean_run_is_fully_available() {
        let report = RunReport {
            served: 3,
            benign_served: 3,
            detections: vec![],
            samples: vec![sample(1, 100, false); 3],
            quarantined: vec![],
            policy: Default::default(),
        };
        let a = AvailabilityReport::from_run(&report, 3);
        assert_eq!(a.benign_lost, 0);
        assert_eq!(a.recoveries, 0);
        assert!((a.benign_service_ratio - 1.0).abs() < 1e-12);
        assert_eq!(a.mean_cycles_to_next_service, 0.0);
    }
}
