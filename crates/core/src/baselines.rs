//! The baseline checkpointing schemes INDRA is compared against
//! (Table 3, Fig. 14).
//!
//! * [`VirtualCheckpoint`] — hardware-supported virtual checkpointing
//!   (Bowen & Pradhan, Staknis): the first store to a page since the last
//!   checkpoint copies the **whole page** to a backup frame; recovery is
//!   fast (point the translation at the pristine copy). The page-sized
//!   copies on the critical path are what Fig. 14 shows costing 2–14×.
//! * [`UndoLog`] — a DIRA-style memory-update log: every store appends
//!   the old value to a log (fast backup), and recovery walks the log
//!   backwards undoing each entry (slow for the large per-request write
//!   sets of network servers).
//! * [`SoftwareCheckpoint`] — libckpt-style user-level checkpointing:
//!   mechanically like [`VirtualCheckpoint`] but each first-touch pays a
//!   protection-trap + syscall overhead on top of the page copy.

use std::collections::HashMap;

use indra_mem::{FrameAllocator, FrameAllocatorState, PhysicalMemory, PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{AccessKind, AddressSpace, BackupHook};

use crate::{Scheme, SchemeState, SchemeStats};

/// Cycle cost of copying one full page between frames (64 lines' worth of
/// DRAM traffic).
pub const PAGE_COPY_CYCLES: u32 = 64 * 12;
/// Per-first-touch cost of conventional virtual checkpointing: the
/// write-protect fault, kernel entry, page copy staging and remap. This
/// is what Fig. 14 charges "frequent page-to-page memory copying" for —
/// roughly the cost of a protection fault round trip on the paper's
/// platform.
pub const VC_TRAP_CYCLES: u32 = 29_000;
/// Extra cost per first-touch for the *software* (libckpt-style) scheme:
/// the fault is reflected to a user-level handler (double kernel
/// crossing).
pub const SW_TRAP_CYCLES: u32 = 9_000;
/// Cost to append one undo-log entry (store old word + metadata).
pub const LOG_APPEND_CYCLES: u32 = 4;
/// Cost to undo one log entry at recovery: a dependent read-modify-write
/// chain through memory, so each entry pays close to a full memory round
/// trip (this serial walk is why Table 3 calls log recovery "slow").
pub const LOG_UNDO_CYCLES: u32 = 60;
/// Cost to fix one translation at recovery (TLB/PTE update).
pub const REMAP_CYCLES: u32 = 20;

#[derive(Debug, Default)]
struct PageCkptProc {
    /// vpn → backup frame holding the boundary snapshot.
    saved: HashMap<u32, u32>,
}

/// Page-granularity copy-on-first-write checkpointing.
#[derive(Debug)]
pub struct VirtualCheckpoint {
    frames: FrameAllocator,
    procs: HashMap<u16, PageCkptProc>,
    stats: SchemeStats,
    /// Extra per-first-touch cost (0 for hardware, [`SW_TRAP_CYCLES`] for
    /// the software variant).
    trap_cycles: u32,
    name: &'static str,
}

impl VirtualCheckpoint {
    /// Conventional virtual checkpointing.
    #[must_use]
    pub fn new(frames: FrameAllocator) -> VirtualCheckpoint {
        VirtualCheckpoint {
            frames,
            procs: HashMap::new(),
            stats: SchemeStats::default(),
            trap_cycles: VC_TRAP_CYCLES,
            name: "virtual-checkpoint",
        }
    }

    fn proc_mut(&mut self, asid: u16) -> Option<&mut PageCkptProc> {
        self.procs.get_mut(&asid)
    }

    fn capture(&self) -> PageCkptState {
        let mut procs: Vec<PageCkptProcState> = self
            .procs
            .iter()
            .map(|(&asid, p)| {
                let mut saved: Vec<(u32, u32)> =
                    p.saved.iter().map(|(&vpn, &ppn)| (vpn, ppn)).collect();
                saved.sort_unstable_by_key(|&(vpn, _)| vpn);
                PageCkptProcState { asid, saved }
            })
            .collect();
        procs.sort_unstable_by_key(|p| p.asid);
        PageCkptState { frames: self.frames.save_state(), procs, stats: self.stats }
    }

    fn inject(&mut self, state: &PageCkptState) {
        self.frames.restore_state(&state.frames);
        self.procs.clear();
        for p in &state.procs {
            self.procs.insert(p.asid, PageCkptProc { saved: p.saved.iter().copied().collect() });
        }
        self.stats = state.stats;
    }
}

/// One service's durable page-checkpoint state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageCkptProcState {
    /// Address-space id.
    pub asid: u16,
    /// Saved pages `(vpn, backup_ppn)`, sorted by vpn.
    pub saved: Vec<(u32, u32)>,
}

/// Complete mutable state of a [`VirtualCheckpoint`] or
/// [`SoftwareCheckpoint`] (both share the mechanism; trap costs and the
/// scheme name are construction-time configuration and not captured).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageCkptState {
    /// Backup frame-pool allocator state.
    pub frames: FrameAllocatorState,
    /// Per-service saved pages, sorted by asid.
    pub procs: Vec<PageCkptProcState>,
    /// Cumulative counters.
    pub stats: SchemeStats,
}

/// One undo-log entry's durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoEntryState {
    /// Word-aligned physical address of the logged store.
    pub paddr: u32,
    /// The word's value before the store.
    pub old: u32,
}

/// Complete mutable state of an [`UndoLog`]. Entry order within each log
/// is preserved verbatim — recovery undoes entries in reverse append
/// order, so the order is behavioral, not incidental.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UndoLogState {
    /// Per-service logs `(asid, entries)`, sorted by asid.
    pub logs: Vec<(u16, Vec<UndoEntryState>)>,
    /// Cumulative counters.
    pub stats: SchemeStats,
}

/// libckpt-style software checkpointing: same mechanism, plus a
/// protection-fault trap on each first touch.
#[derive(Debug)]
pub struct SoftwareCheckpoint(VirtualCheckpoint);

impl SoftwareCheckpoint {
    /// Creates the software variant.
    #[must_use]
    pub fn new(frames: FrameAllocator) -> SoftwareCheckpoint {
        let mut inner = VirtualCheckpoint::new(frames);
        inner.trap_cycles = VC_TRAP_CYCLES + SW_TRAP_CYCLES;
        inner.name = "software-checkpoint";
        SoftwareCheckpoint(inner)
    }
}

impl BackupHook for VirtualCheckpoint {
    fn before_read(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        0
    }

    fn before_write(
        &mut self,
        asid: u16,
        vaddr: u32,
        paddr: u32,
        phys: &mut PhysicalMemory,
    ) -> u32 {
        let trap = self.trap_cycles;
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        self.stats.stores_observed += 1;
        let vpn = vaddr >> PAGE_SHIFT;
        if proc.saved.contains_key(&vpn) {
            return 0;
        }
        let Some(backup_ppn) = self.frames.alloc() else { return 0 };
        let active_base = paddr & !(PAGE_SIZE - 1);
        phys.copy(backup_ppn << PAGE_SHIFT, active_base, PAGE_SIZE);
        proc.saved.insert(vpn, backup_ppn);
        self.stats.page_copies += 1;
        PAGE_COPY_CYCLES + trap
    }
}

impl Scheme for VirtualCheckpoint {
    fn name(&self) -> &'static str {
        self.name
    }

    fn register(&mut self, asid: u16) {
        self.procs.entry(asid).or_default();
    }

    /// Boundary: the previous request committed, so every backup frame is
    /// obsolete — release them all.
    fn begin_request(&mut self, asid: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        let mut freed = Vec::new();
        if let Some(proc) = self.proc_mut(asid) {
            freed.extend(proc.saved.drain().map(|(_, ppn)| ppn));
        }
        let cost = freed.len() as u64; // trivial free-list work
        for ppn in freed {
            self.frames.release(ppn);
        }
        self.stats.boundary_cycles += cost;
        cost
    }

    /// Recovery: copy every saved page back (the paper's "fast, modify
    /// page translation" is modeled as a remap cost per page; we move the
    /// bytes so correctness is testable, but charge only the remap).
    fn fail_and_rollback(
        &mut self,
        asid: u16,
        space: &mut AddressSpace,
        phys: &mut PhysicalMemory,
    ) -> u64 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        let mut cycles = 0u64;
        for (&vpn, &backup_ppn) in &proc.saved {
            if let Ok(paddr) = space.translate(vpn << PAGE_SHIFT, AccessKind::Read) {
                phys.copy(paddr & !(PAGE_SIZE - 1), backup_ppn << PAGE_SHIFT, PAGE_SIZE);
            }
            cycles += u64::from(REMAP_CYCLES);
        }
        let freed: Vec<u32> = proc.saved.drain().map(|(_, ppn)| ppn).collect();
        for ppn in freed {
            self.frames.release(ppn);
        }
        self.stats.rollbacks += 1;
        self.stats.recovery_cycles += cycles;
        cycles
    }

    fn ensure_clean(&mut self, _: u16, _: u32, _: u32, _: &AddressSpace, _: &mut PhysicalMemory) {
        // Eager scheme: memory is always materialized.
    }

    fn forget(&mut self, asid: u16) {
        if let Some(proc) = self.procs.get_mut(&asid) {
            let freed: Vec<u32> = proc.saved.drain().map(|(_, ppn)| ppn).collect();
            for ppn in freed {
                self.frames.release(ppn);
            }
        }
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    fn save_state(&self) -> SchemeState {
        SchemeState::PageCkpt(self.capture())
    }

    fn load_state(&mut self, state: &SchemeState) {
        match state {
            SchemeState::PageCkpt(s) => self.inject(s),
            other => panic!("scheme state mismatch: {} <- {other:?}", self.name),
        }
    }
}

impl BackupHook for SoftwareCheckpoint {
    fn before_read(&mut self, a: u16, v: u32, p: u32, phys: &mut PhysicalMemory) -> u32 {
        self.0.before_read(a, v, p, phys)
    }

    fn before_write(&mut self, a: u16, v: u32, p: u32, phys: &mut PhysicalMemory) -> u32 {
        self.0.before_write(a, v, p, phys)
    }
}

impl Scheme for SoftwareCheckpoint {
    fn name(&self) -> &'static str {
        self.0.name
    }

    fn register(&mut self, asid: u16) {
        self.0.register(asid);
    }

    fn begin_request(&mut self, a: u16, s: &mut AddressSpace, p: &mut PhysicalMemory) -> u64 {
        self.0.begin_request(a, s, p)
    }

    fn fail_and_rollback(&mut self, a: u16, s: &mut AddressSpace, p: &mut PhysicalMemory) -> u64 {
        self.0.fail_and_rollback(a, s, p)
    }

    fn ensure_clean(&mut self, a: u16, v: u32, l: u32, s: &AddressSpace, p: &mut PhysicalMemory) {
        self.0.ensure_clean(a, v, l, s, p);
    }

    fn forget(&mut self, asid: u16) {
        self.0.forget(asid);
    }

    fn stats(&self) -> SchemeStats {
        self.0.stats()
    }

    fn reset_stats(&mut self) {
        self.0.reset_stats();
    }

    fn save_state(&self) -> SchemeState {
        Scheme::save_state(&self.0)
    }

    fn load_state(&mut self, state: &SchemeState) {
        self.0.load_state(state);
    }
}

#[derive(Debug, Clone, Copy)]
struct UndoEntry {
    paddr: u32,
    old: u32,
}

/// DIRA-style memory-update (undo) log.
#[derive(Debug, Default)]
pub struct UndoLog {
    logs: HashMap<u16, Vec<UndoEntry>>,
    stats: SchemeStats,
}

impl UndoLog {
    /// Creates an empty log scheme.
    #[must_use]
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Current log length for `asid`.
    #[must_use]
    pub fn log_len(&self, asid: u16) -> usize {
        self.logs.get(&asid).map_or(0, Vec::len)
    }
}

impl BackupHook for UndoLog {
    fn before_read(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        0
    }

    fn before_write(
        &mut self,
        asid: u16,
        _vaddr: u32,
        paddr: u32,
        phys: &mut PhysicalMemory,
    ) -> u32 {
        let Some(log) = self.logs.get_mut(&asid) else { return 0 };
        self.stats.stores_observed += 1;
        // Log the aligned word containing the store (covers byte stores).
        let word_addr = paddr & !3;
        log.push(UndoEntry { paddr: word_addr, old: phys.read_u32(word_addr) });
        self.stats.log_entries += 1;
        LOG_APPEND_CYCLES
    }
}

impl Scheme for UndoLog {
    fn name(&self) -> &'static str {
        "undo-log"
    }

    fn register(&mut self, asid: u16) {
        self.logs.entry(asid).or_default();
    }

    /// Boundary: discard the log (previous request committed).
    fn begin_request(&mut self, asid: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        if let Some(log) = self.logs.get_mut(&asid) {
            log.clear();
        }
        self.stats.boundary_cycles += 1;
        1
    }

    /// Recovery: undo every entry in reverse order — the "slow" cell of
    /// Table 3's recovery column.
    fn fail_and_rollback(
        &mut self,
        asid: u16,
        _: &mut AddressSpace,
        phys: &mut PhysicalMemory,
    ) -> u64 {
        let Some(log) = self.logs.get_mut(&asid) else { return 0 };
        let mut cycles = 0u64;
        for entry in log.drain(..).rev() {
            phys.write_u32(entry.paddr, entry.old);
            cycles += u64::from(LOG_UNDO_CYCLES);
        }
        self.stats.rollbacks += 1;
        self.stats.recovery_cycles += cycles;
        cycles
    }

    fn ensure_clean(&mut self, _: u16, _: u32, _: u32, _: &AddressSpace, _: &mut PhysicalMemory) {}

    fn forget(&mut self, asid: u16) {
        if let Some(log) = self.logs.get_mut(&asid) {
            log.clear();
        }
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    fn save_state(&self) -> SchemeState {
        let mut logs: Vec<(u16, Vec<UndoEntryState>)> = self
            .logs
            .iter()
            .map(|(&asid, log)| {
                (
                    asid,
                    log.iter()
                        .map(|e| UndoEntryState { paddr: e.paddr, old: e.old })
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        logs.sort_unstable_by_key(|&(asid, _)| asid);
        SchemeState::UndoLog(UndoLogState { logs, stats: self.stats })
    }

    fn load_state(&mut self, state: &SchemeState) {
        match state {
            SchemeState::UndoLog(s) => {
                self.logs.clear();
                for (asid, entries) in &s.logs {
                    self.logs.insert(
                        *asid,
                        entries.iter().map(|e| UndoEntry { paddr: e.paddr, old: e.old }).collect(),
                    );
                }
                self.stats = s.stats;
            }
            other => panic!("scheme state mismatch: undo-log <- {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_sim::Pte;

    fn space_and_phys() -> (AddressSpace, PhysicalMemory) {
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        space.map(0x11, Pte { ppn: 0x6, read: true, write: true, execute: false });
        (space, PhysicalMemory::new())
    }

    #[test]
    fn virtual_checkpoint_copies_page_once() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = VirtualCheckpoint::new(FrameAllocator::new(0x100, 0x110));
        s.register(7);
        s.begin_request(7, &mut space, &mut phys);
        let c1 = s.before_write(7, 0x10000, 0x5000, &mut phys);
        assert_eq!(c1, PAGE_COPY_CYCLES + VC_TRAP_CYCLES);
        let c2 = s.before_write(7, 0x10800, 0x5800, &mut phys);
        assert_eq!(c2, 0, "second touch of the same page is free");
        assert_eq!(s.stats().page_copies, 1);
    }

    #[test]
    fn virtual_checkpoint_rolls_back_whole_page() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = VirtualCheckpoint::new(FrameAllocator::new(0x100, 0x110));
        s.register(7);
        phys.write_u32(0x5000, 0xAA);
        phys.write_u32(0x5FF0, 0xBB);
        s.begin_request(7, &mut space, &mut phys);
        s.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 0x11);
        phys.write_u32(0x5FF0, 0x22); // same page, not separately hooked
        s.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0xAA);
        assert_eq!(phys.read_u32(0x5FF0), 0xBB);
    }

    #[test]
    fn virtual_checkpoint_frames_recycle_at_boundary() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = VirtualCheckpoint::new(FrameAllocator::new(0x100, 0x102)); // only 2 frames
        s.register(7);
        for _ in 0..5 {
            s.begin_request(7, &mut space, &mut phys);
            assert_eq!(
                s.before_write(7, 0x10000, 0x5000, &mut phys),
                PAGE_COPY_CYCLES + VC_TRAP_CYCLES
            );
            assert_eq!(
                s.before_write(7, 0x11000, 0x6000, &mut phys),
                PAGE_COPY_CYCLES + VC_TRAP_CYCLES
            );
        }
        assert_eq!(s.stats().page_copies, 10, "frames must recycle at each boundary");
    }

    #[test]
    fn software_checkpoint_pays_trap() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = SoftwareCheckpoint::new(FrameAllocator::new(0x100, 0x110));
        s.register(7);
        s.begin_request(7, &mut space, &mut phys);
        let c = s.before_write(7, 0x10000, 0x5000, &mut phys);
        assert_eq!(c, PAGE_COPY_CYCLES + VC_TRAP_CYCLES + SW_TRAP_CYCLES);
        assert_eq!(s.name(), "software-checkpoint");
    }

    #[test]
    fn undo_log_restores_in_reverse() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = UndoLog::new();
        s.register(7);
        phys.write_u32(0x5000, 1);
        s.begin_request(7, &mut space, &mut phys);
        // Two writes to the same word: undo must end at the ORIGINAL value.
        s.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 2);
        s.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 3);
        assert_eq!(s.log_len(7), 2);
        let cycles = s.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 1);
        assert_eq!(cycles, 2 * u64::from(LOG_UNDO_CYCLES));
        assert_eq!(s.log_len(7), 0);
    }

    #[test]
    fn undo_log_boundary_discards() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = UndoLog::new();
        s.register(7);
        s.begin_request(7, &mut space, &mut phys);
        s.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 9);
        s.begin_request(7, &mut space, &mut phys);
        let cycles = s.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(cycles, 0, "nothing to undo after a committed boundary");
        assert_eq!(phys.read_u32(0x5000), 9, "committed value survives");
    }

    #[test]
    fn undo_log_byte_store_coverage() {
        let (mut space, mut phys) = space_and_phys();
        let mut s = UndoLog::new();
        s.register(7);
        phys.write_u32(0x5000, 0x44332211);
        s.begin_request(7, &mut space, &mut phys);
        // A byte store at offset 2 logs the containing word.
        s.before_write(7, 0x10002, 0x5002, &mut phys);
        phys.write_u8(0x5002, 0xFF);
        s.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0x44332211);
    }
}
