//! INDRA's delta-page backup engine (§3.3.1, Figs. 3–7).
//!
//! The paper's key memory-state idea: assign each virtual page a *backup
//! page* on demand, but copy into it only the cache **lines** actually
//! modified — and on rollback, copy nothing at all: just OR the dirty
//! bitvector into the rollback bitvector and let subsequent reads and
//! writes lazily pull original lines back in (Figs. 4 and 5). Both
//! backup and recovery cost is thereby amortized into normal execution.
//!
//! Timestamps make the per-request reset free: a **Global TimeStamp**
//! (GTS) per service is bumped at every request boundary; each page's
//! **Local TimeStamp** (LTS) records the GTS it was last written under.
//! `GTS > LTS` on a write means the page's dirty bits belong to an
//! already-committed request and can be cleared wholesale.

use std::collections::HashMap;

use indra_mem::{FrameAllocator, PhysicalMemory, PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{AccessKind, AddressSpace, BackupHook};

use indra_mem::FrameAllocatorState;

use crate::{Scheme, SchemeState, SchemeStats};

/// Tuning knobs for the delta engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Backup granularity in bytes (the paper uses the L2 line, 64 B).
    pub line_size: u32,
    /// Cycles to copy one line into the backup page (buffered store,
    /// mostly off the critical path — the engine is hardware).
    pub backup_line_cycles: u32,
    /// Cycles to lazily restore one line on access.
    pub restore_line_cycles: u32,
    /// Cycles for the backup-page-allocation exception.
    pub alloc_page_cycles: u32,
    /// Cycles per backup page to merge bitvectors at rollback time.
    pub rollback_mark_cycles: u32,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            line_size: 64,
            backup_line_cycles: 25,
            restore_line_cycles: 28,
            alloc_page_cycles: 400,
            rollback_mark_cycles: 4,
        }
    }
}

/// Per-page backup record (Fig. 3): the backup frame, the LTS and the two
/// bitvectors. In hardware this rides in the extended TLB entry; here it
/// is the architectural model of that state.
#[derive(Debug, Clone, Copy)]
struct BackupRecord {
    backup_ppn: u32,
    lts: u64,
    dirty: u128,
    rollback: u128,
}

#[derive(Debug, Default)]
struct ProcBackup {
    gts: u64,
    pages: HashMap<u32, BackupRecord>,
    /// Pages with any rollback bit set (the RollbackVld quick check).
    rollback_pending: u64,
}

/// The delta-page backup engine.
#[derive(Debug)]
pub struct DeltaBackupEngine {
    cfg: DeltaConfig,
    frames: FrameAllocator,
    procs: HashMap<u16, ProcBackup>,
    stats: SchemeStats,
}

impl DeltaBackupEngine {
    /// Creates the engine with `frames` as its hidden backup-page pool.
    ///
    /// # Panics
    ///
    /// Panics when `line_size` does not divide the page size or implies
    /// more than 128 lines per page (the bitvector width).
    #[must_use]
    pub fn new(cfg: DeltaConfig, frames: FrameAllocator) -> DeltaBackupEngine {
        assert!(
            cfg.line_size.is_power_of_two() && PAGE_SIZE.is_multiple_of(cfg.line_size),
            "line size must be a power of two dividing the page size"
        );
        assert!(PAGE_SIZE / cfg.line_size <= 128, "at most 128 lines per page");
        DeltaBackupEngine { cfg, frames, procs: HashMap::new(), stats: SchemeStats::default() }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> DeltaConfig {
        self.cfg
    }

    /// The current GTS of a registered service.
    #[must_use]
    pub fn gts(&self, asid: u16) -> Option<u64> {
        self.procs.get(&asid).map(|p| p.gts)
    }

    /// Live backup frames (the Fig.-relevant space overhead; "INDRA
    /// allocates delta backup pages on demand").
    #[must_use]
    pub fn backup_frames_live(&self) -> u32 {
        self.frames.live_frames()
    }

    /// Number of pages with pending lazy rollback for `asid`.
    #[must_use]
    pub fn pages_pending_rollback(&self, asid: u16) -> u64 {
        self.procs.get(&asid).map_or(0, |p| p.rollback_pending)
    }

    /// Captures the engine's complete mutable state (per-service GTS,
    /// per-page records and bitvectors, the frame pool). The
    /// [`DeltaConfig`] is not captured — it comes from construction.
    #[must_use]
    pub fn save_state(&self) -> DeltaState {
        let mut procs: Vec<DeltaProcState> = self
            .procs
            .iter()
            .map(|(&asid, p)| {
                let mut pages: Vec<DeltaPageState> = p
                    .pages
                    .iter()
                    .map(|(&vpn, r)| DeltaPageState {
                        vpn,
                        backup_ppn: r.backup_ppn,
                        lts: r.lts,
                        dirty: r.dirty,
                        rollback: r.rollback,
                    })
                    .collect();
                pages.sort_unstable_by_key(|pg| pg.vpn);
                DeltaProcState { asid, gts: p.gts, rollback_pending: p.rollback_pending, pages }
            })
            .collect();
        procs.sort_unstable_by_key(|p| p.asid);
        DeltaState { frames: self.frames.save_state(), procs, stats: self.stats }
    }

    /// Restores state captured by [`DeltaBackupEngine::save_state`].
    pub fn restore_state(&mut self, state: &DeltaState) {
        self.frames.restore_state(&state.frames);
        self.procs.clear();
        for p in &state.procs {
            let pages = p
                .pages
                .iter()
                .map(|pg| {
                    (
                        pg.vpn,
                        BackupRecord {
                            backup_ppn: pg.backup_ppn,
                            lts: pg.lts,
                            dirty: pg.dirty,
                            rollback: pg.rollback,
                        },
                    )
                })
                .collect();
            self.procs.insert(
                p.asid,
                ProcBackup { gts: p.gts, pages, rollback_pending: p.rollback_pending },
            );
        }
        self.stats = state.stats;
    }
}

/// One backup page's durable state: the Fig. 3 record keyed by its vpn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaPageState {
    /// Virtual page number this record backs.
    pub vpn: u32,
    /// Physical frame of the backup page.
    pub backup_ppn: u32,
    /// Local timestamp (GTS the page was last written under).
    pub lts: u64,
    /// Dirty-line bitvector.
    pub dirty: u128,
    /// Pending-rollback bitvector.
    pub rollback: u128,
}

/// One service's durable delta-engine state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaProcState {
    /// Address-space id.
    pub asid: u16,
    /// Global timestamp.
    pub gts: u64,
    /// Count of pages with any rollback bit set.
    pub rollback_pending: u64,
    /// Per-page records, sorted by vpn.
    pub pages: Vec<DeltaPageState>,
}

/// Complete mutable state of a [`DeltaBackupEngine`], captured by
/// [`DeltaBackupEngine::save_state`] for the durable-checkpoint
/// subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaState {
    /// Backup frame-pool allocator state.
    pub frames: FrameAllocatorState,
    /// Per-service state, sorted by asid.
    pub procs: Vec<DeltaProcState>,
    /// Cumulative counters.
    pub stats: SchemeStats,
}

impl BackupHook for DeltaBackupEngine {
    /// Fig. 5: a read of a line whose rollback bit is set first restores
    /// the line from the backup page.
    fn before_read(&mut self, asid: u16, vaddr: u32, paddr: u32, phys: &mut PhysicalMemory) -> u32 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        if proc.rollback_pending == 0 {
            return 0; // RollbackVld fast path
        }
        let vpn = vaddr >> PAGE_SHIFT;
        let Some(rec) = proc.pages.get_mut(&vpn) else { return 0 };
        let line = (vaddr & (PAGE_SIZE - 1)) / self.cfg.line_size;
        let bit = 1u128 << line;
        if rec.rollback & bit == 0 {
            return 0;
        }
        rec.rollback &= !bit;
        let backup_base = rec.backup_ppn << PAGE_SHIFT;
        let active_base = paddr & !(PAGE_SIZE - 1);
        if rec.rollback == 0 {
            proc.rollback_pending -= 1;
        }
        let off = line * self.cfg.line_size;
        phys.copy(active_base + off, backup_base + off, self.cfg.line_size);
        self.stats.lazy_restores += 1;
        self.cfg.restore_line_cycles
    }

    /// Fig. 4: back up the original line on first write per request; a
    /// write to a rollback-pending line restores it first (the backup
    /// page already holds the boundary snapshot, so no re-copy).
    fn before_write(
        &mut self,
        asid: u16,
        vaddr: u32,
        paddr: u32,
        phys: &mut PhysicalMemory,
    ) -> u32 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        self.stats.stores_observed += 1;
        let vpn = vaddr >> PAGE_SHIFT;
        let gts = proc.gts;
        let mut cycles = 0;

        let rec = match proc.pages.get_mut(&vpn) {
            Some(r) => r,
            None => {
                let Some(ppn) = self.frames.alloc() else {
                    // Pool exhausted: fail safe by skipping backup (the
                    // hybrid macro checkpoint still covers recovery).
                    return 0;
                };
                cycles += self.cfg.alloc_page_cycles;
                proc.pages
                    .insert(vpn, BackupRecord { backup_ppn: ppn, lts: gts, dirty: 0, rollback: 0 });
                proc.pages.get_mut(&vpn).expect("just inserted")
            }
        };

        if gts > rec.lts {
            // New request interval: old dirty bits are obsolete (Fig. 7,
            // action 2: "clears the old dirty bitvector ... updates LTS").
            rec.dirty = 0;
            rec.lts = gts;
        }

        let line = (vaddr & (PAGE_SIZE - 1)) / self.cfg.line_size;
        let bit = 1u128 << line;
        let active_base = paddr & !(PAGE_SIZE - 1);
        let backup_base = rec.backup_ppn << PAGE_SHIFT;
        let off = line * self.cfg.line_size;

        if rec.rollback & bit != 0 {
            // Fig. 7, action 7: pending-rollback line. The backup page
            // already holds the boundary value; restore the active line
            // (the incoming store may be narrower than a line), flip the
            // bit from rollback to dirty, and skip the copy.
            phys.copy(active_base + off, backup_base + off, self.cfg.line_size);
            rec.rollback &= !bit;
            rec.dirty |= bit;
            if rec.rollback == 0 {
                proc.rollback_pending -= 1;
            }
            self.stats.lazy_restores += 1;
            cycles += self.cfg.restore_line_cycles;
        } else if rec.dirty & bit == 0 {
            phys.copy(backup_base + off, active_base + off, self.cfg.line_size);
            rec.dirty |= bit;
            self.stats.line_copies += 1;
            cycles += self.cfg.backup_line_cycles;
        }
        cycles
    }
}

impl Scheme for DeltaBackupEngine {
    fn name(&self) -> &'static str {
        "indra-delta"
    }

    fn register(&mut self, asid: u16) {
        self.procs.entry(asid).or_default();
    }

    /// Fig. 6, success path: `GTS++`. No copying, no scanning — the
    /// timestamp comparison invalidates every page's dirty bits lazily.
    fn begin_request(&mut self, asid: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        if let Some(p) = self.procs.get_mut(&asid) {
            p.gts += 1;
        }
        self.stats.boundary_cycles += 1;
        1
    }

    /// Fig. 6, failure path: for every backup page,
    /// `rollback |= dirty; dirty = 0` — no memory copying at all.
    fn fail_and_rollback(
        &mut self,
        asid: u16,
        _: &mut AddressSpace,
        _: &mut PhysicalMemory,
    ) -> u64 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        let mut cycles = 0u64;
        for rec in proc.pages.values_mut() {
            // Only pages written under the *current* GTS hold state from
            // the failed request; stale pages' dirty bits were already
            // superseded.
            if rec.lts == proc.gts && rec.dirty != 0 {
                if rec.rollback == 0 {
                    proc.rollback_pending += 1;
                }
                rec.rollback |= rec.dirty;
                rec.dirty = 0;
                cycles += u64::from(self.cfg.rollback_mark_cycles);
            }
        }
        self.stats.rollbacks += 1;
        self.stats.recovery_cycles += cycles;
        cycles
    }

    /// Materializes pending lazy restores overlapping the range — the
    /// synchronization INDRA applies before I/O leaves the core (§3.2.5).
    fn ensure_clean(
        &mut self,
        asid: u16,
        vaddr: u32,
        len: u32,
        space: &AddressSpace,
        phys: &mut PhysicalMemory,
    ) {
        let Some(proc) = self.procs.get_mut(&asid) else { return };
        if proc.rollback_pending == 0 || len == 0 {
            return;
        }
        let first_vpn = vaddr >> PAGE_SHIFT;
        let last_vpn = (vaddr + len - 1) >> PAGE_SHIFT;
        for vpn in first_vpn..=last_vpn {
            let Some(rec) = proc.pages.get_mut(&vpn) else { continue };
            if rec.rollback == 0 {
                continue;
            }
            let Ok(paddr) = space.translate(vpn << PAGE_SHIFT, AccessKind::Read) else {
                continue;
            };
            let backup_base = rec.backup_ppn << PAGE_SHIFT;
            let lines = PAGE_SIZE / self.cfg.line_size;
            for line in 0..lines {
                if rec.rollback & (1u128 << line) != 0 {
                    let off = line * self.cfg.line_size;
                    phys.copy(paddr + off, backup_base + off, self.cfg.line_size);
                    self.stats.lazy_restores += 1;
                }
            }
            rec.rollback = 0;
            proc.rollback_pending -= 1;
        }
    }

    fn forget(&mut self, asid: u16) {
        if let Some(proc) = self.procs.get_mut(&asid) {
            for (_, rec) in proc.pages.drain() {
                self.frames.release(rec.backup_ppn);
            }
            proc.rollback_pending = 0;
        }
    }

    fn live_backup_frames(&self) -> u32 {
        self.backup_frames_live()
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    fn save_state(&self) -> SchemeState {
        SchemeState::Delta(self.save_state())
    }

    fn load_state(&mut self, state: &SchemeState) {
        match state {
            SchemeState::Delta(s) => self.restore_state(s),
            other => panic!("scheme state mismatch: indra-delta <- {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_sim::Pte;

    const LINE: u32 = 64;

    /// One mapped RW page at vaddr 0x10000 → paddr 0x5000, plus the engine.
    fn rig() -> (DeltaBackupEngine, AddressSpace, PhysicalMemory) {
        let mut engine =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x200));
        engine.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        let phys = PhysicalMemory::new();
        (engine, space, phys)
    }

    /// Simulate the core's store-word path: hook then write.
    fn store(
        e: &mut DeltaBackupEngine,
        phys: &mut PhysicalMemory,
        vaddr: u32,
        paddr: u32,
        value: u32,
    ) {
        e.before_write(7, vaddr, paddr, phys);
        phys.write_u32(paddr, value);
    }

    fn load(e: &mut DeltaBackupEngine, phys: &mut PhysicalMemory, vaddr: u32, paddr: u32) -> u32 {
        e.before_read(7, vaddr, paddr, phys);
        phys.read_u32(paddr)
    }

    #[test]
    fn write_then_rollback_then_read_restores() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xAAAA);
        e.begin_request(7, &mut space, &mut phys);

        store(&mut e, &mut phys, 0x10000, 0x5000, 0xBBBB);
        assert_eq!(phys.read_u32(0x5000), 0xBBBB);

        e.fail_and_rollback(7, &mut space, &mut phys);
        // Active memory still corrupted (rollback is lazy)...
        assert_eq!(phys.read_u32(0x5000), 0xBBBB);
        // ...until the next read pulls the original line back.
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xAAAA);
        assert_eq!(e.stats().lazy_restores, 1);
        assert_eq!(e.pages_pending_rollback(7), 0);
    }

    #[test]
    fn committed_request_is_not_rolled_back() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 1);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 2);
        // Request succeeds:
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10040, 0x5040, 3);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // Line 0 (value 2) committed; only line 1 rolls back.
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 2);
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0);
    }

    #[test]
    fn only_first_write_per_request_copies() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        store(&mut e, &mut phys, 0x10004, 0x5004, 2); // same line
        store(&mut e, &mut phys, 0x10000, 0x5000, 3); // same line again
        assert_eq!(e.stats().line_copies, 1, "one copy per line per request");
        assert_eq!(e.stats().stores_observed, 3);
        store(&mut e, &mut phys, 0x10000 + LINE, 0x5000 + LINE, 4);
        assert_eq!(e.stats().line_copies, 2);
    }

    #[test]
    fn write_after_rollback_preserves_boundary_snapshot() {
        // Fig. 7 action 7: a *write* to a pending-rollback line must not
        // lose the rollback data.
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0x11);
        e.begin_request(7, &mut space, &mut phys); // GTS=1 boundary value 0x11
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x22); // malicious write
        e.fail_and_rollback(7, &mut space, &mut phys);

        // Next request writes the same line before reading it:
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10004, 0x5004, &mut phys); // partial-line store
        phys.write_u32(0x5004, 0x33);
        // The untouched word of the line must show the boundary value, not
        // the malicious one.
        assert_eq!(phys.read_u32(0x5000), 0x11);
        assert_eq!(phys.read_u32(0x5004), 0x33);

        // And if THIS request also fails, rollback restores the boundary
        // snapshot again.
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0x11);
        assert_eq!(load(&mut e, &mut phys, 0x10004, 0x5004), 0);
    }

    #[test]
    fn double_failure_accumulates_rollback() {
        // Fig. 7 actions 5–9: two consecutive malicious requests; damage
        // from both must be revoked.
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x5040, 0xB);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 0xDEAD);
        e.fail_and_rollback(7, &mut space, &mut phys);

        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10040, 0x5040, 0xBEEF); // different line
        e.fail_and_rollback(7, &mut space, &mut phys);

        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xA);
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0xB);
    }

    #[test]
    fn ensure_clean_materializes_for_io() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0x77);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x99);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // DMA wants to read the buffer without going through the core:
        e.ensure_clean(7, 0x10000, 64, &space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0x77);
        assert_eq!(e.pages_pending_rollback(7), 0);
    }

    #[test]
    fn unregistered_asid_is_ignored() {
        let (mut e, _space, mut phys) = rig();
        phys.write_u32(0x9000, 5);
        let c = e.before_write(99, 0x9000, 0x9000, &mut phys);
        assert_eq!(c, 0);
        assert_eq!(e.stats().stores_observed, 0);
    }

    #[test]
    fn backup_frames_allocated_on_demand() {
        let (mut e, mut space, mut phys) = rig();
        assert_eq!(e.backup_frames_live(), 0);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        assert_eq!(e.backup_frames_live(), 1);
        // Same page in a later request reuses its backup frame.
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10080, 0x5080, 2);
        assert_eq!(e.backup_frames_live(), 1);
    }

    #[test]
    fn gts_advances_per_request() {
        let (mut e, mut space, mut phys) = rig();
        assert_eq!(e.gts(7), Some(0));
        e.begin_request(7, &mut space, &mut phys);
        e.begin_request(7, &mut space, &mut phys);
        assert_eq!(e.gts(7), Some(2));
        assert_eq!(e.gts(99), None);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn bad_line_size_panics() {
        let _ = DeltaBackupEngine::new(
            DeltaConfig { line_size: 48, ..DeltaConfig::default() },
            FrameAllocator::new(0, 1),
        );
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::Scheme;
    use indra_sim::{AddressSpace, Pte};

    fn rig2() -> (DeltaBackupEngine, AddressSpace, PhysicalMemory) {
        let mut engine =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x110));
        engine.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        space.map(0x11, Pte { ppn: 0x6, read: true, write: true, execute: false });
        (engine, space, PhysicalMemory::new())
    }

    #[test]
    fn last_line_of_page_rolls_back() {
        let (mut e, mut space, mut phys) = rig2();
        let vaddr = 0x10000 + 4096 - 4; // final word of the page
        let paddr = 0x5000 + 4096 - 4;
        phys.write_u32(paddr, 0x0BAD_CAFE);
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, vaddr, paddr, &mut phys);
        phys.write_u32(paddr, 1);
        e.fail_and_rollback(7, &mut space, &mut phys);
        e.before_read(7, vaddr, paddr, &mut phys);
        assert_eq!(phys.read_u32(paddr), 0x0BAD_CAFE);
    }

    #[test]
    fn ensure_clean_partial_range_leaves_other_pages_pending() {
        let (mut e, mut space, mut phys) = rig2();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x6000, 0xB);
        e.begin_request(7, &mut space, &mut phys);
        for (v, p) in [(0x10000u32, 0x5000u32), (0x11000, 0x6000)] {
            e.before_write(7, v, p, &mut phys);
            phys.write_u32(p, 0xFF);
        }
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 2);
        // Clean only the first page.
        e.ensure_clean(7, 0x10000, 64, &space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 1);
        assert_eq!(phys.read_u32(0x5000), 0xA, "cleaned page restored");
        assert_eq!(phys.read_u32(0x6000), 0xFF, "other page still lazy");
    }

    #[test]
    fn forget_releases_every_backup_frame() {
        let (mut e, mut space, mut phys) = rig2();
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        e.before_write(7, 0x11000, 0x6000, &mut phys);
        assert_eq!(e.live_backup_frames(), 2);
        e.forget(7);
        assert_eq!(e.live_backup_frames(), 0);
        assert_eq!(e.pages_pending_rollback(7), 0);
        // The engine keeps working after a forget.
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        assert_eq!(e.live_backup_frames(), 1);
    }

    #[test]
    fn pool_exhaustion_degrades_gracefully() {
        // A one-frame pool: the second page cannot be backed up, but the
        // hook must not panic and the first page still rolls back.
        let mut e =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x101));
        e.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        space.map(0x11, Pte { ppn: 0x6, read: true, write: true, execute: false });
        let mut phys = PhysicalMemory::new();
        phys.write_u32(0x5000, 0xAA);
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 1);
        let cycles = e.before_write(7, 0x11000, 0x6000, &mut phys);
        assert_eq!(cycles, 0, "unbackable write passes through");
        phys.write_u32(0x6000, 2);
        e.fail_and_rollback(7, &mut space, &mut phys);
        e.ensure_clean(7, 0x10000, 8192, &space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0xAA, "backed page recovered");
        assert_eq!(phys.read_u32(0x6000), 2, "unbackable page keeps its value");
    }

    #[test]
    fn read_of_never_backed_page_is_free() {
        let (mut e, mut space, mut phys) = rig2();
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // Reads on the *other* page pay nothing even with rollback pending.
        assert_eq!(e.before_read(7, 0x11000, 0x6000, &mut phys), 0);
    }
}
