//! INDRA's delta-page backup engine (§3.3.1, Figs. 3–7).
//!
//! The paper's key memory-state idea: assign each virtual page a *backup
//! page* on demand, but copy into it only the cache **lines** actually
//! modified — and on rollback, copy nothing at all: just OR the dirty
//! bitvector into the rollback bitvector and let subsequent reads and
//! writes lazily pull original lines back in (Figs. 4 and 5). Both
//! backup and recovery cost is thereby amortized into normal execution.
//!
//! Timestamps make the per-request reset free: a **Global TimeStamp**
//! (GTS) per service is bumped at every request boundary; each page's
//! **Local TimeStamp** (LTS) records the GTS it was last written under.
//! `GTS > LTS` on a write means the page's dirty bits belong to an
//! already-committed request and can be cleared wholesale.

use std::collections::{HashMap, VecDeque};

use indra_mem::{FrameAllocator, PhysicalMemory, PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{AccessKind, AddressSpace, BackupHook};

use indra_mem::FrameAllocatorState;

use crate::{Scheme, SchemeState, SchemeStats};

/// Tuning knobs for the delta engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Backup granularity in bytes (the paper uses the L2 line, 64 B).
    pub line_size: u32,
    /// Cycles to copy one line into the backup page (buffered store,
    /// mostly off the critical path — the engine is hardware).
    pub backup_line_cycles: u32,
    /// Cycles to lazily restore one line on access.
    pub restore_line_cycles: u32,
    /// Cycles for the backup-page-allocation exception.
    pub alloc_page_cycles: u32,
    /// Cycles per backup page to merge bitvectors at rollback time.
    pub rollback_mark_cycles: u32,
    /// Per-request compartment tracking: tag every dirtied line with the
    /// compartment (GTS interval) that wrote it, so a *committed* guilty
    /// request can later be rewound-and-discarded without touching any
    /// other request's state. Tracking costs zero modelled cycles.
    pub compartments: bool,
    /// How many sealed (committed) compartments stay discardable per
    /// service before the oldest is evicted and its tags pruned.
    pub compartment_window: u32,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            line_size: 64,
            backup_line_cycles: 25,
            restore_line_cycles: 28,
            alloc_page_cycles: 400,
            rollback_mark_cycles: 4,
            compartments: true,
            compartment_window: 16,
        }
    }
}

/// Why a [`DeltaConfig`] is unusable (the typed counterpart of the
/// assertions in [`DeltaBackupEngine::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaConfigError {
    /// `line_size` is zero, not a power of two, or does not divide the
    /// page size.
    BadLineSize(u32),
    /// `line_size` implies more than 128 lines per page (the bitvector
    /// width).
    TooManyLines(u32),
    /// `compartment_window` is zero while compartments are enabled — a
    /// sealed request could never be discarded.
    EmptyWindow,
}

impl std::fmt::Display for DeltaConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaConfigError::BadLineSize(n) => {
                write!(f, "line size {n} must be a power of two dividing the page size")
            }
            DeltaConfigError::TooManyLines(n) => {
                write!(f, "line size {n} implies more than 128 lines per page")
            }
            DeltaConfigError::EmptyWindow => {
                write!(f, "compartment window must be nonzero when compartments are on")
            }
        }
    }
}

impl std::error::Error for DeltaConfigError {}

impl DeltaConfig {
    /// Checks the invariants [`DeltaBackupEngine::new`] would panic on.
    pub fn validate(&self) -> Result<(), DeltaConfigError> {
        if !(self.line_size.is_power_of_two() && PAGE_SIZE.is_multiple_of(self.line_size)) {
            return Err(DeltaConfigError::BadLineSize(self.line_size));
        }
        if PAGE_SIZE / self.line_size > 128 {
            return Err(DeltaConfigError::TooManyLines(self.line_size));
        }
        if self.compartments && self.compartment_window == 0 {
            return Err(DeltaConfigError::EmptyWindow);
        }
        Ok(())
    }
}

/// One committed request still held discardable: its compartment id (the
/// GTS interval it ran under) plus the attribution the monitor needs when
/// it is later found guilty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedCompartment {
    /// Compartment id — the GTS the request ran under.
    pub gts: u64,
    /// The request id, for the audit record.
    pub request_id: u64,
    /// Whether the driver tagged the request as malicious (ground truth
    /// for evaluation; the engine never acts on it).
    pub malicious: bool,
}

/// Per-page backup record (Fig. 3): the backup frame, the LTS and the two
/// bitvectors. In hardware this rides in the extended TLB entry; here it
/// is the architectural model of that state.
#[derive(Debug, Clone)]
struct BackupRecord {
    backup_ppn: u32,
    lts: u64,
    dirty: u128,
    rollback: u128,
    /// Compartment tags: which lines each recent request dirtied, as
    /// `(gts, line bitvector)` in strictly ascending gts order. Every
    /// entry's gts is either a sealed compartment or the current one;
    /// bounded by the compartment window.
    hist: Vec<(u64, u128)>,
}

#[derive(Debug, Default)]
struct ProcBackup {
    gts: u64,
    pages: HashMap<u32, BackupRecord>,
    /// Pages with any rollback bit set (the RollbackVld quick check).
    rollback_pending: u64,
    /// The last line the service *loaded* (vpn, line) — the provenance
    /// hint for attributing a fault to the sealed compartment that
    /// planted the value being consumed.
    last_load: Option<(u32, u32)>,
    /// Committed requests still discardable, oldest first.
    seals: VecDeque<SealedCompartment>,
}

/// The delta-page backup engine.
#[derive(Debug)]
pub struct DeltaBackupEngine {
    cfg: DeltaConfig,
    frames: FrameAllocator,
    procs: HashMap<u16, ProcBackup>,
    stats: SchemeStats,
}

impl DeltaBackupEngine {
    /// Creates the engine with `frames` as its hidden backup-page pool.
    ///
    /// # Panics
    ///
    /// Panics when `line_size` does not divide the page size or implies
    /// more than 128 lines per page (the bitvector width).
    #[must_use]
    pub fn new(cfg: DeltaConfig, frames: FrameAllocator) -> DeltaBackupEngine {
        match DeltaBackupEngine::try_new(cfg, frames) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking constructor: the typed-error counterpart of
    /// [`DeltaBackupEngine::new`].
    pub fn try_new(
        cfg: DeltaConfig,
        frames: FrameAllocator,
    ) -> Result<DeltaBackupEngine, DeltaConfigError> {
        cfg.validate()?;
        Ok(DeltaBackupEngine { cfg, frames, procs: HashMap::new(), stats: SchemeStats::default() })
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> DeltaConfig {
        self.cfg
    }

    /// The current GTS of a registered service.
    #[must_use]
    pub fn gts(&self, asid: u16) -> Option<u64> {
        self.procs.get(&asid).map(|p| p.gts)
    }

    /// Live backup frames (the Fig.-relevant space overhead; "INDRA
    /// allocates delta backup pages on demand").
    #[must_use]
    pub fn backup_frames_live(&self) -> u32 {
        self.frames.live_frames()
    }

    /// Number of pages with pending lazy rollback for `asid`.
    #[must_use]
    pub fn pages_pending_rollback(&self, asid: u16) -> u64 {
        self.procs.get(&asid).map_or(0, |p| p.rollback_pending)
    }

    /// Sealed (committed, still-discardable) compartments for `asid`,
    /// oldest first.
    #[must_use]
    pub fn sealed_compartments(&self, asid: u16) -> Vec<SealedCompartment> {
        self.procs.get(&asid).map_or_else(Vec::new, |p| p.seals.iter().copied().collect())
    }

    /// Total compartment tags held across all pages of `asid` (test and
    /// leak-audit hook: must stay bounded by the window).
    #[must_use]
    pub fn compartment_tags(&self, asid: u16) -> usize {
        self.procs.get(&asid).map_or(0, |p| p.pages.values().map(|r| r.hist.len()).sum())
    }

    /// Captures the engine's complete mutable state (per-service GTS,
    /// per-page records and bitvectors, the frame pool). The
    /// [`DeltaConfig`] is not captured — it comes from construction.
    #[must_use]
    pub fn save_state(&self) -> DeltaState {
        let mut procs: Vec<DeltaProcState> = self
            .procs
            .iter()
            .map(|(&asid, p)| {
                let mut pages: Vec<DeltaPageState> = p
                    .pages
                    .iter()
                    .map(|(&vpn, r)| DeltaPageState {
                        vpn,
                        backup_ppn: r.backup_ppn,
                        lts: r.lts,
                        dirty: r.dirty,
                        rollback: r.rollback,
                        hist: r.hist.clone(),
                    })
                    .collect();
                pages.sort_unstable_by_key(|pg| pg.vpn);
                DeltaProcState {
                    asid,
                    gts: p.gts,
                    rollback_pending: p.rollback_pending,
                    pages,
                    last_load: p.last_load,
                    seals: p.seals.iter().copied().collect(),
                }
            })
            .collect();
        procs.sort_unstable_by_key(|p| p.asid);
        DeltaState { frames: self.frames.save_state(), procs, stats: self.stats }
    }

    /// Restores state captured by [`DeltaBackupEngine::save_state`].
    pub fn restore_state(&mut self, state: &DeltaState) {
        self.frames.restore_state(&state.frames);
        self.procs.clear();
        for p in &state.procs {
            let pages = p
                .pages
                .iter()
                .map(|pg| {
                    (
                        pg.vpn,
                        BackupRecord {
                            backup_ppn: pg.backup_ppn,
                            lts: pg.lts,
                            dirty: pg.dirty,
                            rollback: pg.rollback,
                            hist: pg.hist.clone(),
                        },
                    )
                })
                .collect();
            self.procs.insert(
                p.asid,
                ProcBackup {
                    gts: p.gts,
                    pages,
                    rollback_pending: p.rollback_pending,
                    last_load: p.last_load,
                    seals: p.seals.iter().copied().collect(),
                },
            );
        }
        self.stats = state.stats;
    }
}

/// One backup page's durable state: the Fig. 3 record keyed by its vpn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPageState {
    /// Virtual page number this record backs.
    pub vpn: u32,
    /// Physical frame of the backup page.
    pub backup_ppn: u32,
    /// Local timestamp (GTS the page was last written under).
    pub lts: u64,
    /// Dirty-line bitvector.
    pub dirty: u128,
    /// Pending-rollback bitvector.
    pub rollback: u128,
    /// Compartment tags, `(gts, lines)` in ascending gts order.
    pub hist: Vec<(u64, u128)>,
}

/// One service's durable delta-engine state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaProcState {
    /// Address-space id.
    pub asid: u16,
    /// Global timestamp.
    pub gts: u64,
    /// Count of pages with any rollback bit set.
    pub rollback_pending: u64,
    /// Per-page records, sorted by vpn.
    pub pages: Vec<DeltaPageState>,
    /// Last line the service loaded (vpn, line), if any.
    pub last_load: Option<(u32, u32)>,
    /// Sealed compartments, oldest first.
    pub seals: Vec<SealedCompartment>,
}

/// Complete mutable state of a [`DeltaBackupEngine`], captured by
/// [`DeltaBackupEngine::save_state`] for the durable-checkpoint
/// subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaState {
    /// Backup frame-pool allocator state.
    pub frames: FrameAllocatorState,
    /// Per-service state, sorted by asid.
    pub procs: Vec<DeltaProcState>,
    /// Cumulative counters.
    pub stats: SchemeStats,
}

impl BackupHook for DeltaBackupEngine {
    /// Fig. 5: a read of a line whose rollback bit is set first restores
    /// the line from the backup page.
    fn before_read(&mut self, asid: u16, vaddr: u32, paddr: u32, phys: &mut PhysicalMemory) -> u32 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        let vpn = vaddr >> PAGE_SHIFT;
        if self.cfg.compartments {
            // Provenance for fault attribution: remember the identity of
            // the last value the service consumed. Zero modelled cycles,
            // and it must be recorded *before* the fast path below.
            proc.last_load = Some((vpn, (vaddr & (PAGE_SIZE - 1)) / self.cfg.line_size));
        }
        if proc.rollback_pending == 0 {
            return 0; // RollbackVld fast path
        }
        let Some(rec) = proc.pages.get_mut(&vpn) else { return 0 };
        let line = (vaddr & (PAGE_SIZE - 1)) / self.cfg.line_size;
        let bit = 1u128 << line;
        if rec.rollback & bit == 0 {
            return 0;
        }
        rec.rollback &= !bit;
        let backup_base = rec.backup_ppn << PAGE_SHIFT;
        let active_base = paddr & !(PAGE_SIZE - 1);
        if rec.rollback == 0 {
            proc.rollback_pending -= 1;
        }
        let off = line * self.cfg.line_size;
        phys.copy(active_base + off, backup_base + off, self.cfg.line_size);
        self.stats.lazy_restores += 1;
        self.cfg.restore_line_cycles
    }

    /// Fig. 4: back up the original line on first write per request; a
    /// write to a rollback-pending line restores it first (the backup
    /// page already holds the boundary snapshot, so no re-copy).
    fn before_write(
        &mut self,
        asid: u16,
        vaddr: u32,
        paddr: u32,
        phys: &mut PhysicalMemory,
    ) -> u32 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        self.stats.stores_observed += 1;
        let vpn = vaddr >> PAGE_SHIFT;
        let gts = proc.gts;
        let mut cycles = 0;

        let rec = match proc.pages.get_mut(&vpn) {
            Some(r) => r,
            None => {
                let Some(ppn) = self.frames.alloc() else {
                    // Pool exhausted: fail safe by skipping backup (the
                    // hybrid macro checkpoint still covers recovery).
                    return 0;
                };
                cycles += self.cfg.alloc_page_cycles;
                proc.pages.insert(
                    vpn,
                    BackupRecord {
                        backup_ppn: ppn,
                        lts: gts,
                        dirty: 0,
                        rollback: 0,
                        hist: Vec::new(),
                    },
                );
                proc.pages.get_mut(&vpn).expect("just inserted")
            }
        };

        if gts > rec.lts {
            // New request interval: old dirty bits are obsolete (Fig. 7,
            // action 2: "clears the old dirty bitvector ... updates LTS").
            rec.dirty = 0;
            rec.lts = gts;
        }

        let line = (vaddr & (PAGE_SIZE - 1)) / self.cfg.line_size;
        let bit = 1u128 << line;
        let active_base = paddr & !(PAGE_SIZE - 1);
        let backup_base = rec.backup_ppn << PAGE_SHIFT;
        let off = line * self.cfg.line_size;

        if rec.rollback & bit != 0 {
            // Fig. 7, action 7: pending-rollback line. The backup page
            // already holds the boundary value; restore the active line
            // (the incoming store may be narrower than a line), flip the
            // bit from rollback to dirty, and skip the copy.
            phys.copy(active_base + off, backup_base + off, self.cfg.line_size);
            rec.rollback &= !bit;
            rec.dirty |= bit;
            if self.cfg.compartments && gts > 0 {
                push_tag(&mut rec.hist, gts, bit);
            }
            if rec.rollback == 0 {
                proc.rollback_pending -= 1;
            }
            self.stats.lazy_restores += 1;
            cycles += self.cfg.restore_line_cycles;
        } else if rec.dirty & bit == 0 {
            phys.copy(backup_base + off, active_base + off, self.cfg.line_size);
            rec.dirty |= bit;
            if self.cfg.compartments && gts > 0 {
                push_tag(&mut rec.hist, gts, bit);
            }
            self.stats.line_copies += 1;
            cycles += self.cfg.backup_line_cycles;
        }
        cycles
    }
}

/// Tags `line_bits` as written under `gts`. History entries are kept in
/// strictly ascending gts order, so a same-gts write merges into the tail.
fn push_tag(hist: &mut Vec<(u64, u128)>, gts: u64, line_bits: u128) {
    match hist.last_mut() {
        Some((g, bits)) if *g == gts => *bits |= line_bits,
        _ => hist.push((gts, line_bits)),
    }
}

impl Scheme for DeltaBackupEngine {
    fn name(&self) -> &'static str {
        "indra-delta"
    }

    fn register(&mut self, asid: u16) {
        self.procs.entry(asid).or_default();
    }

    /// Fig. 6, success path: `GTS++`. No copying, no scanning — the
    /// timestamp comparison invalidates every page's dirty bits lazily.
    fn begin_request(&mut self, asid: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        if let Some(p) = self.procs.get_mut(&asid) {
            p.gts += 1;
            if self.cfg.compartments {
                p.last_load = None;
            }
        }
        self.stats.boundary_cycles += 1;
        1
    }

    /// Fig. 6, failure path: for every backup page,
    /// `rollback |= dirty; dirty = 0` — no memory copying at all.
    fn fail_and_rollback(
        &mut self,
        asid: u16,
        _: &mut AddressSpace,
        _: &mut PhysicalMemory,
    ) -> u64 {
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        let mut cycles = 0u64;
        for rec in proc.pages.values_mut() {
            // Only pages written under the *current* GTS hold state from
            // the failed request; stale pages' dirty bits were already
            // superseded.
            if rec.lts == proc.gts && rec.dirty != 0 {
                if rec.rollback == 0 {
                    proc.rollback_pending += 1;
                }
                rec.rollback |= rec.dirty;
                rec.dirty = 0;
                cycles += u64::from(self.cfg.rollback_mark_cycles);
            }
            // The failed request's compartment dies with it: drop its
            // tags so it can never be named as a later fault's suspect
            // (its lines now carry rollback bits instead).
            if self.cfg.compartments {
                if let Some(&(g, _)) = rec.hist.last() {
                    if g == proc.gts {
                        rec.hist.pop();
                    }
                }
            }
        }
        self.stats.rollbacks += 1;
        self.stats.recovery_cycles += cycles;
        cycles
    }

    /// Commits the current request's compartment: it stays discardable
    /// until it falls out of the window. Zero modelled cycles — sealing
    /// is a ring-buffer push in the monitor.
    fn seal_compartment(&mut self, asid: u16, request_id: u64, malicious: bool) {
        if !self.cfg.compartments {
            return;
        }
        let Some(proc) = self.procs.get_mut(&asid) else { return };
        if proc.gts == 0 {
            return;
        }
        proc.seals.push_back(SealedCompartment { gts: proc.gts, request_id, malicious });
        while proc.seals.len() > self.cfg.compartment_window as usize {
            let Some(evicted) = proc.seals.pop_front() else { break };
            for rec in proc.pages.values_mut() {
                if rec.hist.first().map(|&(g, _)| g) == Some(evicted.gts) {
                    rec.hist.remove(0);
                }
            }
        }
    }

    /// Names the sealed compartment that last wrote the line the failed
    /// request was consuming when it died — the rewind-and-discard
    /// suspect for a planted-pointer (dormant) fault.
    fn fault_suspect(&self, asid: u16) -> Option<SealedCompartment> {
        if !self.cfg.compartments {
            return None;
        }
        let proc = self.procs.get(&asid)?;
        let (vpn, line) = proc.last_load?;
        let rec = proc.pages.get(&vpn)?;
        let bit = 1u128 << line;
        let writer = rec.hist.iter().rev().find(|&&(_, bits)| bits & bit != 0)?.0;
        proc.seals.iter().find(|s| s.gts == writer).copied()
    }

    /// Rewinds exactly one sealed compartment: every line it wrote whose
    /// backup still holds the pre-compartment value is marked for lazy
    /// restore; lines later requests overwrote (or that are already
    /// pending rollback) are left untouched — zero collateral damage.
    fn discard_compartment(&mut self, asid: u16, compartment: u64) -> u64 {
        if !self.cfg.compartments {
            return 0;
        }
        let Some(proc) = self.procs.get_mut(&asid) else { return 0 };
        let Some(pos) = proc.seals.iter().position(|s| s.gts == compartment) else { return 0 };
        proc.seals.remove(pos);
        let mut cycles = 0u64;
        for rec in proc.pages.values_mut() {
            let Some(idx) = rec.hist.iter().position(|&(g, _)| g == compartment) else { continue };
            let (_, bits) = rec.hist.remove(idx);
            // A later writer re-copied the line into the backup page, so
            // the backup no longer holds the pre-compartment value; the
            // same holds for lines already pending rollback. Only lines
            // whose most recent writer was this compartment can be — and
            // are — restored exactly.
            let later: u128 = rec.hist[idx..].iter().map(|&(_, b)| b).fold(0, |a, b| a | b);
            let mut mask = bits & !later & !rec.rollback;
            if rec.lts != compartment {
                mask &= !rec.dirty;
            }
            if mask == 0 {
                continue;
            }
            if rec.rollback == 0 {
                proc.rollback_pending += 1;
            }
            rec.rollback |= mask;
            if rec.lts == compartment {
                rec.dirty &= !mask;
            }
            cycles += u64::from(self.cfg.rollback_mark_cycles);
        }
        self.stats.recovery_cycles += cycles;
        cycles
    }

    /// Materializes pending lazy restores overlapping the range — the
    /// synchronization INDRA applies before I/O leaves the core (§3.2.5).
    fn ensure_clean(
        &mut self,
        asid: u16,
        vaddr: u32,
        len: u32,
        space: &AddressSpace,
        phys: &mut PhysicalMemory,
    ) {
        let Some(proc) = self.procs.get_mut(&asid) else { return };
        if proc.rollback_pending == 0 || len == 0 {
            return;
        }
        // Hostile guests can hand the kernel a buffer ending past the top
        // of the address space; saturate instead of overflowing.
        let first_vpn = vaddr >> PAGE_SHIFT;
        let last_vpn = vaddr.saturating_add(len - 1) >> PAGE_SHIFT;
        for vpn in first_vpn..=last_vpn {
            let Some(rec) = proc.pages.get_mut(&vpn) else { continue };
            if rec.rollback == 0 {
                continue;
            }
            let Ok(paddr) = space.translate(vpn << PAGE_SHIFT, AccessKind::Read) else {
                continue;
            };
            let backup_base = rec.backup_ppn << PAGE_SHIFT;
            let lines = PAGE_SIZE / self.cfg.line_size;
            for line in 0..lines {
                if rec.rollback & (1u128 << line) != 0 {
                    let off = line * self.cfg.line_size;
                    phys.copy(paddr + off, backup_base + off, self.cfg.line_size);
                    self.stats.lazy_restores += 1;
                }
            }
            rec.rollback = 0;
            proc.rollback_pending -= 1;
        }
    }

    fn forget(&mut self, asid: u16) {
        if let Some(proc) = self.procs.get_mut(&asid) {
            for (_, rec) in proc.pages.drain() {
                self.frames.release(rec.backup_ppn);
            }
            proc.rollback_pending = 0;
            proc.last_load = None;
            proc.seals.clear();
        }
    }

    fn forget_page(&mut self, asid: u16, vpn: u32) {
        if let Some(proc) = self.procs.get_mut(&asid) {
            if let Some(rec) = proc.pages.remove(&vpn) {
                if rec.rollback != 0 {
                    proc.rollback_pending -= 1;
                }
                self.frames.release(rec.backup_ppn);
            }
        }
    }

    fn live_backup_frames(&self) -> u32 {
        self.backup_frames_live()
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    fn save_state(&self) -> SchemeState {
        SchemeState::Delta(self.save_state())
    }

    fn load_state(&mut self, state: &SchemeState) {
        match state {
            SchemeState::Delta(s) => self.restore_state(s),
            other => panic!("scheme state mismatch: indra-delta <- {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_sim::Pte;

    const LINE: u32 = 64;

    /// One mapped RW page at vaddr 0x10000 → paddr 0x5000, plus the engine.
    fn rig() -> (DeltaBackupEngine, AddressSpace, PhysicalMemory) {
        let mut engine =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x200));
        engine.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        let phys = PhysicalMemory::new();
        (engine, space, phys)
    }

    /// Simulate the core's store-word path: hook then write.
    fn store(
        e: &mut DeltaBackupEngine,
        phys: &mut PhysicalMemory,
        vaddr: u32,
        paddr: u32,
        value: u32,
    ) {
        e.before_write(7, vaddr, paddr, phys);
        phys.write_u32(paddr, value);
    }

    fn load(e: &mut DeltaBackupEngine, phys: &mut PhysicalMemory, vaddr: u32, paddr: u32) -> u32 {
        e.before_read(7, vaddr, paddr, phys);
        phys.read_u32(paddr)
    }

    #[test]
    fn write_then_rollback_then_read_restores() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xAAAA);
        e.begin_request(7, &mut space, &mut phys);

        store(&mut e, &mut phys, 0x10000, 0x5000, 0xBBBB);
        assert_eq!(phys.read_u32(0x5000), 0xBBBB);

        e.fail_and_rollback(7, &mut space, &mut phys);
        // Active memory still corrupted (rollback is lazy)...
        assert_eq!(phys.read_u32(0x5000), 0xBBBB);
        // ...until the next read pulls the original line back.
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xAAAA);
        assert_eq!(e.stats().lazy_restores, 1);
        assert_eq!(e.pages_pending_rollback(7), 0);
    }

    #[test]
    fn committed_request_is_not_rolled_back() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 1);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 2);
        // Request succeeds:
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10040, 0x5040, 3);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // Line 0 (value 2) committed; only line 1 rolls back.
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 2);
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0);
    }

    #[test]
    fn only_first_write_per_request_copies() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        store(&mut e, &mut phys, 0x10004, 0x5004, 2); // same line
        store(&mut e, &mut phys, 0x10000, 0x5000, 3); // same line again
        assert_eq!(e.stats().line_copies, 1, "one copy per line per request");
        assert_eq!(e.stats().stores_observed, 3);
        store(&mut e, &mut phys, 0x10000 + LINE, 0x5000 + LINE, 4);
        assert_eq!(e.stats().line_copies, 2);
    }

    #[test]
    fn write_after_rollback_preserves_boundary_snapshot() {
        // Fig. 7 action 7: a *write* to a pending-rollback line must not
        // lose the rollback data.
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0x11);
        e.begin_request(7, &mut space, &mut phys); // GTS=1 boundary value 0x11
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x22); // malicious write
        e.fail_and_rollback(7, &mut space, &mut phys);

        // Next request writes the same line before reading it:
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10004, 0x5004, &mut phys); // partial-line store
        phys.write_u32(0x5004, 0x33);
        // The untouched word of the line must show the boundary value, not
        // the malicious one.
        assert_eq!(phys.read_u32(0x5000), 0x11);
        assert_eq!(phys.read_u32(0x5004), 0x33);

        // And if THIS request also fails, rollback restores the boundary
        // snapshot again.
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0x11);
        assert_eq!(load(&mut e, &mut phys, 0x10004, 0x5004), 0);
    }

    #[test]
    fn double_failure_accumulates_rollback() {
        // Fig. 7 actions 5–9: two consecutive malicious requests; damage
        // from both must be revoked.
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x5040, 0xB);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 0xDEAD);
        e.fail_and_rollback(7, &mut space, &mut phys);

        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10040, 0x5040, 0xBEEF); // different line
        e.fail_and_rollback(7, &mut space, &mut phys);

        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xA);
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0xB);
    }

    #[test]
    fn ensure_clean_materializes_for_io() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0x77);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x99);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // DMA wants to read the buffer without going through the core:
        e.ensure_clean(7, 0x10000, 64, &space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0x77);
        assert_eq!(e.pages_pending_rollback(7), 0);
    }

    #[test]
    fn unregistered_asid_is_ignored() {
        let (mut e, _space, mut phys) = rig();
        phys.write_u32(0x9000, 5);
        let c = e.before_write(99, 0x9000, 0x9000, &mut phys);
        assert_eq!(c, 0);
        assert_eq!(e.stats().stores_observed, 0);
    }

    #[test]
    fn backup_frames_allocated_on_demand() {
        let (mut e, mut space, mut phys) = rig();
        assert_eq!(e.backup_frames_live(), 0);
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        assert_eq!(e.backup_frames_live(), 1);
        // Same page in a later request reuses its backup frame.
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10080, 0x5080, 2);
        assert_eq!(e.backup_frames_live(), 1);
    }

    #[test]
    fn gts_advances_per_request() {
        let (mut e, mut space, mut phys) = rig();
        assert_eq!(e.gts(7), Some(0));
        e.begin_request(7, &mut space, &mut phys);
        e.begin_request(7, &mut space, &mut phys);
        assert_eq!(e.gts(7), Some(2));
        assert_eq!(e.gts(99), None);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn bad_line_size_panics() {
        let _ = DeltaBackupEngine::new(
            DeltaConfig { line_size: 48, ..DeltaConfig::default() },
            FrameAllocator::new(0, 1),
        );
    }
}

#[cfg(test)]
mod compartment_tests {
    use super::*;
    use crate::Scheme;
    use indra_sim::Pte;

    fn rig() -> (DeltaBackupEngine, AddressSpace, PhysicalMemory) {
        let mut engine =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x200));
        engine.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        (engine, space, PhysicalMemory::new())
    }

    fn store(
        e: &mut DeltaBackupEngine,
        phys: &mut PhysicalMemory,
        vaddr: u32,
        paddr: u32,
        value: u32,
    ) {
        e.before_write(7, vaddr, paddr, phys);
        phys.write_u32(paddr, value);
    }

    fn load(e: &mut DeltaBackupEngine, phys: &mut PhysicalMemory, vaddr: u32, paddr: u32) -> u32 {
        e.before_read(7, vaddr, paddr, phys);
        phys.read_u32(paddr)
    }

    #[test]
    fn discard_restores_only_the_guilty_compartment() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x5040, 0xB);
        e.begin_request(7, &mut space, &mut phys); // gts 1: the (guilty) planter
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x111);
        e.seal_compartment(7, 101, true);
        e.begin_request(7, &mut space, &mut phys); // gts 2: an innocent bystander
        store(&mut e, &mut phys, 0x10040, 0x5040, 0x222);
        e.seal_compartment(7, 102, false);

        let cycles = e.discard_compartment(7, 1);
        assert!(cycles > 0, "discard touches the planted page");
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xA, "planted line rewound");
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0x222, "bystander untouched");
        assert_eq!(e.sealed_compartments(7).len(), 1, "only the guilty seal is spent");
    }

    #[test]
    fn discard_skips_lines_a_later_request_overwrote() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xA);
        e.begin_request(7, &mut space, &mut phys); // gts 1
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x111);
        e.seal_compartment(7, 101, true);
        e.begin_request(7, &mut space, &mut phys); // gts 2 overwrites the same line
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x222);
        e.seal_compartment(7, 102, false);

        // The backup now holds gts-2's boundary value, not gts-1's: the
        // line must NOT be rewound (that would revert the later commit).
        e.discard_compartment(7, 1);
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0x222);
        // Discarding the *latest* writer is exact, though:
        e.discard_compartment(7, 2);
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0x111);
    }

    #[test]
    fn discard_is_exact_alongside_a_failed_request() {
        let (mut e, mut space, mut phys) = rig();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x5040, 0xB);
        e.begin_request(7, &mut space, &mut phys); // gts 1 writes two lines
        store(&mut e, &mut phys, 0x10000, 0x5000, 0x111);
        store(&mut e, &mut phys, 0x10040, 0x5040, 0x222);
        e.seal_compartment(7, 101, true);
        e.begin_request(7, &mut space, &mut phys); // gts 2 rewrites line 1, then dies
        store(&mut e, &mut phys, 0x10040, 0x5040, 0x333);
        e.fail_and_rollback(7, &mut space, &mut phys);

        e.discard_compartment(7, 1);
        assert_eq!(load(&mut e, &mut phys, 0x10000, 0x5000), 0xA, "untouched line rewound");
        // Line 1's backup belongs to gts 2's boundary (post-gts-1); the
        // pending rollback must win and gts 1's value survive there.
        assert_eq!(load(&mut e, &mut phys, 0x10040, 0x5040), 0x222);
    }

    #[test]
    fn fault_suspect_names_the_writer_of_the_last_load() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys); // gts 1 plants a value
        store(&mut e, &mut phys, 0x10000, 0x5000, 0xBAD);
        e.seal_compartment(7, 55, true);
        e.begin_request(7, &mut space, &mut phys); // gts 2 consumes it and faults
        load(&mut e, &mut phys, 0x10000, 0x5000);
        e.fail_and_rollback(7, &mut space, &mut phys);

        let s = e.fault_suspect(7).expect("planter identified");
        assert_eq!((s.gts, s.request_id, s.malicious), (1, 55, true));
    }

    #[test]
    fn failed_request_is_never_a_suspect() {
        // A wild-write that plants and faults in the same request: its
        // tags die with the rollback, so there is nothing to discard.
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 0xBAD);
        load(&mut e, &mut phys, 0x10000, 0x5000);
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert!(e.fault_suspect(7).is_none());
        assert_eq!(e.compartment_tags(7), 0);
    }

    #[test]
    fn seal_window_evicts_and_prunes_oldest_tags() {
        let cfg = DeltaConfig { compartment_window: 2, ..DeltaConfig::default() };
        let mut e = DeltaBackupEngine::new(cfg, FrameAllocator::new(0x100, 0x200));
        e.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        let mut phys = PhysicalMemory::new();
        for i in 0u32..3 {
            e.begin_request(7, &mut space, &mut phys);
            store(&mut e, &mut phys, 0x10000 + i * 64, 0x5000 + i * 64, i);
            e.seal_compartment(7, u64::from(100 + i), false);
        }
        assert_eq!(e.sealed_compartments(7).len(), 2, "window holds two seals");
        assert_eq!(e.compartment_tags(7), 2, "evicted compartment's tags pruned");
        assert_eq!(e.discard_compartment(7, 1), 0, "evicted compartment undiscardable");
    }

    #[test]
    fn compartments_off_is_inert() {
        let cfg = DeltaConfig { compartments: false, ..DeltaConfig::default() };
        let mut e = DeltaBackupEngine::new(cfg, FrameAllocator::new(0x100, 0x200));
        e.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        let mut phys = PhysicalMemory::new();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        load(&mut e, &mut phys, 0x10000, 0x5000);
        e.seal_compartment(7, 9, false);
        assert!(e.sealed_compartments(7).is_empty());
        assert_eq!(e.compartment_tags(7), 0);
        assert!(e.fault_suspect(7).is_none());
        assert_eq!(e.discard_compartment(7, 1), 0);
        let state = e.save_state();
        assert_eq!(state.procs[0].last_load, None, "no provenance tracked when off");
    }

    #[test]
    fn forget_page_releases_backup_and_pending_count() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 1);
        assert_eq!(e.live_backup_frames(), 1);
        e.forget_page(7, 0x10);
        assert_eq!(e.pages_pending_rollback(7), 0);
        assert_eq!(e.live_backup_frames(), 0);
    }

    #[test]
    fn state_roundtrip_preserves_compartments() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        e.seal_compartment(7, 42, true);
        e.begin_request(7, &mut space, &mut phys);
        load(&mut e, &mut phys, 0x10040, 0x5040);
        let state = e.save_state();
        let mut e2 =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x200));
        e2.restore_state(&state);
        assert_eq!(e2.save_state(), state);
        assert_eq!(e2.sealed_compartments(7), e.sealed_compartments(7));
    }

    #[test]
    fn config_validation_is_typed() {
        let bad = DeltaConfig { line_size: 48, ..DeltaConfig::default() };
        assert_eq!(bad.validate(), Err(DeltaConfigError::BadLineSize(48)));
        assert!(DeltaBackupEngine::try_new(bad, FrameAllocator::new(0, 1)).is_err());
        let tiny = DeltaConfig { line_size: 16, ..DeltaConfig::default() };
        assert_eq!(tiny.validate(), Err(DeltaConfigError::TooManyLines(16)));
        let no_window = DeltaConfig { compartment_window: 0, ..DeltaConfig::default() };
        assert_eq!(no_window.validate(), Err(DeltaConfigError::EmptyWindow));
        assert!(DeltaConfig { compartments: false, compartment_window: 0, ..Default::default() }
            .validate()
            .is_ok());
        assert!(DeltaConfig::default().validate().is_ok());
    }

    #[test]
    fn ensure_clean_saturates_at_the_address_top() {
        let (mut e, mut space, mut phys) = rig();
        e.begin_request(7, &mut space, &mut phys);
        store(&mut e, &mut phys, 0x10000, 0x5000, 1);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // A hostile buffer ending past u32::MAX must not panic.
        e.ensure_clean(7, u32::MAX - 7, 64, &space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 1, "unrelated page still pending");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::Scheme;
    use indra_sim::{AddressSpace, Pte};

    fn rig2() -> (DeltaBackupEngine, AddressSpace, PhysicalMemory) {
        let mut engine =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x110));
        engine.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        space.map(0x11, Pte { ppn: 0x6, read: true, write: true, execute: false });
        (engine, space, PhysicalMemory::new())
    }

    #[test]
    fn last_line_of_page_rolls_back() {
        let (mut e, mut space, mut phys) = rig2();
        let vaddr = 0x10000 + 4096 - 4; // final word of the page
        let paddr = 0x5000 + 4096 - 4;
        phys.write_u32(paddr, 0x0BAD_CAFE);
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, vaddr, paddr, &mut phys);
        phys.write_u32(paddr, 1);
        e.fail_and_rollback(7, &mut space, &mut phys);
        e.before_read(7, vaddr, paddr, &mut phys);
        assert_eq!(phys.read_u32(paddr), 0x0BAD_CAFE);
    }

    #[test]
    fn ensure_clean_partial_range_leaves_other_pages_pending() {
        let (mut e, mut space, mut phys) = rig2();
        phys.write_u32(0x5000, 0xA);
        phys.write_u32(0x6000, 0xB);
        e.begin_request(7, &mut space, &mut phys);
        for (v, p) in [(0x10000u32, 0x5000u32), (0x11000, 0x6000)] {
            e.before_write(7, v, p, &mut phys);
            phys.write_u32(p, 0xFF);
        }
        e.fail_and_rollback(7, &mut space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 2);
        // Clean only the first page.
        e.ensure_clean(7, 0x10000, 64, &space, &mut phys);
        assert_eq!(e.pages_pending_rollback(7), 1);
        assert_eq!(phys.read_u32(0x5000), 0xA, "cleaned page restored");
        assert_eq!(phys.read_u32(0x6000), 0xFF, "other page still lazy");
    }

    #[test]
    fn forget_releases_every_backup_frame() {
        let (mut e, mut space, mut phys) = rig2();
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        e.before_write(7, 0x11000, 0x6000, &mut phys);
        assert_eq!(e.live_backup_frames(), 2);
        e.forget(7);
        assert_eq!(e.live_backup_frames(), 0);
        assert_eq!(e.pages_pending_rollback(7), 0);
        // The engine keeps working after a forget.
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        assert_eq!(e.live_backup_frames(), 1);
    }

    #[test]
    fn pool_exhaustion_degrades_gracefully() {
        // A one-frame pool: the second page cannot be backed up, but the
        // hook must not panic and the first page still rolls back.
        let mut e =
            DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x100, 0x101));
        e.register(7);
        let mut space = AddressSpace::new(7);
        space.map(0x10, Pte { ppn: 0x5, read: true, write: true, execute: false });
        space.map(0x11, Pte { ppn: 0x6, read: true, write: true, execute: false });
        let mut phys = PhysicalMemory::new();
        phys.write_u32(0x5000, 0xAA);
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        phys.write_u32(0x5000, 1);
        let cycles = e.before_write(7, 0x11000, 0x6000, &mut phys);
        assert_eq!(cycles, 0, "unbackable write passes through");
        phys.write_u32(0x6000, 2);
        e.fail_and_rollback(7, &mut space, &mut phys);
        e.ensure_clean(7, 0x10000, 8192, &space, &mut phys);
        assert_eq!(phys.read_u32(0x5000), 0xAA, "backed page recovered");
        assert_eq!(phys.read_u32(0x6000), 2, "unbackable page keeps its value");
    }

    #[test]
    fn read_of_never_backed_page_is_free() {
        let (mut e, mut space, mut phys) = rig2();
        e.begin_request(7, &mut space, &mut phys);
        e.before_write(7, 0x10000, 0x5000, &mut phys);
        e.fail_and_rollback(7, &mut space, &mut phys);
        // Reads on the *other* page pay nothing even with rollback pending.
        assert_eq!(e.before_read(7, 0x11000, 0x6000, &mut phys), 0);
    }
}
