//! Minimal JSON emission for report types.
//!
//! The sanctioned path would be `serde` derives, but this tree must
//! build with zero external crates (the build environment is fully
//! offline), so the report types hand-roll their serialization through
//! this tiny writer instead. The grammar emitted is plain RFC 8259 JSON;
//! field order is fixed, so equal reports serialize to identical bytes —
//! the fleet determinism tests compare these strings directly.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// An incremental `{…}` builder with fixed field order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, name: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "{}:", json_string(name));
        &mut self.buf
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut JsonObject {
        let _ = write!(self.key(name), "{v}");
        self
    }

    /// Adds a float field.
    pub fn f64(&mut self, name: &str, v: f64) -> &mut JsonObject {
        let s = json_f64(v);
        self.key(name).push_str(&s);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, v: bool) -> &mut JsonObject {
        self.key(name).push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, v: &str) -> &mut JsonObject {
        let s = json_string(v);
        self.key(name).push_str(&s);
        self
    }

    /// Adds a field whose value is already-rendered JSON (an object, an
    /// array, or `null`).
    pub fn raw(&mut self, name: &str, v: &str) -> &mut JsonObject {
        self.key(name).push_str(v);
        self
    }

    /// Closes the object and returns its text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders an iterator of already-rendered JSON values as a `[…]` array.
#[must_use]
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_builds() {
        let json = JsonObject::new()
            .u64("n", 3)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .str("name", "a\"b\\c\nd")
            .raw("xs", &json_array([String::from("1"), String::from("2")]))
            .finish();
        assert_eq!(json, r#"{"n":3,"ratio":0.5,"ok":true,"name":"a\"b\\c\nd","xs":[1,2]}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }

    /// Locks the RFC 8259 §7 contract: `"` and `\` get two-character
    /// escapes, every control character U+0000–U+001F is escaped (named
    /// short forms for \n \r \t, `\uXXXX` otherwise), and *everything*
    /// else — including DEL, astral-plane characters and multi-byte
    /// UTF-8 — passes through verbatim. Checkpoint progress and audit
    /// strings end up in report JSON, so this must never regress.
    #[test]
    fn escaping_covers_every_mandatory_code_point() {
        assert_eq!(json_string("\""), "\"\\\"\"");
        assert_eq!(json_string("\\"), "\"\\\\\"");
        assert_eq!(json_string("\n"), "\"\\n\"");
        assert_eq!(json_string("\r"), "\"\\r\"");
        assert_eq!(json_string("\t"), "\"\\t\"");
        for cp in 0u32..0x20 {
            let c = char::from_u32(cp).unwrap();
            let rendered = json_string(&c.to_string());
            let body = &rendered[1..rendered.len() - 1];
            assert!(body.starts_with('\\'), "control U+{cp:04X} must be escaped, got {body:?}");
            match c {
                '\n' | '\r' | '\t' => assert_eq!(body.len(), 2),
                _ => assert_eq!(body, format!("\\u{cp:04x}"), "U+{cp:04X}"),
            }
        }
        // Not mandatory to escape; must pass through untouched.
        assert_eq!(json_string("\u{7f}"), "\"\u{7f}\"");
        assert_eq!(json_string("héllo 世界 🦀"), "\"héllo 世界 🦀\"");
        assert_eq!(json_string("/"), "\"/\"", "solidus needs no escape");
    }
}
