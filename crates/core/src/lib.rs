#![warn(missing_docs)]
//! # indra-core — the INDRA framework
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`Monitor`] — the resurrector's behavior-based inspection software
//!   (call/return pairing, code-origin checks, control-transfer policy —
//!   §3.2, Table 2), with a concurrent-execution cycle model.
//! * [`DeltaBackupEngine`] — the delta-page backup/rollback-on-demand
//!   engine (§3.3.1, Figs. 3–7): GTS/LTS timestamps, dirty & rollback
//!   bitvectors, lazy line restore, zero-copy rollback.
//! * [`VirtualCheckpoint`], [`SoftwareCheckpoint`], [`UndoLog`] — the
//!   Table 3 baselines INDRA is measured against.
//! * [`HybridController`] + macro checkpoints — the dual recovery scheme
//!   of Fig. 8 (micro per-request rollback, macro application checkpoint
//!   for dormant attacks).
//! * [`IndraSystem`] — the integrated machine + OS + monitor + scheme
//!   run loop used by every example and benchmark.
//!
//! ```no_run
//! use indra_core::{IndraSystem, SystemConfig};
//! use indra_isa::assemble;
//!
//! let mut sys = IndraSystem::new(SystemConfig::default());
//! let img = assemble("svc", "main:\n halt\n").unwrap();
//! sys.deploy(&img).unwrap();
//! sys.push_request(b"GET /".to_vec(), false);
//! sys.run(1_000_000);
//! println!("served {} requests", sys.report().served);
//! ```

mod availability;
mod baselines;
mod delta;
pub mod json;
mod monitor;
mod recovery;
mod scheme;
mod system;

pub use availability::AvailabilityReport;
pub use baselines::{
    PageCkptProcState, PageCkptState, SoftwareCheckpoint, UndoEntryState, UndoLog, UndoLogState,
    VirtualCheckpoint, LOG_APPEND_CYCLES, LOG_UNDO_CYCLES, PAGE_COPY_CYCLES, REMAP_CYCLES,
    SW_TRAP_CYCLES, VC_TRAP_CYCLES,
};
pub use delta::{
    DeltaBackupEngine, DeltaConfig, DeltaConfigError, DeltaPageState, DeltaProcState, DeltaState,
    SealedCompartment,
};
pub use monitor::{
    AppMetadata, InspectionPolicy, Monitor, MonitorAppState, MonitorConfig, MonitorState,
    MonitorStats, ShadowFrameState, SyscallSitePolicy, Violation, ViolationKind,
};
pub use recovery::{
    restore_macro_checkpoint, take_macro_checkpoint, HybridConfig, HybridController,
    HybridControllerState, HybridStats, MacroCheckpoint, MacroCheckpointState, MacroStateError,
    RecoveryLevel,
};
pub use scheme::{NoBackup, Scheme, SchemeState, SchemeStats};
pub use system::{
    Detection, FailureCause, InFlightState, IndraSystem, PolicyStats, RequestSample, RunReport,
    RunState, SchemeKind, SystemConfig, SystemState,
};
