//! The resurrector's security monitor (§3.2, Table 2).
//!
//! Software running on the high-privilege core, consuming the hardware
//! trace stream and performing three behavior-based inspections:
//!
//! 1. **Function call/return pairing** — every return must target the
//!    instruction after its matching call (a shadow stack, with
//!    setjmp/longjmp handled by unwinding to the saved frame). Catches
//!    stack smashing.
//! 2. **Code origin** — every line entering the IL1 must come from a page
//!    the monitor recorded as executable when the binary was loaded (or a
//!    declared dynamic-code region). Catches injected code, regardless of
//!    what a compromised kernel did to PTE bits — the monitor's copy of
//!    the attributes is in resurrector memory, unreachable from the
//!    resurrectees.
//! 3. **Control-transfer policy** — computed jumps and indirect calls
//!    must land on targets the compiler declared (function entries,
//!    jump-table cases, export lists). Catches function-pointer and
//!    vtable overwrites.
//!
//! Because all three are *behavior*-based, a flagged event is a real
//! anomaly: the paper argues INDRA "rarely has false positives" (§3.2.4).
//! False negatives remain possible (e.g. pure data corruption), which is
//! why the hybrid recovery scheme exists.
//!
//! The monitor also models its own **time**: each event costs resurrector
//! cycles, and [`Monitor::clock`] advances as
//! `max(clock, event.cycle) + cost` — the concurrency model that lets
//! the evaluation compute FIFO backpressure (Fig. 12) and monitoring
//! overhead (Fig. 11).

use std::collections::HashMap;

use indra_mem::{PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{StampedEvent, TraceEvent};

// The metadata type itself lives with the static analyzer: the loader
// either copies it from the image's declarations (`from_image`) or
// derives it by intersecting declarations with what analysis proves
// (`indra_analyze::tighten`). Re-exported here so monitor-facing code
// keeps its historical `indra_core::AppMetadata` path.
pub use indra_analyze::AppMetadata;

/// Per-event verification costs in resurrector cycles. The defaults model
/// the tens-of-instructions software checks of §3.2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Verify call/return pairing.
    pub check_call_return: bool,
    /// Verify code origin at IL1 fill.
    pub check_code_origin: bool,
    /// Verify indirect control-transfer targets.
    pub check_control_transfer: bool,
    /// Cost of processing a call event (push).
    pub cost_call: u32,
    /// Cost of processing a return event (pop + compare).
    pub cost_return: u32,
    /// Cost of a code-origin check (page-attribute lookup).
    pub cost_code_origin: u32,
    /// Cost of an indirect-target check (set lookup).
    pub cost_indirect: u32,
    /// Cost of a syscall synchronization event.
    pub cost_sync: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            check_call_return: true,
            check_code_origin: true,
            check_control_transfer: true,
            cost_call: 18,
            cost_return: 20,
            cost_code_origin: 45,
            cost_indirect: 50,
            cost_sync: 12,
        }
    }
}

/// What the monitor concluded was wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A return did not go back to the instruction after its call.
    ReturnMismatch,
    /// A return with an empty shadow stack.
    ShadowStackUnderflow,
    /// Code fetched from a page never recorded as executable.
    CodeInjection,
    /// An indirect call/jump to a target outside the declared sets.
    InvalidIndirectTarget,
    /// A site-defined [`InspectionPolicy`] fired (the paper's
    /// upgradability story: the monitor is software, so new detection
    /// techniques deploy without silicon changes, §3.2.4/§6).
    Custom,
}

/// A site-pluggable inspection run by the resurrector after the built-in
/// checks pass. The paper stresses that INDRA's monitoring "is
/// implemented in software rather than in hardware logic, thereby
/// providing better flexibility and upgradability" — this trait is that
/// extension point.
pub trait InspectionPolicy: Send {
    /// Policy name (diagnostics).
    fn name(&self) -> &str;

    /// Resurrector cycles one invocation costs.
    fn cost(&self) -> u32 {
        15
    }

    /// Inspects one event against the app's metadata; `Some(addr)` raises
    /// a [`ViolationKind::Custom`] violation anchored at that address.
    fn inspect(&mut self, event: &StampedEvent, meta: &AppMetadata) -> Option<u32>;
}

/// A shipped example policy: system calls may only be issued from a
/// declared set of call sites (real services enter the kernel through a
/// handful of libc stubs; a syscall from anywhere else — e.g. injected
/// code that slipped past other checks — is hostile).
#[derive(Debug, Clone, Default)]
pub struct SyscallSitePolicy {
    allowed: std::collections::BTreeSet<u32>,
}

impl SyscallSitePolicy {
    /// Creates the policy with its whitelist of syscall PCs.
    #[must_use]
    pub fn new(allowed: impl IntoIterator<Item = u32>) -> SyscallSitePolicy {
        SyscallSitePolicy { allowed: allowed.into_iter().collect() }
    }
}

impl InspectionPolicy for SyscallSitePolicy {
    fn name(&self) -> &str {
        "syscall-site"
    }

    fn inspect(&mut self, event: &StampedEvent, _meta: &AppMetadata) -> Option<u32> {
        match event.event {
            TraceEvent::SyscallSync { pc, .. } if !self.allowed.contains(&pc) => Some(pc),
            _ => None,
        }
    }
}

/// A detected violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Classification.
    pub kind: ViolationKind,
    /// Monitor-assigned sequence number.
    pub seq: u64,
    /// PC of the offending instruction (0 for code fills).
    pub pc: u32,
    /// The offending target/page address.
    pub addr: u32,
    /// The address space it occurred in.
    pub asid: u16,
}

/// Monitor throughput statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events consumed.
    pub events: u64,
    /// Call/return checks performed.
    pub call_return_checks: u64,
    /// Code-origin checks performed.
    pub code_origin_checks: u64,
    /// Indirect-target checks performed.
    pub indirect_checks: u64,
    /// Violations raised.
    pub violations: u64,
    /// Cycles the monitor spent verifying (busy time).
    pub busy_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    return_addr: u32,
    sp: u32,
}

#[derive(Debug, Default)]
struct AppState {
    meta: AppMetadata,
    shadow: Vec<Frame>,
    /// Shadow stack snapshot from the last request boundary.
    saved_shadow: Vec<Frame>,
}

/// The monitor runtime.
pub struct Monitor {
    cfg: MonitorConfig,
    apps: HashMap<u16, AppState>,
    policies: Vec<Box<dyn InspectionPolicy>>,
    clock: u64,
    seq: u64,
    stats: MonitorStats,
    violations: Vec<Violation>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("apps", &self.apps.len())
            .field("policies", &self.policies.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Monitor {
    /// Creates a monitor with the given policy configuration.
    #[must_use]
    pub fn new(cfg: MonitorConfig) -> Monitor {
        Monitor {
            cfg,
            apps: HashMap::new(),
            policies: Vec::new(),
            clock: 0,
            seq: 0,
            stats: MonitorStats::default(),
            violations: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    /// Registers (or replaces) the metadata for a service address space.
    pub fn register_app(&mut self, asid: u16, meta: AppMetadata) {
        self.apps.insert(asid, AppState { meta, ..AppState::default() });
    }

    /// Installs a site-defined [`InspectionPolicy`], run (in installation
    /// order) on every event of every monitored service after the
    /// built-in inspections pass.
    pub fn add_policy(&mut self, policy: Box<dyn InspectionPolicy>) {
        self.policies.push(policy);
    }

    /// Records a dynamically declared executable page (JIT registration,
    /// §3.2.2: "the code must be explicitly declared").
    pub fn declare_dynamic_region(&mut self, asid: u16, base: u32, size: u32) {
        if let Some(app) = self.apps.get_mut(&asid) {
            app.meta.dynamic_regions.push((base, size));
        }
    }

    /// Registers additional legitimate longjmp targets (the application
    /// declares its setjmp sites when it starts, §3.2.1).
    pub fn add_longjmp_targets(&mut self, asid: u16, targets: &[u32]) {
        if let Some(app) = self.apps.get_mut(&asid) {
            app.meta.longjmp_targets.extend(targets.iter().copied());
        }
    }

    /// The resurrector's cycle clock.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// All violations seen so far (the audit trail).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Resets throughput statistics (not app state or the audit trail).
    pub fn reset_stats(&mut self) {
        self.stats = MonitorStats::default();
    }

    /// Captures the monitor's complete mutable state: every registered
    /// app's metadata and shadow stacks, the clock, the violation audit
    /// trail and statistics. Installed [`InspectionPolicy`] objects are
    /// *not* captured (they are part of deployment configuration, rebuilt
    /// by re-deploying before restore).
    #[must_use]
    pub fn save_state(&self) -> MonitorState {
        let frame = |f: &Frame| ShadowFrameState { return_addr: f.return_addr, sp: f.sp };
        let mut apps: Vec<MonitorAppState> = self
            .apps
            .iter()
            .map(|(asid, a)| MonitorAppState {
                asid: *asid,
                meta: a.meta.clone(),
                shadow: a.shadow.iter().map(frame).collect(),
                saved_shadow: a.saved_shadow.iter().map(frame).collect(),
            })
            .collect();
        apps.sort_unstable_by_key(|a| a.asid);
        MonitorState {
            apps,
            clock: self.clock,
            seq: self.seq,
            stats: self.stats,
            violations: self.violations.clone(),
        }
    }

    /// Restores state captured by [`Monitor::save_state`], replacing all
    /// registered apps. The configuration and installed policies are kept.
    pub fn restore_state(&mut self, state: &MonitorState) {
        let frame = |f: &ShadowFrameState| Frame { return_addr: f.return_addr, sp: f.sp };
        self.apps = state
            .apps
            .iter()
            .map(|a| {
                (
                    a.asid,
                    AppState {
                        meta: a.meta.clone(),
                        shadow: a.shadow.iter().map(frame).collect(),
                        saved_shadow: a.saved_shadow.iter().map(frame).collect(),
                    },
                )
            })
            .collect();
        self.clock = state.clock;
        self.seq = state.seq;
        self.stats = state.stats;
        self.violations.clone_from(&state.violations);
    }

    /// Snapshot the shadow stack at a request boundary, so a rollback can
    /// restore monitoring state along with the application.
    pub fn snapshot_shadow(&mut self, asid: u16) {
        if let Some(app) = self.apps.get_mut(&asid) {
            app.saved_shadow = app.shadow.clone();
        }
    }

    /// Restores the shadow stack to the last boundary snapshot.
    pub fn rollback_shadow(&mut self, asid: u16) {
        if let Some(app) = self.apps.get_mut(&asid) {
            app.shadow = app.saved_shadow.clone();
        }
    }

    fn raise(&mut self, kind: ViolationKind, pc: u32, addr: u32, asid: u16) -> Violation {
        self.seq += 1;
        let v = Violation { kind, seq: self.seq, pc, addr, asid };
        self.stats.violations += 1;
        self.violations.push(v);
        v
    }

    fn charge(&mut self, produced_at: u64, cost: u32) {
        self.clock = self.clock.max(produced_at) + u64::from(cost);
        self.stats.busy_cycles += u64::from(cost);
    }

    fn cost_of(&self, ev: &TraceEvent) -> u32 {
        match ev {
            TraceEvent::Call { .. } => self.cfg.cost_call,
            TraceEvent::IndirectCall { .. } => self.cfg.cost_indirect,
            TraceEvent::Return { .. } => self.cfg.cost_return,
            TraceEvent::IndirectJump { .. } => self.cfg.cost_indirect,
            TraceEvent::CodeFill { .. } => self.cfg.cost_code_origin,
            TraceEvent::SyscallSync { .. } => self.cfg.cost_sync,
        }
    }

    /// When the monitor would *finish* processing `ev` if it were handed
    /// over now — `max(clock, produced_at) + cost`. Used by the machine
    /// loop to model the monitor draining concurrently: events whose
    /// completion lies in the past have, in wall-clock terms, already
    /// left the FIFO.
    #[must_use]
    pub fn completion_preview(&self, ev: &StampedEvent) -> u64 {
        self.clock.max(ev.cycle) + u64::from(self.cost_of(&ev.event))
    }

    /// Processes one trace event, advancing the monitor clock.
    ///
    /// Returns a violation when the event fails inspection; the caller
    /// (the INDRA control loop) stalls the resurrectee and starts
    /// recovery.
    pub fn process(&mut self, ev: StampedEvent) -> Option<Violation> {
        let builtin = self.process_builtin(ev);
        if builtin.is_some() {
            return builtin;
        }
        // Custom policies see every event the built-ins passed.
        if !self.policies.is_empty() && self.apps.contains_key(&ev.asid) {
            let mut hit: Option<(u32, u32)> = None;
            for policy in &mut self.policies {
                let meta = &self.apps[&ev.asid].meta;
                let cost = policy.cost();
                if let Some(addr) = policy.inspect(&ev, meta) {
                    hit = Some((addr, cost));
                    break;
                }
            }
            if let Some((addr, cost)) = hit {
                self.charge(ev.cycle, cost);
                let pc = match ev.event {
                    TraceEvent::Call { pc, .. }
                    | TraceEvent::IndirectCall { pc, .. }
                    | TraceEvent::Return { pc, .. }
                    | TraceEvent::IndirectJump { pc, .. }
                    | TraceEvent::CodeFill { pc, .. }
                    | TraceEvent::SyscallSync { pc, .. } => pc,
                };
                return Some(self.raise(ViolationKind::Custom, pc, addr, ev.asid));
            }
        }
        None
    }

    fn process_builtin(&mut self, ev: StampedEvent) -> Option<Violation> {
        self.stats.events += 1;
        let cfg = self.cfg;
        // Unknown address spaces are not monitored (the paper pairs each
        // trace entry with CR3 and skips processes without metadata).
        if !self.apps.contains_key(&ev.asid) {
            self.charge(ev.cycle, cfg.cost_sync);
            return None;
        }

        match ev.event {
            TraceEvent::Call { target, return_addr, sp, .. }
            | TraceEvent::IndirectCall { target, return_addr, sp, .. } => {
                let indirect = matches!(ev.event, TraceEvent::IndirectCall { .. });
                let cost = if indirect { cfg.cost_indirect } else { cfg.cost_call };
                self.charge(ev.cycle, cost);
                if indirect && cfg.check_control_transfer {
                    self.stats.indirect_checks += 1;
                    let app = &self.apps[&ev.asid];
                    let ok = app.meta.indirect_targets.contains(&target)
                        || app.meta.in_dynamic_region(target);
                    if !ok {
                        let pc = match ev.event {
                            TraceEvent::IndirectCall { pc, .. } => pc,
                            _ => 0,
                        };
                        return Some(self.raise(
                            ViolationKind::InvalidIndirectTarget,
                            pc,
                            target,
                            ev.asid,
                        ));
                    }
                }
                if cfg.check_call_return {
                    self.stats.call_return_checks += 1;
                    let app = self.apps.get_mut(&ev.asid).expect("checked");
                    app.shadow.push(Frame { return_addr, sp });
                }
                None
            }
            TraceEvent::Return { pc, target, sp } => {
                self.charge(ev.cycle, cfg.cost_return);
                if !cfg.check_call_return {
                    return None;
                }
                self.stats.call_return_checks += 1;
                let app = self.apps.get_mut(&ev.asid).expect("checked");
                match app.shadow.pop() {
                    Some(frame) if frame.return_addr == target => None,
                    Some(_) => Some(self.raise(ViolationKind::ReturnMismatch, pc, target, ev.asid)),
                    None => {
                        let _ = sp;
                        Some(self.raise(ViolationKind::ShadowStackUnderflow, pc, target, ev.asid))
                    }
                }
            }
            TraceEvent::IndirectJump { pc, target } => {
                self.charge(ev.cycle, cfg.cost_indirect);
                if !cfg.check_control_transfer {
                    return None;
                }
                self.stats.indirect_checks += 1;
                let app = self.apps.get_mut(&ev.asid).expect("checked");
                if app.meta.longjmp_targets.contains(&target) {
                    // setjmp/longjmp: legal, but the shadow stack must be
                    // unwound to the setjmp frame (§3.2.1). We approximate
                    // the env's stack depth with the frame whose sp is
                    // at or above the jump target context.
                    while let Some(top) = app.shadow.last() {
                        if top.return_addr == target {
                            break;
                        }
                        app.shadow.pop();
                    }
                    return None;
                }
                let ok = app.meta.indirect_targets.contains(&target)
                    || app.meta.in_dynamic_region(target);
                if ok {
                    None
                } else {
                    Some(self.raise(ViolationKind::InvalidIndirectTarget, pc, target, ev.asid))
                }
            }
            TraceEvent::CodeFill { page_vaddr, pc } => {
                self.charge(ev.cycle, cfg.cost_code_origin);
                if !cfg.check_code_origin {
                    return None;
                }
                self.stats.code_origin_checks += 1;
                let app = &self.apps[&ev.asid];
                let vpn = page_vaddr >> PAGE_SHIFT;
                let ok = app.meta.executable_pages.contains(&vpn)
                    || app.meta.in_dynamic_region(page_vaddr)
                    || app.meta.in_dynamic_region(page_vaddr + PAGE_SIZE - 1);
                if ok {
                    None
                } else {
                    Some(self.raise(ViolationKind::CodeInjection, pc, page_vaddr, ev.asid))
                }
            }
            TraceEvent::SyscallSync { .. } => {
                self.charge(ev.cycle, cfg.cost_sync);
                None
            }
        }
    }
}

/// One saved shadow-stack frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowFrameState {
    /// Expected return target.
    pub return_addr: u32,
    /// Stack pointer at the call.
    pub sp: u32,
}

/// One registered app's saved monitoring state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorAppState {
    /// The app's address-space tag.
    pub asid: u16,
    /// Registered metadata (including dynamically declared regions).
    pub meta: AppMetadata,
    /// Live shadow stack, bottom first.
    pub shadow: Vec<ShadowFrameState>,
    /// Shadow-stack snapshot from the last request boundary.
    pub saved_shadow: Vec<ShadowFrameState>,
}

/// Complete mutable state of a [`Monitor`], captured by
/// [`Monitor::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorState {
    /// Registered apps, sorted by ASID.
    pub apps: Vec<MonitorAppState>,
    /// The resurrector's cycle clock.
    pub clock: u64,
    /// Violation sequence counter.
    pub seq: u64,
    /// Accumulated statistics.
    pub stats: MonitorStats,
    /// The violation audit trail.
    pub violations: Vec<Violation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> AppMetadata {
        AppMetadata {
            executable_pages: [0x400, 0x401].into_iter().collect(),
            indirect_targets: [0x40_0100, 0x40_0200].into_iter().collect(),
            longjmp_targets: [0x40_0300].into_iter().collect(),
            dynamic_regions: vec![(0x50_0000, 0x1000)],
        }
    }

    fn mon() -> Monitor {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register_app(1, meta());
        m
    }

    fn ev(event: TraceEvent, cycle: u64) -> StampedEvent {
        StampedEvent { event, cycle, asid: 1 }
    }

    #[test]
    fn balanced_call_return_passes() {
        let mut m = mon();
        assert!(m
            .process(ev(
                TraceEvent::Call {
                    pc: 0x40_0000,
                    target: 0x40_0100,
                    return_addr: 0x40_0004,
                    sp: 0x7000
                },
                10
            ))
            .is_none());
        assert!(m
            .process(ev(TraceEvent::Return { pc: 0x40_0104, target: 0x40_0004, sp: 0x7000 }, 20))
            .is_none());
        assert_eq!(m.stats().violations, 0);
        assert_eq!(m.stats().call_return_checks, 2);
    }

    #[test]
    fn smashed_return_detected() {
        let mut m = mon();
        m.process(ev(
            TraceEvent::Call {
                pc: 0x40_0000,
                target: 0x40_0100,
                return_addr: 0x40_0004,
                sp: 0x7000,
            },
            10,
        ));
        let v = m
            .process(ev(TraceEvent::Return { pc: 0x40_0104, target: 0xDEAD_0000, sp: 0x7000 }, 20))
            .expect("must detect");
        assert_eq!(v.kind, ViolationKind::ReturnMismatch);
        assert_eq!(v.addr, 0xDEAD_0000);
    }

    #[test]
    fn underflow_detected() {
        let mut m = mon();
        let v = m
            .process(ev(TraceEvent::Return { pc: 0x40_0104, target: 0x40_0004, sp: 0 }, 5))
            .expect("must detect");
        assert_eq!(v.kind, ViolationKind::ShadowStackUnderflow);
    }

    #[test]
    fn code_injection_detected() {
        let mut m = mon();
        // 0x1000_0000 is a data page — never recorded executable.
        let v = m
            .process(ev(TraceEvent::CodeFill { page_vaddr: 0x1000_0000, pc: 0x1000_0010 }, 5))
            .expect("must detect");
        assert_eq!(v.kind, ViolationKind::CodeInjection);
        // Legit code page passes.
        assert!(m
            .process(ev(TraceEvent::CodeFill { page_vaddr: 0x40_0000, pc: 0x40_0000 }, 6))
            .is_none());
        // Declared dynamic region passes.
        assert!(m
            .process(ev(TraceEvent::CodeFill { page_vaddr: 0x50_0000, pc: 0x50_0000 }, 7))
            .is_none());
    }

    #[test]
    fn indirect_target_policy() {
        let mut m = mon();
        assert!(m
            .process(ev(
                TraceEvent::IndirectCall {
                    pc: 0x40_0000,
                    target: 0x40_0200,
                    return_addr: 4,
                    sp: 0
                },
                1
            ))
            .is_none());
        let v = m
            .process(ev(
                TraceEvent::IndirectCall {
                    pc: 0x40_0000,
                    target: 0x40_0444,
                    return_addr: 4,
                    sp: 0,
                },
                2,
            ))
            .expect("hijacked fn pointer must be detected");
        assert_eq!(v.kind, ViolationKind::InvalidIndirectTarget);
        // Indirect jump into dynamic region is fine.
        assert!(m
            .process(ev(TraceEvent::IndirectJump { pc: 0x40_0000, target: 0x50_0800 }, 3))
            .is_none());
    }

    #[test]
    fn longjmp_unwinds_shadow_stack() {
        let mut m = mon();
        // call chain: A -> B -> C, where A's frame will be the longjmp home.
        m.process(ev(
            TraceEvent::Call {
                pc: 0x40_0000,
                target: 0x40_0100,
                return_addr: 0x40_0300,
                sp: 0x7000,
            },
            1,
        ));
        m.process(ev(
            TraceEvent::Call {
                pc: 0x40_0100,
                target: 0x40_0200,
                return_addr: 0x40_0104,
                sp: 0x6FF0,
            },
            2,
        ));
        // longjmp back to the registered target:
        assert!(m
            .process(ev(TraceEvent::IndirectJump { pc: 0x40_0208, target: 0x40_0300 }, 3))
            .is_none());
        // The unwound stack accepts the outer return:
        assert!(m
            .process(ev(TraceEvent::Return { pc: 0x40_0300, target: 0x40_0300, sp: 0x7000 }, 4))
            .is_none());
    }

    #[test]
    fn rollback_restores_shadow_stack() {
        let mut m = mon();
        m.snapshot_shadow(1);
        m.process(ev(TraceEvent::Call { pc: 0, target: 0x40_0100, return_addr: 4, sp: 0x7000 }, 1));
        // Rollback discards the in-flight frame:
        m.rollback_shadow(1);
        let v = m.process(ev(TraceEvent::Return { pc: 8, target: 4, sp: 0x7000 }, 2));
        assert!(matches!(v, Some(Violation { kind: ViolationKind::ShadowStackUnderflow, .. })));
    }

    #[test]
    fn clock_advances_with_event_time_and_cost() {
        let mut m = mon();
        m.process(ev(TraceEvent::SyscallSync { pc: 0, code: 1 }, 100));
        assert_eq!(m.clock(), 100 + u64::from(m.config().cost_sync));
        // An event produced earlier than the clock does not rewind it.
        m.process(ev(TraceEvent::SyscallSync { pc: 0, code: 1 }, 50));
        assert_eq!(m.clock(), 100 + 2 * u64::from(m.config().cost_sync));
    }

    #[test]
    fn disabled_checks_pass_everything() {
        let mut m = Monitor::new(MonitorConfig {
            check_call_return: false,
            check_code_origin: false,
            check_control_transfer: false,
            ..MonitorConfig::default()
        });
        m.register_app(1, meta());
        assert!(m
            .process(ev(TraceEvent::CodeFill { page_vaddr: 0x1000_0000, pc: 0 }, 1))
            .is_none());
        assert!(m.process(ev(TraceEvent::Return { pc: 0, target: 0xBAD, sp: 0 }, 2)).is_none());
        assert!(m.process(ev(TraceEvent::IndirectJump { pc: 0, target: 0xBAD }, 3)).is_none());
    }

    #[test]
    fn unknown_asid_unmonitored() {
        let mut m = mon();
        let foreign = StampedEvent {
            event: TraceEvent::Return { pc: 0, target: 0xBAD, sp: 0 },
            cycle: 1,
            asid: 99,
        };
        assert!(m.process(foreign).is_none());
    }

    #[test]
    fn metadata_from_image() {
        let img = indra_isa::assemble("t", "main:\n call f\n halt\nf:\n ret\n.data\nd: .word 1\n")
            .unwrap();
        let meta = AppMetadata::from_image(&img);
        let text_vpn = indra_isa::TEXT_BASE >> PAGE_SHIFT;
        assert!(meta.executable_pages.contains(&text_vpn));
        let data_vpn = indra_isa::DATA_BASE >> PAGE_SHIFT;
        assert!(!meta.executable_pages.contains(&data_vpn));
        assert!(meta.indirect_targets.contains(&img.addr_of("f").unwrap()));
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    #[test]
    fn syscall_site_policy_flags_unknown_sites() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register_app(1, AppMetadata::default());
        m.add_policy(Box::new(SyscallSitePolicy::new([0x40_0010])));

        let ok = StampedEvent {
            event: TraceEvent::SyscallSync { pc: 0x40_0010, code: 1 },
            cycle: 5,
            asid: 1,
        };
        assert!(m.process(ok).is_none(), "whitelisted site passes");

        let bad = StampedEvent {
            event: TraceEvent::SyscallSync { pc: 0x50_0000, code: 1 },
            cycle: 9,
            asid: 1,
        };
        let v = m.process(bad).expect("rogue syscall site flagged");
        assert_eq!(v.kind, ViolationKind::Custom);
        assert_eq!(v.addr, 0x50_0000);
    }

    #[test]
    fn policies_run_after_builtin_checks() {
        // A policy that would flag everything never sees an event the
        // built-in inspection already rejected.
        struct FlagAll;
        impl InspectionPolicy for FlagAll {
            fn name(&self) -> &str {
                "flag-all"
            }
            fn inspect(&mut self, _: &StampedEvent, _: &AppMetadata) -> Option<u32> {
                Some(0xDEAD)
            }
        }
        let mut m = Monitor::new(MonitorConfig::default());
        m.register_app(1, AppMetadata::default());
        m.add_policy(Box::new(FlagAll));
        let smashed = StampedEvent {
            event: TraceEvent::Return { pc: 4, target: 0xBAD0, sp: 0 },
            cycle: 1,
            asid: 1,
        };
        let v = m.process(smashed).expect("violation");
        assert_eq!(v.kind, ViolationKind::ShadowStackUnderflow, "built-in wins");
        // And a passing event reaches the policy:
        let benign =
            StampedEvent { event: TraceEvent::SyscallSync { pc: 0, code: 2 }, cycle: 2, asid: 1 };
        assert_eq!(m.process(benign).expect("policy fires").kind, ViolationKind::Custom);
    }

    #[test]
    fn policies_do_not_inspect_unmonitored_asids() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.add_policy(Box::new(SyscallSitePolicy::new([])));
        let foreign = StampedEvent {
            event: TraceEvent::SyscallSync { pc: 0x123, code: 1 },
            cycle: 1,
            asid: 99,
        };
        assert!(m.process(foreign).is_none());
    }
}
