//! Hybrid dual recovery (§3.3.2, Fig. 8).
//!
//! INDRA's micro (per-request) rollback assumes the damage came from the
//! request just processed. "Dormant" attacks violate that assumption:
//! corruption planted by an earlier request only fells the service later.
//! The paper's answer is a hybrid: a slow-paced **macro application
//! checkpoint** (libckpt-style, every ~10,000 requests) backs the swift
//! micro recovery; when micro recovery fails to keep the service alive —
//! detected as consecutive failures with no successfully served request
//! in between — the service is restored from the macro checkpoint
//! instead.

use indra_mem::{PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{CpuContext, Machine};

use crate::baselines::PAGE_COPY_CYCLES;

/// A full application-level checkpoint: every mapped page plus the
/// execution context.
#[derive(Debug, Clone)]
pub struct MacroCheckpoint {
    /// `(vpn, contents)` of every page mapped at checkpoint time.
    pages: Vec<(u32, Vec<u8>)>,
    /// Execution context at checkpoint time.
    context: CpuContext,
    /// GTS-equivalent request count at checkpoint time (diagnostics).
    request_seq: u64,
}

impl MacroCheckpoint {
    /// Number of pages captured.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Request sequence number at capture time.
    #[must_use]
    pub fn request_seq(&self) -> u64 {
        self.request_seq
    }

    /// Captures the checkpoint for the durable-checkpoint subsystem.
    #[must_use]
    pub fn save_state(&self) -> MacroCheckpointState {
        MacroCheckpointState {
            pages: self.pages.clone(),
            context: self.context,
            request_seq: self.request_seq,
        }
    }

    /// Rebuilds a checkpoint from durable state.
    #[must_use]
    pub fn from_state(state: &MacroCheckpointState) -> MacroCheckpoint {
        MacroCheckpoint {
            pages: state.pages.clone(),
            context: state.context,
            request_seq: state.request_seq,
        }
    }
}

/// Durable form of a [`MacroCheckpoint`], captured by
/// [`MacroCheckpoint::save_state`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MacroCheckpointState {
    /// `(vpn, contents)` of every page captured, in capture order.
    pub pages: Vec<(u32, Vec<u8>)>,
    /// Execution context at checkpoint time.
    pub context: CpuContext,
    /// Request sequence number at capture time.
    pub request_seq: u64,
}

/// Why a [`MacroCheckpointState`] is unusable as a restore source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroStateError {
    /// A captured page's contents are not exactly one page long.
    BadPageLength {
        /// The offending vpn.
        vpn: u32,
        /// The length found.
        len: usize,
    },
    /// The same vpn appears more than once.
    DuplicatePage(u32),
}

impl std::fmt::Display for MacroStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacroStateError::BadPageLength { vpn, len } => {
                write!(f, "macro checkpoint page {vpn:#x} has {len} bytes, expected {PAGE_SIZE}")
            }
            MacroStateError::DuplicatePage(vpn) => {
                write!(f, "macro checkpoint captures page {vpn:#x} twice")
            }
        }
    }
}

impl std::error::Error for MacroStateError {}

impl MacroCheckpointState {
    /// Checks the invariants a restore relies on. Snapshot decode rejects
    /// a state that fails this, so a truncated or hostile page vector can
    /// never scribble a short page over live memory.
    pub fn validate(&self) -> Result<(), MacroStateError> {
        let mut seen = std::collections::HashSet::new();
        for (vpn, contents) in &self.pages {
            if contents.len() != PAGE_SIZE as usize {
                return Err(MacroStateError::BadPageLength { vpn: *vpn, len: contents.len() });
            }
            if !seen.insert(*vpn) {
                return Err(MacroStateError::DuplicatePage(*vpn));
            }
        }
        Ok(())
    }
}

/// Captures a macro checkpoint of `asid`. `context` should be the
/// request-boundary context (PC parked on `net_recv`) so a restored
/// service immediately fetches the next request instead of replaying a
/// stale one; pass the core's live context when no boundary exists yet.
/// Returns the checkpoint and the cycle cost of taking it.
#[must_use]
pub fn take_macro_checkpoint(
    machine: &Machine,
    asid: u16,
    context: CpuContext,
    request_seq: u64,
) -> (MacroCheckpoint, u64) {
    let mut pages = Vec::new();
    if let Some(space) = machine.space(asid) {
        for (vpn, pte) in space.iter() {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            machine.phys().read_bytes(pte.ppn << PAGE_SHIFT, &mut buf);
            pages.push((vpn, buf));
        }
    }
    // Software checkpointing: page copy plus user/kernel transition per
    // page — this is why it must stay infrequent (Fig. 8: "the software
    // checkpoint is performed infrequently, e.g. once every 10,000
    // processed requests").
    let cycles = pages.len() as u64 * u64::from(PAGE_COPY_CYCLES) * 2;
    let ckpt = MacroCheckpoint { pages, context, request_seq };
    (ckpt, cycles)
}

/// Restores a macro checkpoint: rewrites every captured page still mapped
/// and resets the core context. Returns the cycle cost.
pub fn restore_macro_checkpoint(
    machine: &mut Machine,
    asid: u16,
    core: usize,
    ckpt: &MacroCheckpoint,
) -> u64 {
    let mut restored = 0u64;
    for (vpn, contents) in &ckpt.pages {
        // Defensive: a malformed (truncated/oversized) captured page must
        // not scribble a partial page — or a neighbour's frame — into
        // live memory. Well-formed checkpoints never hit this.
        if contents.len() != PAGE_SIZE as usize {
            continue;
        }
        let Some(pte) = machine.space(asid).and_then(|s| s.pte(*vpn)) else {
            continue;
        };
        machine.phys_mut().write_bytes(pte.ppn << PAGE_SHIFT, contents);
        restored += 1;
    }
    machine.core_mut(core).set_context(ckpt.context);
    machine.core_mut(core).clear_halt();
    restored * u64::from(PAGE_COPY_CYCLES)
}

/// Hybrid recovery policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Take a macro checkpoint every this many requests (paper: 10,000).
    pub macro_interval: u64,
    /// Escalate to macro recovery after this many consecutive failures
    /// with no successfully served request in between.
    pub failure_threshold: u32,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { macro_interval: 10_000, failure_threshold: 3 }
    }
}

/// Which recovery level to apply (Fig. 8's decision diamond).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryLevel {
    /// Swift per-request rollback.
    Micro,
    /// Restore the last macro application checkpoint.
    Macro,
}

/// Hybrid recovery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Macro checkpoints taken.
    pub macro_checkpoints: u64,
    /// Micro recoveries performed.
    pub micro_recoveries: u64,
    /// Macro recoveries performed.
    pub macro_recoveries: u64,
}

/// The Fig. 8 controller.
#[derive(Debug)]
pub struct HybridController {
    cfg: HybridConfig,
    requests_seen: u64,
    requests_at_last_macro: u64,
    consecutive_failures: u32,
    stats: HybridStats,
}

impl HybridController {
    /// Creates a controller.
    #[must_use]
    pub fn new(cfg: HybridConfig) -> HybridController {
        HybridController {
            cfg,
            requests_seen: 0,
            requests_at_last_macro: 0,
            consecutive_failures: 0,
            stats: HybridStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> HybridConfig {
        self.cfg
    }

    /// Called at each request boundary; returns `true` when it is time to
    /// take a macro checkpoint. Checkpoints are only taken while the
    /// service is healthy (no unresolved failure streak): checkpointing a
    /// corrupted state would poison the very recovery the checkpoint
    /// exists for — when failures are pending, the checkpoint is deferred
    /// to the next healthy boundary.
    pub fn on_request_boundary(&mut self) -> bool {
        self.requests_seen += 1;
        let due = self.requests_seen - self.requests_at_last_macro >= self.cfg.macro_interval;
        if due && self.consecutive_failures == 0 {
            self.requests_at_last_macro = self.requests_seen;
            self.stats.macro_checkpoints += 1;
            true
        } else {
            false
        }
    }

    /// Called when a request is served successfully.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Called when corruption is detected; decides the recovery level.
    pub fn on_failure(&mut self) -> RecoveryLevel {
        self.consecutive_failures += 1;
        if self.consecutive_failures > self.cfg.failure_threshold {
            self.consecutive_failures = 0;
            self.stats.macro_recoveries += 1;
            RecoveryLevel::Macro
        } else {
            self.stats.micro_recoveries += 1;
            RecoveryLevel::Micro
        }
    }

    /// Requests observed so far.
    #[must_use]
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Captures the controller's mutable state (configuration comes from
    /// construction and is not captured).
    #[must_use]
    pub fn save_state(&self) -> HybridControllerState {
        HybridControllerState {
            requests_seen: self.requests_seen,
            requests_at_last_macro: self.requests_at_last_macro,
            consecutive_failures: self.consecutive_failures,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`HybridController::save_state`].
    pub fn restore_state(&mut self, state: &HybridControllerState) {
        self.requests_seen = state.requests_seen;
        self.requests_at_last_macro = state.requests_at_last_macro;
        self.consecutive_failures = state.consecutive_failures;
        self.stats = state.stats;
    }
}

/// Complete mutable state of a [`HybridController`], captured by
/// [`HybridController::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridControllerState {
    /// Requests observed so far.
    pub requests_seen: u64,
    /// Request count at the last macro checkpoint.
    pub requests_at_last_macro: u64,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Accumulated statistics.
    pub stats: HybridStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostile_macro_state_is_rejected_typed() {
        let good = MacroCheckpointState {
            pages: vec![(0x10, vec![0u8; PAGE_SIZE as usize])],
            ..MacroCheckpointState::default()
        };
        assert!(good.validate().is_ok());
        let short = MacroCheckpointState {
            pages: vec![(0x10, vec![0u8; 12])],
            ..MacroCheckpointState::default()
        };
        assert_eq!(short.validate(), Err(MacroStateError::BadPageLength { vpn: 0x10, len: 12 }));
        let dup = MacroCheckpointState {
            pages: vec![
                (0x10, vec![0u8; PAGE_SIZE as usize]),
                (0x10, vec![0u8; PAGE_SIZE as usize]),
            ],
            ..MacroCheckpointState::default()
        };
        assert_eq!(dup.validate(), Err(MacroStateError::DuplicatePage(0x10)));
    }

    #[test]
    fn macro_checkpoint_cadence() {
        let mut h = HybridController::new(HybridConfig { macro_interval: 3, failure_threshold: 2 });
        assert!(!h.on_request_boundary());
        assert!(!h.on_request_boundary());
        assert!(h.on_request_boundary(), "third request triggers the checkpoint");
        assert!(!h.on_request_boundary());
        assert_eq!(h.stats().macro_checkpoints, 1);
    }

    #[test]
    fn escalation_after_consecutive_failures() {
        let mut h =
            HybridController::new(HybridConfig { macro_interval: 100, failure_threshold: 2 });
        assert_eq!(h.on_failure(), RecoveryLevel::Micro);
        assert_eq!(h.on_failure(), RecoveryLevel::Micro);
        assert_eq!(h.on_failure(), RecoveryLevel::Macro, "third consecutive failure escalates");
        assert_eq!(h.on_failure(), RecoveryLevel::Micro, "counter reset after escalation");
    }

    #[test]
    fn unhealthy_boundary_defers_checkpoint() {
        let mut h = HybridController::new(HybridConfig { macro_interval: 2, failure_threshold: 5 });
        assert!(!h.on_request_boundary());
        h.on_failure();
        // Due, but the failure streak is unresolved: defer.
        assert!(!h.on_request_boundary());
        assert!(!h.on_request_boundary());
        h.on_success();
        // First healthy boundary takes the deferred checkpoint.
        assert!(h.on_request_boundary());
    }

    #[test]
    fn success_resets_failure_count() {
        let mut h =
            HybridController::new(HybridConfig { macro_interval: 100, failure_threshold: 2 });
        h.on_failure();
        h.on_failure();
        h.on_success();
        assert_eq!(h.on_failure(), RecoveryLevel::Micro, "streak broken by a success");
        assert_eq!(h.stats().micro_recoveries, 3);
        assert_eq!(h.stats().macro_recoveries, 0);
    }

    mod machine_level {
        use super::*;
        use indra_isa::assemble;
        use indra_sim::{CoreStep, MachineConfig};

        #[test]
        fn macro_roundtrip_restores_memory_and_context() {
            let mut m = Machine::new(MachineConfig::default());
            m.boot_asymmetric();
            let img = assemble("t", "main:\n halt\n.data\nbuf: .word 0x1111\n").unwrap();
            m.create_space(5);
            m.load_image(5, &img).unwrap();
            m.core_mut(1).set_asid(5);
            m.core_mut(1).set_pc(img.entry);
            while let CoreStep::Executed = m.step_core_simple(1) {}

            let ctx = m.core(1).context();
            let (ckpt, take_cycles) = take_macro_checkpoint(&m, 5, ctx, 7);
            assert!(ckpt.page_count() > 0);
            assert!(take_cycles > 0);
            assert_eq!(ckpt.request_seq(), 7);

            // Corrupt data memory and the context.
            let buf = img.addr_of("buf").unwrap();
            assert!(m.write_virtual_u32(5, buf, 0xDEAD));
            m.core_mut(1).set_pc(0x9999);

            let restore_cycles = restore_macro_checkpoint(&mut m, 5, 1, &ckpt);
            assert!(restore_cycles > 0);
            assert_eq!(m.read_virtual_u32(5, buf), Some(0x1111));
            assert_eq!(m.core(1).pc(), ckpt.context.pc);
        }

        #[test]
        fn truncated_page_is_skipped_not_scribbled() {
            let mut m = Machine::new(MachineConfig::default());
            m.boot_asymmetric();
            let img = assemble("t", "main:\n halt\n.data\nbuf: .word 0x1111\n").unwrap();
            m.create_space(5);
            m.load_image(5, &img).unwrap();
            m.core_mut(1).set_asid(5);
            m.core_mut(1).set_pc(img.entry);
            while let CoreStep::Executed = m.step_core_simple(1) {}

            let ctx = m.core(1).context();
            let (ckpt, _) = take_macro_checkpoint(&m, 5, ctx, 1);
            // Hostile state: truncate every captured page to 4 bytes of
            // 0xFF. The restore must leave memory alone.
            let mut state = ckpt.save_state();
            for (_, contents) in &mut state.pages {
                *contents = vec![0xFF; 4];
            }
            assert!(state.validate().is_err());
            let hostile = MacroCheckpoint::from_state(&state);
            let buf = img.addr_of("buf").unwrap();
            let restored = restore_macro_checkpoint(&mut m, 5, 1, &hostile);
            assert_eq!(restored, 0, "no page may be partially restored");
            assert_eq!(m.read_virtual_u32(5, buf), Some(0x1111), "memory untouched");
        }
    }
}
