//! The common interface of memory checkpoint/recovery schemes (Table 3).
//!
//! The paper compares four macro-level memory backup approaches:
//!
//! | scheme | backup | recovery |
//! |---|---|---|
//! | software checkpointing (libckpt) | copy dirty pages, slow | fast (remap) |
//! | memory update log (DIRA) | append old values, fast | undo log walk, slow |
//! | hardware virtual checkpointing | copy dirty page on demand, slow | fast (remap TLB) |
//! | **INDRA delta** | copy only dirty *lines*, fast | fast (lazy, no copy) |
//!
//! Every scheme implements [`Scheme`]: it observes stores (and for INDRA,
//! loads) through the [`BackupHook`] supertrait while the request
//! executes, and exposes the two request-boundary operations —
//! [`Scheme::begin_request`] and [`Scheme::fail_and_rollback`] — whose
//! relative costs are exactly what Table 3 and Figs. 14/16 measure.

use indra_mem::PhysicalMemory;
use indra_sim::{AddressSpace, BackupHook};

use crate::{DeltaState, PageCkptState, SealedCompartment, UndoLogState};

/// Cumulative counters common to all schemes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Store instructions observed.
    pub stores_observed: u64,
    /// Line copies performed (granularity differs by scheme).
    pub line_copies: u64,
    /// Whole-page copies performed.
    pub page_copies: u64,
    /// Undo-log entries appended (update-log scheme only).
    pub log_entries: u64,
    /// Lazy line restores (INDRA only).
    pub lazy_restores: u64,
    /// Rollbacks executed.
    pub rollbacks: u64,
    /// Cycles charged at request boundaries.
    pub boundary_cycles: u64,
    /// Cycles charged for rollback/recovery work.
    pub recovery_cycles: u64,
}

impl SchemeStats {
    /// Fraction of observed stores that required a backup line copy —
    /// the y-axis of Fig. 15 (INDRA) and a cost proxy for the others.
    #[must_use]
    pub fn backup_fraction(&self) -> f64 {
        if self.stores_observed == 0 {
            0.0
        } else {
            self.line_copies as f64 / self.stores_observed as f64
        }
    }
}

/// A per-request memory checkpoint/recovery scheme.
///
/// Implementations are driven by the INDRA control loop: `register` once
/// per service, `begin_request` at every request boundary (the paper's
/// GTS increment), the [`BackupHook`] callbacks on every committed memory
/// access in between, and `fail_and_rollback` when the monitor detects
/// corruption.
/// `Send` because the fleet executor moves whole [`crate::IndraSystem`]s
/// (which own their scheme) onto worker threads.
pub trait Scheme: BackupHook + Send {
    /// Scheme name for reports ("indra-delta", "virtual-checkpoint", …).
    fn name(&self) -> &'static str;

    /// Registers a service address space.
    fn register(&mut self, asid: u16);

    /// Marks a request boundary: the previous request committed. Returns
    /// the cycle cost charged to the resurrectee.
    fn begin_request(
        &mut self,
        asid: u16,
        space: &mut AddressSpace,
        phys: &mut PhysicalMemory,
    ) -> u64;

    /// The current request was malicious: restore memory to the last
    /// boundary. Returns the cycle cost of the rollback itself.
    fn fail_and_rollback(
        &mut self,
        asid: u16,
        space: &mut AddressSpace,
        phys: &mut PhysicalMemory,
    ) -> u64;

    /// Materializes any lazily-deferred restores overlapping
    /// `[vaddr, vaddr+len)` so that non-core observers (DMA, the OS
    /// reading a send buffer) see correct data. A no-op for eager
    /// schemes.
    fn ensure_clean(
        &mut self,
        asid: u16,
        vaddr: u32,
        len: u32,
        space: &AddressSpace,
        phys: &mut PhysicalMemory,
    );

    /// Drops all backup state for `asid` (frames released, logs cleared)
    /// without restoring anything — used when a macro checkpoint restore
    /// supersedes the per-request state.
    fn forget(&mut self, asid: u16);

    /// Drops backup state for one page of `asid` without restoring it —
    /// used when the OS tears a page out of the address space (a
    /// per-request arena page being released), so stale rollback bits can
    /// never bleed into whatever is mapped at that vpn next. A no-op for
    /// schemes without per-page state.
    fn forget_page(&mut self, _asid: u16, _vpn: u32) {}

    /// Commits the current request interval as a *sealed compartment*
    /// that stays individually discardable for a bounded window. No-op
    /// for schemes without compartment support.
    fn seal_compartment(&mut self, _asid: u16, _request_id: u64, _malicious: bool) {}

    /// After a fault, names the sealed compartment whose writes the
    /// failed request was consuming, if the scheme can attribute one.
    fn fault_suspect(&self, _asid: u16) -> Option<SealedCompartment> {
        None
    }

    /// Rewinds-and-discards one sealed compartment's surviving writes,
    /// leaving every other request's state untouched. Returns the cycle
    /// cost (zero when unsupported or unknown).
    fn discard_compartment(&mut self, _asid: u16, _compartment: u64) -> u64 {
        0
    }

    /// Backup frames currently live (the paper's space-overhead metric;
    /// zero for schemes that keep no frame pool).
    fn live_backup_frames(&self) -> u32 {
        0
    }

    /// Cumulative statistics.
    fn stats(&self) -> SchemeStats;

    /// Resets statistics (not backup state).
    fn reset_stats(&mut self);

    /// Captures the scheme's complete mutable state for the durable
    /// checkpoint subsystem. Configuration (cycle costs, trap costs,
    /// names) is not captured — it comes from construction.
    fn save_state(&self) -> SchemeState;

    /// Restores state captured by [`Scheme::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when `state` belongs to a different scheme kind: loading a
    /// snapshot into a system configured with a different scheme is a
    /// programmer error (the store's metadata carries the `SchemeKind`
    /// and integrity is CRC-checked before decode ever runs).
    fn load_state(&mut self, state: &SchemeState);
}

/// Complete mutable state of a [`Scheme`], tagged by scheme kind so a
/// snapshot can only be loaded into a system deployed with the same
/// scheme. Captured by [`Scheme::save_state`] for the durable-checkpoint
/// subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeState {
    /// State of the null scheme (statistics only).
    NoBackup {
        /// Cumulative counters.
        stats: SchemeStats,
    },
    /// State of INDRA's delta-page engine.
    Delta(DeltaState),
    /// State of the page-granular checkpoint baselines (both hardware
    /// virtual checkpointing and libckpt-style software checkpointing
    /// share this shape — they differ only in configured trap cost).
    PageCkpt(PageCkptState),
    /// State of the DIRA-style memory update log.
    UndoLog(UndoLogState),
}

/// The "no backup hardware" scheme: observes nothing, restores nothing.
/// Used for the unmonitored baseline runs.
#[derive(Debug, Default)]
pub struct NoBackup {
    stats: SchemeStats,
}

impl NoBackup {
    /// Creates the null scheme.
    #[must_use]
    pub fn new() -> NoBackup {
        NoBackup::default()
    }
}

impl BackupHook for NoBackup {
    fn before_read(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        0
    }

    fn before_write(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        self.stats.stores_observed += 1;
        0
    }
}

impl Scheme for NoBackup {
    fn name(&self) -> &'static str {
        "none"
    }

    fn register(&mut self, _asid: u16) {}

    fn begin_request(&mut self, _: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        0
    }

    fn fail_and_rollback(&mut self, _: u16, _: &mut AddressSpace, _: &mut PhysicalMemory) -> u64 {
        // Nothing to restore — a machine without INDRA cannot roll back.
        self.stats.rollbacks += 1;
        0
    }

    fn ensure_clean(&mut self, _: u16, _: u32, _: u32, _: &AddressSpace, _: &mut PhysicalMemory) {}

    fn forget(&mut self, _asid: u16) {}

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SchemeStats::default();
    }

    fn save_state(&self) -> SchemeState {
        SchemeState::NoBackup { stats: self.stats }
    }

    fn load_state(&mut self, state: &SchemeState) {
        match state {
            SchemeState::NoBackup { stats } => self.stats = *stats,
            other => panic!("scheme state mismatch: none <- {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobackup_counts_stores() {
        let mut s = NoBackup::new();
        let mut phys = PhysicalMemory::new();
        s.before_write(1, 0x1000, 0x1000, &mut phys);
        s.before_write(1, 0x1004, 0x1004, &mut phys);
        assert_eq!(s.stats().stores_observed, 2);
        assert_eq!(s.stats().line_copies, 0);
        assert!((s.stats().backup_fraction()).abs() < 1e-12);
        s.reset_stats();
        assert_eq!(s.stats().stores_observed, 0);
    }
}
