//! The integrated INDRA system (Fig. 2).
//!
//! [`IndraSystem`] wires the machine, the kernel-lite, the monitor and a
//! checkpoint scheme into the paper's run loop:
//!
//! * each **resurrectee** core executes one service; committed traces
//!   flow through its CAM filter into the shared FIFO;
//! * the **resurrector** consumes the FIFO with its own cycle clock
//!   (`max(clock, event_time) + verify_cost`), so monitoring runs
//!   *concurrently* — a resurrectee stalls only when the FIFO fills
//!   (Fig. 12) or at synchronization points (syscalls/I/O, §3.2.5);
//! * a detected violation (or a hardware fault, or a hung request)
//!   quiesces the offending core and triggers the hybrid recovery of
//!   Fig. 8: micro per-request rollback first, macro checkpoint restore
//!   after repeated failures.
//!
//! The paper's evaluation uses one resurrector and one resurrectee; the
//! design explicitly allows several resurrectees under one resurrector
//! (Fig. 2), which this implementation supports — deploy one service per
//! resurrectee core and the shared monitor multiplexes by ASID, exactly
//! as the paper's CR3-tagged trace entries do.

use std::collections::{BTreeMap, HashMap};

use indra_isa::{Image, Reg};
use indra_mem::FrameAllocator;
use indra_os::{syscall, Os, Pid, Response, SyscallEffect};
use indra_sim::{CoreStep, Machine, MachineConfig};

/// Fixed cost of one micro recovery beyond the scheme's own work: the
/// resurrector's stall IPI, the resurrectee's recovery interrupt handler,
/// the kernel walking the resource mark (closing descriptors, killing
/// children, reclaiming pages) and the context restore. Dominated by
/// kernel work, so tens of microseconds — this is what makes frequent
/// rollback visible on bind's short requests (Fig. 16's outlier).
const MICRO_RECOVERY_BASE_CYCLES: u64 = 40_000;

use crate::{
    restore_macro_checkpoint, take_macro_checkpoint, DeltaBackupEngine, DeltaConfig, HybridConfig,
    HybridController, HybridControllerState, MacroCheckpoint, MacroCheckpointState, Monitor,
    MonitorConfig, MonitorState, NoBackup, RecoveryLevel, Scheme, SchemeState, SoftwareCheckpoint,
    UndoLog, ViolationKind, VirtualCheckpoint,
};
use indra_os::OsState;
use indra_sim::MachineState;

/// Which checkpoint scheme to deploy (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No backup hardware at all (baseline for Fig. 11).
    None,
    /// INDRA's delta-page engine.
    Delta,
    /// Hardware virtual checkpointing (page copy on first write).
    VirtualCheckpoint,
    /// libckpt-style software checkpointing.
    SoftwareCheckpoint,
    /// DIRA-style memory update log.
    UndoLog,
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Machine parameters (Table 4).
    pub machine: MachineConfig,
    /// Monitor policies and per-event costs.
    pub monitor: MonitorConfig,
    /// Delta engine parameters.
    pub delta: DeltaConfig,
    /// Hybrid recovery parameters (one controller per service).
    pub hybrid: HybridConfig,
    /// The deployed scheme.
    pub scheme: SchemeKind,
    /// Master monitoring switch (off = the Fig. 11 baseline machine).
    pub monitoring: bool,
    /// Instructions a single request may retire before the resurrector
    /// declares it hung (DoS watchdog; teardrop-style freezes).
    pub request_timeout_insns: u64,
    /// The core [`IndraSystem::deploy`] targets first; additional
    /// deployments take the following resurrectee cores.
    pub service_core: usize,
    /// Register the statically-tightened policy (declared ∩ proven) with
    /// the monitor at deploy time instead of trusting the image's
    /// declarations verbatim. Default on; turn off as the escape hatch
    /// for images whose declarations must be taken at face value.
    pub strict_policy: bool,
    /// Per-request compartments: tag dirtied pages by request, seal the
    /// tag set when the response goes out, and on a fault caused by an
    /// earlier request's dormant corruption discard only the guilty
    /// compartment's lines and retry the victim — instead of dropping
    /// it. ANDed into [`DeltaConfig::compartments`]; default on.
    pub compartments: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            machine: MachineConfig::default(),
            monitor: MonitorConfig::default(),
            delta: DeltaConfig::default(),
            hybrid: HybridConfig::default(),
            scheme: SchemeKind::Delta,
            monitoring: true,
            request_timeout_insns: 50_000_000,
            service_core: 1,
            strict_policy: true,
            compartments: true,
        }
    }
}

/// Why the system initiated a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// The monitor flagged a trace event.
    Violation(ViolationKind),
    /// The core faulted (illegal instruction, page fault, watchdog, …).
    Fault,
    /// The request exceeded the instruction budget (hung / DoS).
    Timeout,
}

/// One recovery episode, for the audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Why.
    pub cause: FailureCause,
    /// The request being processed when it happened (if any).
    pub request_id: Option<u64>,
    /// Whether that request was actually malicious (ground truth).
    pub was_malicious: bool,
    /// The recovery level applied.
    pub level: RecoveryLevel,
    /// Resurrectee cycle time of the recovery.
    pub at_cycle: u64,
    /// Instructions the in-flight request had retired when the failure
    /// was detected (0 when no request was in flight) — the detection
    /// latency the red-team campaign scores payloads by: how much work
    /// an attack got done before the monitor or watchdog stopped it.
    pub insns_into_request: u64,
    /// The core the recovery ran on.
    pub core: usize,
    /// Whether the failed request was requeued for a retry (compartment
    /// path: the fault was attributed to an earlier request's sealed
    /// compartment, which was discarded).
    pub retried: bool,
    /// Id of the sealed request whose compartment was discarded, if any.
    pub discarded: Option<u64>,
    /// Ground truth for the discarded compartment's request.
    pub discarded_was_malicious: bool,
}

/// Timing sample for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSample {
    /// Request id.
    pub request_id: u64,
    /// Resurrectee cycles from delivery to response.
    pub cycles: u64,
    /// Instructions retired for this request.
    pub instructions: u64,
    /// Ground truth tag.
    pub malicious: bool,
    /// The core that served it.
    pub core: usize,
    /// Absolute resurrectee cycle at which the response completed
    /// (availability accounting).
    pub completed_at: u64,
}

/// Static-policy statistics aggregated over every deployed service
/// (sums across deploys; the per-image numbers come from
/// [`indra_analyze::PolicyReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Services deployed.
    pub services: u64,
    /// Indirect targets the images declared.
    pub declared_targets: u64,
    /// Indirect targets static analysis proved plausible.
    pub proven_targets: u64,
    /// Indirect targets actually registered with the monitor (equals
    /// `declared_targets` when `strict_policy` is off).
    pub registered_targets: u64,
    /// Executable pages registered.
    pub executable_pages: u64,
    /// Static findings across all deployed images.
    pub static_findings: u64,
}

impl PolicyStats {
    /// Fixed-field-order JSON (deterministic bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::json::JsonObject::new()
            .u64("services", self.services)
            .u64("declared_targets", self.declared_targets)
            .u64("proven_targets", self.proven_targets)
            .u64("registered_targets", self.registered_targets)
            .u64("executable_pages", self.executable_pages)
            .u64("static_findings", self.static_findings)
            .finish()
    }
}

/// Aggregate results of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Requests fully served (response sent).
    pub served: u64,
    /// Benign requests among those.
    pub benign_served: u64,
    /// Recovery episodes.
    pub detections: Vec<Detection>,
    /// Per-request timing samples.
    pub samples: Vec<RequestSample>,
    /// Schedule indices the harness quarantined (poison requests never
    /// delivered to the service), in the order they were skipped.
    pub quarantined: Vec<u64>,
    /// Static-policy statistics from deploy-time analysis.
    pub policy: PolicyStats,
}

impl RunReport {
    /// Mean response cycles over benign requests (the paper's service
    /// response time metric).
    #[must_use]
    pub fn mean_benign_response(&self) -> f64 {
        let benign: Vec<u64> =
            self.samples.iter().filter(|s| !s.malicious).map(|s| s.cycles).collect();
        if benign.is_empty() {
            0.0
        } else {
            benign.iter().sum::<u64>() as f64 / benign.len() as f64
        }
    }

    /// Mean instructions per request (Fig. 13's metric).
    #[must_use]
    pub fn mean_instructions_per_request(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|s| s.instructions).sum::<u64>() as f64
                / self.samples.len() as f64
        }
    }

    /// How many detections hit genuinely malicious requests.
    #[must_use]
    pub fn true_detections(&self) -> usize {
        self.detections.iter().filter(|d| d.was_malicious).count()
    }

    /// Detections on benign requests (the false-positive count; §3.2.4
    /// argues this stays at zero for behavior-based inspection — a benign
    /// request that faults *because of earlier dormant corruption* counts
    /// here and is the hybrid scheme's cue).
    #[must_use]
    pub fn false_positives(&self) -> usize {
        self.detections.iter().filter(|d| !d.was_malicious && d.request_id.is_some()).count()
    }

    /// Serializes the full report (detections and samples included) as
    /// JSON. Field order is fixed: equal reports produce identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::json::JsonObject::new()
            .u64("served", self.served)
            .u64("benign_served", self.benign_served)
            .raw(
                "detections",
                &crate::json::json_array(self.detections.iter().map(Detection::to_json)),
            )
            .raw(
                "samples",
                &crate::json::json_array(self.samples.iter().map(RequestSample::to_json)),
            )
            .raw(
                "quarantined",
                &crate::json::json_array(self.quarantined.iter().map(u64::to_string)),
            )
            .raw("policy", &self.policy.to_json())
            .finish()
    }
}

impl Detection {
    /// One detection as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cause = match self.cause {
            FailureCause::Violation(kind) => format!("violation:{kind:?}"),
            FailureCause::Fault => "fault".to_owned(),
            FailureCause::Timeout => "timeout".to_owned(),
        };
        let mut obj = crate::json::JsonObject::new();
        obj.str("cause", &cause);
        match self.request_id {
            Some(id) => obj.u64("request_id", id),
            None => obj.raw("request_id", "null"),
        };
        obj.bool("was_malicious", self.was_malicious)
            .str(
                "level",
                match self.level {
                    RecoveryLevel::Micro => "micro",
                    RecoveryLevel::Macro => "macro",
                },
            )
            .u64("at_cycle", self.at_cycle)
            .u64("insns_into_request", self.insns_into_request)
            .u64("core", self.core as u64)
            .bool("retried", self.retried);
        match self.discarded {
            Some(id) => obj.u64("discarded", id),
            None => obj.raw("discarded", "null"),
        };
        obj.bool("discarded_was_malicious", self.discarded_was_malicious).finish()
    }
}

impl RequestSample {
    /// One timing sample as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        crate::json::JsonObject::new()
            .u64("request_id", self.request_id)
            .u64("cycles", self.cycles)
            .u64("instructions", self.instructions)
            .bool("malicious", self.malicious)
            .u64("core", self.core as u64)
            .u64("completed_at", self.completed_at)
            .finish()
    }
}

/// Outcome of driving the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Every live service is blocked on `net_recv` with an empty inbox.
    Idle,
    /// All services exited / halted.
    Halted,
    /// The step budget ran out while work remained.
    BudgetExhausted,
}

#[derive(Debug, Clone, Copy)]
struct Service {
    pid: Pid,
    asid: u16,
    core: usize,
    entry: u32,
    initial_sp: u32,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    request_id: u64,
    malicious: bool,
    start_cycles: u64,
    start_retired: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pump {
    Progress,
    Idle,
    Halted,
}

/// The assembled INDRA machine + software stack.
pub struct IndraSystem {
    cfg: SystemConfig,
    machine: Machine,
    os: Os,
    monitor: Monitor,
    scheme: Box<dyn Scheme>,
    services: BTreeMap<usize, Service>,
    hybrids: HashMap<usize, HybridController>,
    macro_ckpts: HashMap<usize, MacroCheckpoint>,
    in_flight: HashMap<usize, InFlight>,
    blocked: HashMap<usize, bool>,
    report: RunReport,
}

impl std::fmt::Debug for IndraSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndraSystem")
            .field("scheme", &self.scheme.name())
            .field("monitoring", &self.machine.monitoring())
            .field("services", &self.services.len())
            .finish()
    }
}

impl IndraSystem {
    /// Builds and boots the system.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> IndraSystem {
        let mut machine = Machine::new(cfg.machine.clone());
        machine.boot_asymmetric();
        machine.set_monitoring(cfg.monitoring);
        let (pool_base, pool_end) = machine.backup_pool_ppns();
        let frames = || FrameAllocator::new(pool_base, pool_end);
        let mut delta = cfg.delta;
        delta.compartments = delta.compartments && cfg.compartments;
        let scheme: Box<dyn Scheme> = match cfg.scheme {
            SchemeKind::None => Box::new(NoBackup::new()),
            SchemeKind::Delta => Box::new(DeltaBackupEngine::new(delta, frames())),
            SchemeKind::VirtualCheckpoint => Box::new(VirtualCheckpoint::new(frames())),
            SchemeKind::SoftwareCheckpoint => Box::new(SoftwareCheckpoint::new(frames())),
            SchemeKind::UndoLog => Box::new(UndoLog::new()),
        };
        IndraSystem {
            monitor: Monitor::new(cfg.monitor),
            machine,
            os: Os::new(),
            scheme,
            services: BTreeMap::new(),
            hybrids: HashMap::new(),
            macro_ckpts: HashMap::new(),
            in_flight: HashMap::new(),
            blocked: HashMap::new(),
            report: RunReport::default(),
            cfg,
        }
    }

    /// The machine (stats access).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (test fixtures).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The kernel-lite.
    #[must_use]
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// The monitor.
    #[must_use]
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The active scheme.
    #[must_use]
    pub fn scheme(&self) -> &dyn Scheme {
        self.scheme.as_ref()
    }

    /// The hybrid recovery controller of the primary service.
    ///
    /// # Panics
    ///
    /// Panics when nothing is deployed.
    #[must_use]
    pub fn hybrid(&self) -> &HybridController {
        let core = self.primary().core;
        &self.hybrids[&core]
    }

    /// The hybrid controller of the service on `core`, if any.
    #[must_use]
    pub fn hybrid_for(&self, core: usize) -> Option<&HybridController> {
        self.hybrids.get(&core)
    }

    /// The run report so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Cores with a deployed service, in deployment order.
    #[must_use]
    pub fn service_cores(&self) -> Vec<usize> {
        self.services.keys().copied().collect()
    }

    fn primary(&self) -> Service {
        *self.services.values().next().expect("no service deployed")
    }

    /// Resurrectee cycle count of the primary service (the evaluation's
    /// wall clock).
    #[must_use]
    pub fn service_cycles(&self) -> u64 {
        self.machine.core(self.primary().core).cycles()
    }

    /// Resets every measurement counter (caches, CAM, FIFO producers keep
    /// their contents — only statistics reset) and clears the run report.
    /// Benches call this after warm-up so Fig.-series numbers exclude
    /// cold-start effects.
    pub fn reset_measurements(&mut self) {
        for core in self.service_cores() {
            self.machine.core_mem_mut(core).reset_stats();
            self.machine.cam_mut(core).reset_stats();
        }
        self.scheme.reset_stats();
        self.monitor.reset_stats();
        self.report = RunReport::default();
    }

    /// Deploys a service image on the next free resurrectee core
    /// (starting at `cfg.service_core`), registering its metadata with
    /// the monitor and the scheme. Returns the service's pid.
    ///
    /// # Errors
    ///
    /// Propagates loader errors; errors when every resurrectee core is
    /// occupied.
    pub fn deploy(&mut self, image: &Image) -> Result<Pid, indra_sim::LoadError> {
        let core = (self.cfg.service_core..self.machine.num_cores())
            .find(|c| !self.services.contains_key(c))
            .ok_or(indra_sim::LoadError::OutOfFrames)?;
        self.deploy_on(core, image)
    }

    /// Deploys a service on a specific resurrectee core.
    ///
    /// # Errors
    ///
    /// Propagates loader errors.
    pub fn deploy_on(&mut self, core: usize, image: &Image) -> Result<Pid, indra_sim::LoadError> {
        let (pid, meta, analysis) = self.os.spawn_service_checked(
            &mut self.machine,
            core,
            image,
            self.cfg.strict_policy,
        )?;
        self.report.policy.services += 1;
        self.report.policy.declared_targets += analysis.stats.declared_indirect;
        self.report.policy.proven_targets += analysis.stats.proven_indirect;
        self.report.policy.registered_targets += meta.indirect_targets.len() as u64;
        self.report.policy.executable_pages += meta.executable_pages.len() as u64;
        self.report.policy.static_findings += analysis.findings.len() as u64;
        let asid = self.os.asid_of(pid);
        self.scheme.register(asid);
        self.monitor.register_app(asid, meta);
        self.services.insert(
            core,
            Service { pid, asid, core, entry: image.entry, initial_sp: image.initial_sp },
        );
        self.hybrids.insert(core, HybridController::new(self.cfg.hybrid));
        self.blocked.insert(core, false);
        Ok(pid)
    }

    /// Installs a custom inspection policy on the resurrector (the
    /// paper's software-upgradability story: new detection techniques
    /// deploy as monitor software, no hardware change).
    pub fn add_monitor_policy(&mut self, policy: Box<dyn crate::InspectionPolicy>) {
        self.monitor.add_policy(policy);
    }

    /// Extends the monitor's metadata with extra legitimate longjmp
    /// targets for the primary service (applications declare their setjmp
    /// sites at startup, §3.2.1).
    pub fn register_longjmp_targets(&mut self, targets: &[u32]) {
        if let Some(svc) = self.services.values().next().copied() {
            self.monitor.add_longjmp_targets(svc.asid, targets);
        }
    }

    /// Queues a request for the primary service.
    ///
    /// # Panics
    ///
    /// Panics when no service is deployed.
    pub fn push_request(&mut self, data: Vec<u8>, malicious: bool) -> u64 {
        let svc = self.primary();
        self.os.push_request(svc.pid, data, malicious)
    }

    /// Queues a request for the service on `core`.
    ///
    /// # Panics
    ///
    /// Panics when that core has no service.
    pub fn push_request_to(&mut self, core: usize, data: Vec<u8>, malicious: bool) -> u64 {
        let svc = self.services[&core];
        self.os.push_request(svc.pid, data, malicious)
    }

    /// Takes all responses produced by the primary service so far.
    pub fn take_responses(&mut self) -> Vec<Response> {
        match self.services.values().next().copied() {
            Some(svc) => self.os.take_responses(svc.pid),
            None => Vec::new(),
        }
    }

    /// Takes all responses from the service on `core`.
    ///
    /// # Panics
    ///
    /// Panics when that core has no service.
    pub fn take_responses_from(&mut self, core: usize) -> Vec<Response> {
        let svc = self.services[&core];
        self.os.take_responses(svc.pid)
    }

    /// Drives every deployed service until all are idle (blocked with no
    /// pending requests) or halted, or until `max_steps` scheduling steps
    /// are exhausted. Cores are stepped round-robin, which keeps their
    /// cycle clocks loosely synchronized.
    pub fn run(&mut self, max_steps: u64) -> RunState {
        let cores = self.service_cores();
        if cores.is_empty() {
            return RunState::Halted;
        }
        // With several services, one instruction per pump keeps their
        // clocks (and the shared DRAM/FIFO interleaving) exactly as the
        // reference interpreter orders them; a lone service has no peer
        // to interleave with and batches freely through the superblock
        // engine. `steps` counts retired instructions plus one per
        // non-executing pump, so budget consumption is identical whether
        // or not batching is on.
        let single = cores.len() == 1;
        let mut halted: Vec<bool> = vec![false; cores.len()];
        let mut steps = 0u64;
        loop {
            let mut any_progress = false;
            let mut any_idle = false;
            for (i, &core) in cores.iter().enumerate() {
                if halted[i] {
                    continue;
                }
                let budget = if single { max_steps - steps } else { 1 };
                let (pump, consumed) = self.pump(core, budget);
                match pump {
                    Pump::Progress => any_progress = true,
                    Pump::Idle => any_idle = true,
                    Pump::Halted => halted[i] = true,
                }
                steps += consumed;
                if steps >= max_steps {
                    return RunState::BudgetExhausted;
                }
            }
            if !any_progress {
                if any_idle {
                    return RunState::Idle;
                }
                if halted.iter().all(|&h| h) {
                    return RunState::Halted;
                }
            }
        }
    }

    /// One scheduling decision on one core: up to `max_insns`
    /// instructions through the superblock engine (bounded so a request
    /// can never batch past its DoS-timeout budget), or one of the
    /// non-executing transitions. Returns the scheduling outcome and the
    /// step budget consumed — instructions retired, plus one for the
    /// pump itself when nothing retired (and one extra for a faulting
    /// instruction, which occupies a pump without retiring).
    fn pump(&mut self, core: usize, max_insns: u64) -> (Pump, u64) {
        let svc = self.services[&core];

        // A service blocked in net_recv only needs attention when a
        // request arrives (re-stepping the parked syscall would re-charge
        // kernel entry).
        if self.blocked[&core] {
            return match self.os.try_deliver(&mut self.machine, svc.pid) {
                Some(eff) => {
                    self.blocked.insert(core, false);
                    self.apply_effect(core, eff);
                    (Pump::Progress, 1)
                }
                None => (Pump::Idle, 1),
            };
        }

        // DoS watchdog: a request that retires too much is declared hung.
        // A batch may run at most up to the first instruction *past* the
        // timeout budget, so the hang is declared at the same retired
        // count the one-instruction reference loop would see.
        let mut cap = max_insns;
        if let Some(inf) = self.in_flight.get(&core).copied() {
            let retired = self.machine.core(core).retired();
            if retired - inf.start_retired > self.cfg.request_timeout_insns {
                self.recover(core, FailureCause::Timeout);
                return (Pump::Progress, 1);
            }
            cap = cap.min(
                (inf.start_retired + self.cfg.request_timeout_insns + 1).saturating_sub(retired),
            );
        }

        // The resurrector drains the FIFO concurrently: everything it
        // would have finished by this core's wall-clock has already left
        // the queue. (Without this, the queue reads as full even when the
        // monitor caught up long ago, and Fig. 12's size-sensitivity
        // disappears.)
        let now = self.machine.core(core).cycles();
        while let Some(ev) = self.machine.fifo().peek() {
            if self.monitor.completion_preview(ev) > now {
                break;
            }
            let ev = self.machine.fifo_mut().pop().expect("peeked");
            let ev_asid = ev.asid;
            if let Some(v) = self.monitor.process(ev) {
                // The violation belongs to whichever core runs that ASID.
                if let Some(owner) =
                    self.services.values().find(|s| s.asid == ev_asid).map(|s| s.core)
                {
                    self.recover(owner, FailureCause::Violation(v.kind));
                    return (Pump::Progress, 1);
                }
            }
        }

        // Events still queued have completions in this core's future; a
        // batch may run only up to the boundary where the oldest one
        // falls due — the exact boundary where the reference loop's
        // drain (and any violation recovery) would interleave.
        let horizon = match self.machine.fifo().peek() {
            Some(ev) => self.monitor.completion_preview(ev),
            None => u64::MAX,
        };
        let (step, executed) =
            self.machine.step_core_batch(core, upcast(self.scheme.as_mut()), cap, horizon);
        // A faulting instruction occupies a pump without retiring, so it
        // costs one step on top of whatever the batch retired before it —
        // exactly what the one-instruction loop charges.
        let consumed = match step {
            CoreStep::Fault(_) => executed + 1,
            _ => executed.max(1),
        };
        let pump = match step {
            CoreStep::Executed => Pump::Progress,
            CoreStep::Halted => Pump::Halted,
            CoreStep::Stalled => Pump::Halted, // cannot happen outside recovery
            CoreStep::FifoStalled => {
                // Queue genuinely full: this core waits until the monitor
                // finishes the oldest entry, freeing one slot.
                if let Some(ev) = self.machine.fifo_mut().pop() {
                    let ev_asid = ev.asid;
                    let violation = self.monitor.process(ev);
                    let stall = self
                        .monitor
                        .clock()
                        .saturating_sub(self.machine.core(core).cycles())
                        .max(1);
                    self.machine.core_mut(core).add_stall_cycles(stall);
                    if let Some(v) = violation {
                        if let Some(owner) =
                            self.services.values().find(|s| s.asid == ev_asid).map(|s| s.core)
                        {
                            self.recover(owner, FailureCause::Violation(v.kind));
                        }
                    }
                }
                Pump::Progress
            }
            CoreStep::Syscall { code } => {
                // Synchronization point (§3.2.5): everything must verify
                // before the kernel acts on the resurrectee's behalf.
                if let Some((owner, kind)) = self.drain_fifo() {
                    self.recover(owner, FailureCause::Violation(kind));
                    return (Pump::Progress, consumed);
                }
                if self.machine.monitoring() {
                    let lag = self.monitor.clock().saturating_sub(self.machine.core(core).cycles());
                    if lag > 0 {
                        self.machine.core_mut(core).add_stall_cycles(lag);
                    }
                }
                self.pre_syscall_clean(svc, code);
                let effect = self.os.handle_syscall(&mut self.machine, core, code);
                match self.apply_effect(core, effect) {
                    Some(Pump::Idle) => Pump::Idle,
                    Some(p) => p,
                    None => Pump::Progress,
                }
            }
            CoreStep::Fault(_) => {
                // Drain first: often the monitor has already seen the
                // hijack that led here; prefer the violation cause.
                match self.drain_fifo() {
                    Some((owner, k)) => self.recover(owner, FailureCause::Violation(k)),
                    None => self.recover(core, FailureCause::Fault),
                }
                Pump::Progress
            }
        };
        (pump, consumed)
    }

    /// Before the OS reads service memory on the app's behalf, pending
    /// lazy restores in the affected range must materialize (the I/O
    /// synchronization rule).
    fn pre_syscall_clean(&mut self, svc: Service, code: u16) {
        let (buf, len) = match code {
            syscall::SYS_NET_SEND | syscall::SYS_LOG => {
                (self.machine.core(svc.core).reg(Reg::A0), self.machine.core(svc.core).reg(Reg::A1))
            }
            syscall::SYS_WRITE => {
                (self.machine.core(svc.core).reg(Reg::A1), self.machine.core(svc.core).reg(Reg::A2))
            }
            _ => return,
        };
        if let Some((space, phys)) = self.machine.space_and_phys_mut(svc.asid) {
            self.scheme.ensure_clean(svc.asid, buf, len, space, phys);
        }
    }

    fn apply_effect(&mut self, core: usize, effect: SyscallEffect) -> Option<Pump> {
        let svc = self.services[&core];
        match effect {
            SyscallEffect::Continue => None,
            SyscallEffect::BlockedOnRecv { pid } => {
                // Maybe requests were queued before the service blocked.
                match self.os.try_deliver(&mut self.machine, pid) {
                    Some(eff) => self.apply_effect(core, eff),
                    None => {
                        self.blocked.insert(core, true);
                        Some(Pump::Idle)
                    }
                }
            }
            SyscallEffect::RequestStarted { request_id, malicious, .. } => {
                self.begin_request_boundary(svc, request_id, malicious);
                None
            }
            SyscallEffect::ResponseSent { request_id, .. } => {
                if let Some(h) = self.hybrids.get_mut(&core) {
                    h.on_success();
                }
                // The request's private arena dies with its request;
                // forgetting the pages in the scheme keeps stale backup
                // and rollback state from bleeding into whatever maps
                // those vpns next.
                for (vpn, _) in self.os.release_arena(&mut self.machine, svc.pid) {
                    self.scheme.forget_page(svc.asid, vpn);
                }
                if let Some(inf) = self.in_flight.remove(&core) {
                    // Seal this request's compartment: its page tags are
                    // now a discardable unit should a later request fault
                    // on state it poisoned.
                    self.scheme.seal_compartment(svc.asid, request_id, inf.malicious);
                    let c = self.machine.core(core);
                    self.report.samples.push(RequestSample {
                        request_id,
                        cycles: c.cycles() - inf.start_cycles,
                        instructions: c.retired() - inf.start_retired,
                        malicious: inf.malicious,
                        core,
                        completed_at: c.cycles(),
                    });
                    self.report.served += 1;
                    if !inf.malicious {
                        self.report.benign_served += 1;
                    }
                }
                None
            }
            SyscallEffect::CheckpointRequested { .. } => {
                self.take_macro(svc);
                None
            }
            SyscallEffect::Exited { .. } => Some(Pump::Halted),
        }
    }

    fn begin_request_boundary(&mut self, svc: Service, request_id: u64, malicious: bool) {
        // GTS++ / boundary work for the scheme.
        if let Some((space, phys)) = self.machine.space_and_phys_mut(svc.asid) {
            let cost = self.scheme.begin_request(svc.asid, space, phys);
            self.machine.core_mut(svc.core).add_stall_cycles(cost);
        }
        self.monitor.snapshot_shadow(svc.asid);
        let take =
            self.hybrids.get_mut(&svc.core).is_some_and(HybridController::on_request_boundary);
        if take {
            self.take_macro(svc);
        }
        let core = self.machine.core(svc.core);
        self.in_flight.insert(
            svc.core,
            InFlight {
                request_id,
                malicious,
                start_cycles: core.cycles(),
                start_retired: core.retired(),
            },
        );
    }

    fn take_macro(&mut self, svc: Service) {
        // Prefer the OS's request-boundary context (PC parked on the
        // `net_recv` syscall): a macro restore then picks up the next
        // request cleanly instead of replaying a stale one.
        let context = self
            .os
            .process(svc.pid)
            .and_then(|p| p.mark.as_ref().map(|m| m.context))
            .unwrap_or_else(|| self.machine.core(svc.core).context());
        let seq = self.hybrids.get(&svc.core).map_or(0, HybridController::requests_seen);
        let (ckpt, cycles) = take_macro_checkpoint(&self.machine, svc.asid, context, seq);
        self.macro_ckpts.insert(svc.core, ckpt);
        self.machine.core_mut(svc.core).add_stall_cycles(cycles);
    }

    /// The recovery path (§3.3): quiesce, roll back memory + resources +
    /// context + monitoring state, resume at the request boundary.
    fn recover(&mut self, core: usize, cause: FailureCause) {
        let svc = self.services[&core];
        self.machine.quiesce_for_recovery(core);
        self.blocked.insert(core, false);

        let inf = self.in_flight.remove(&core);
        // Detection latency: how far into the in-flight request the core
        // got before the failure surfaced. Read before any rollback below
        // can touch core state.
        let insns_into_request =
            inf.map_or(0, |i| self.machine.core(core).retired().saturating_sub(i.start_retired));
        let level =
            self.hybrids.get_mut(&core).map_or(RecoveryLevel::Micro, HybridController::on_failure);
        let mut cycles = 0u64;

        let effective_level = match level {
            RecoveryLevel::Macro if self.macro_ckpts.contains_key(&core) => RecoveryLevel::Macro,
            RecoveryLevel::Macro => RecoveryLevel::Micro, // no checkpoint yet
            RecoveryLevel::Micro => RecoveryLevel::Micro,
        };

        // The failed request's private arena is torn down in every
        // recovery flavor, before memory rollback, so no lazily-pending
        // restore ever targets a freed frame.
        for (vpn, _) in self.os.release_arena(&mut self.machine, svc.pid) {
            self.scheme.forget_page(svc.asid, vpn);
        }

        let mut retried = false;
        let mut discarded = None;
        let mut discarded_was_malicious = false;
        match effective_level {
            RecoveryLevel::Micro => {
                if let Some((space, phys)) = self.machine.space_and_phys_mut(svc.asid) {
                    cycles += self.scheme.fail_and_rollback(svc.asid, space, phys);
                }
                // Rewind-and-discard (compartment path): a *fault* in a
                // request means either its own bug — or a dereference of
                // state poisoned by an earlier, already-answered request.
                // `fail_and_rollback` above has purged the failed
                // request's own tags, so if the faulting load's line was
                // last written by a *sealed* compartment, that compartment
                // is the culprit: discard exactly its lines and requeue
                // the victim, which retries on healed state. Everyone
                // else's pages are untouched.
                if matches!(cause, FailureCause::Fault) && inf.is_some() {
                    if let Some(suspect) = self.scheme.fault_suspect(svc.asid) {
                        cycles += self.scheme.discard_compartment(svc.asid, suspect.gts);
                        discarded = Some(suspect.request_id);
                        discarded_was_malicious = suspect.malicious;
                        retried = self.os.requeue_front(svc.pid);
                    }
                }
                let had_mark = self.os.rollback_resources(&mut self.machine, svc.pid);
                self.monitor.rollback_shadow(svc.asid);
                if !had_mark {
                    // Failure before any request was accepted: restart the
                    // service at its entry point.
                    self.machine.core_mut(core).set_pc(svc.entry);
                    self.machine.core_mut(core).set_reg(Reg::SP, svc.initial_sp);
                    self.machine.core_mut(core).clear_halt();
                }
            }
            RecoveryLevel::Macro => {
                self.scheme.forget(svc.asid);
                let ckpt = &self.macro_ckpts[&core];
                cycles += restore_macro_checkpoint(&mut self.machine, svc.asid, core, ckpt);
                self.os.rollback_resources(&mut self.machine, svc.pid);
                self.monitor.rollback_shadow(svc.asid);
            }
        }

        self.report.detections.push(Detection {
            cause,
            request_id: inf.map(|i| i.request_id),
            was_malicious: inf.is_some_and(|i| i.malicious),
            level: effective_level,
            at_cycle: self.machine.core(core).cycles(),
            insns_into_request,
            core,
            retried,
            discarded,
            discarded_was_malicious,
        });

        self.machine.core_mut(core).add_stall_cycles(cycles + MICRO_RECOVERY_BASE_CYCLES);
        self.machine.resume_after_recovery(core);
    }

    /// Injects a transient hardware fault on `core`, driving the full
    /// recovery path exactly as a real fault would (the fleet harness's
    /// rejuvenation-under-fault experiments; cf. continuous SoC
    /// rejuvenation in the related work). The in-flight request, if any,
    /// is rolled back and recorded as a [`FailureCause::Fault`] detection.
    ///
    /// # Panics
    ///
    /// Panics when `core` has no deployed service.
    pub fn inject_fault(&mut self, core: usize) {
        assert!(self.services.contains_key(&core), "no service on core {core}");
        self.recover(core, FailureCause::Fault);
    }

    /// Records that the harness quarantined schedule entry `index`
    /// instead of delivering it (the fleet analogue of the paper rolling
    /// back *past* a malicious request, §3.3.2). Idempotent: replaying
    /// the skip after a revival does not double-count.
    pub fn note_quarantined(&mut self, index: u64) {
        if !self.report.quarantined.contains(&index) {
            self.report.quarantined.push(index);
        }
    }

    /// Derives the availability metrics for this run, given how many
    /// benign requests the harness queued (the denominator the report
    /// cannot know by itself).
    #[must_use]
    pub fn availability(&self, benign_sent: u64) -> crate::AvailabilityReport {
        crate::AvailabilityReport::from_run(&self.report, benign_sent)
    }

    /// Drains the whole FIFO through the monitor; returns the owning core
    /// and kind of the first violation, if any (remaining backlog is
    /// still consumed — the hardware keeps streaming until the stall
    /// lands).
    fn drain_fifo(&mut self) -> Option<(usize, ViolationKind)> {
        let mut first = None;
        while let Some(ev) = self.machine.fifo_mut().pop() {
            let ev_asid = ev.asid;
            if let Some(v) = self.monitor.process(ev) {
                if first.is_none() {
                    if let Some(owner) =
                        self.services.values().find(|s| s.asid == ev_asid).map(|s| s.core)
                    {
                        first = Some((owner, v.kind));
                    }
                }
            }
        }
        first
    }

    /// Captures the system's complete mutable state — machine (cores,
    /// caches, TLBs, DRAM, physical frames, FIFO, CAM, watchdog), OS
    /// (processes, resource tables, filesystem, request queues), monitor
    /// (shadow stacks, clock), scheme backup state, hybrid controllers,
    /// macro checkpoints and the run report — without perturbing any of
    /// it. `freeze` never mutates the system, so a run that checkpoints
    /// is simulation-cycle-identical to one that does not.
    ///
    /// Configuration ([`SystemConfig`]) and deployment metadata (service
    /// table, monitor policies) are *not* captured: a thawing harness
    /// rebuilds the system with [`IndraSystem::new`] + deploys the same
    /// images, then injects this state via [`IndraSystem::restore_state`].
    #[must_use]
    pub fn freeze(&self) -> SystemState {
        self.freeze_inner(true)
    }

    /// Like [`IndraSystem::freeze`] but with `machine.phys` left empty.
    /// The replica layer digests physical frames incrementally (dirty
    /// frames only), so per-vote captures must not clone every resident
    /// frame. The result is **not** restorable — encode-only.
    #[must_use]
    pub fn freeze_sans_phys(&self) -> SystemState {
        self.freeze_inner(false)
    }

    fn freeze_inner(&self, with_phys: bool) -> SystemState {
        fn sorted<T>(mut v: Vec<(usize, T)>) -> Vec<(usize, T)> {
            v.sort_unstable_by_key(|&(core, _)| core);
            v
        }
        SystemState {
            machine: if with_phys {
                self.machine.save_state()
            } else {
                self.machine.save_state_sans_phys()
            },
            os: self.os.save_state(),
            monitor: self.monitor.save_state(),
            scheme: self.scheme.save_state(),
            hybrids: sorted(self.hybrids.iter().map(|(&core, h)| (core, h.save_state())).collect()),
            macro_ckpts: sorted(
                self.macro_ckpts.iter().map(|(&core, c)| (core, c.save_state())).collect(),
            ),
            in_flight: sorted(
                self.in_flight
                    .iter()
                    .map(|(&core, i)| {
                        (
                            core,
                            InFlightState {
                                request_id: i.request_id,
                                malicious: i.malicious,
                                start_cycles: i.start_cycles,
                                start_retired: i.start_retired,
                            },
                        )
                    })
                    .collect(),
            ),
            blocked: sorted(self.blocked.iter().map(|(&core, &b)| (core, b)).collect()),
            report: self.report.clone(),
        }
    }

    /// Overwrites every piece of mutable state with `state`, previously
    /// captured by [`IndraSystem::freeze`]. The system must first be
    /// reconstructed the same way it was built before the freeze — same
    /// [`SystemConfig`], same images deployed in the same order — so that
    /// non-captured deployment state (service table, monitor policies,
    /// scheme registration) matches; `restore_state` then replaces all
    /// run-time state, resuming execution bit-exactly where the frozen
    /// system stopped.
    ///
    /// # Panics
    ///
    /// Panics when the state's shape contradicts the rebuilt system
    /// (core-count mismatch, scheme-kind mismatch) — that means the
    /// harness rebuilt the system with a different configuration.
    pub fn restore_state(&mut self, state: &SystemState) {
        self.machine.restore_state(&state.machine);
        self.os.restore_state(&state.os);
        self.monitor.restore_state(&state.monitor);
        self.scheme.load_state(&state.scheme);
        self.hybrids.clear();
        for (core, h) in &state.hybrids {
            let mut controller = HybridController::new(self.cfg.hybrid);
            controller.restore_state(h);
            self.hybrids.insert(*core, controller);
        }
        self.macro_ckpts.clear();
        for (core, c) in &state.macro_ckpts {
            self.macro_ckpts.insert(*core, MacroCheckpoint::from_state(c));
        }
        self.in_flight.clear();
        for (core, i) in &state.in_flight {
            self.in_flight.insert(
                *core,
                InFlight {
                    request_id: i.request_id,
                    malicious: i.malicious,
                    start_cycles: i.start_cycles,
                    start_retired: i.start_retired,
                },
            );
        }
        self.blocked.clear();
        for &(core, b) in &state.blocked {
            self.blocked.insert(core, b);
        }
        self.report = state.report.clone();
    }
}

/// A request in flight on one core, in durable form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InFlightState {
    /// Request id.
    pub request_id: u64,
    /// Ground-truth tag.
    pub malicious: bool,
    /// Core cycle count when processing began.
    pub start_cycles: u64,
    /// Instructions retired when processing began.
    pub start_retired: u64,
}

/// Complete mutable state of an [`IndraSystem`], captured by
/// [`IndraSystem::freeze`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemState {
    /// Hardware state: cores, caches, TLBs, DRAM, physical memory,
    /// trace FIFO, CAM filters, watchdog, page tables, frame allocators.
    pub machine: MachineState,
    /// Kernel-lite state: processes, descriptors, filesystem, queues.
    pub os: OsState,
    /// Resurrector state: shadow stacks, metadata, clock, violations.
    pub monitor: MonitorState,
    /// Backup-scheme state, tagged by scheme kind.
    pub scheme: SchemeState,
    /// Per-core hybrid recovery controllers, sorted by core.
    pub hybrids: Vec<(usize, HybridControllerState)>,
    /// Per-core macro checkpoints, sorted by core.
    pub macro_ckpts: Vec<(usize, MacroCheckpointState)>,
    /// Per-core in-flight requests, sorted by core.
    pub in_flight: Vec<(usize, InFlightState)>,
    /// Per-core blocked-on-recv flags, sorted by core.
    pub blocked: Vec<(usize, bool)>,
    /// The run report so far.
    pub report: RunReport,
}

/// Upcasts a scheme to its hook supertrait (explicit function keeps the
/// coercion site obvious).
fn upcast(scheme: &mut dyn Scheme) -> &mut dyn indra_sim::BackupHook {
    scheme
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_isa::assemble;
    use indra_sim::CoreRole;

    /// Echo server in IR32 assembly.
    const ECHO: &str = "
    main:
        la  s0, buf
    loop:
        mv  a0, s0
        li  a1, 64
        syscall 1
        mv  a2, a0
        mv  a0, s0
        mv  a1, a2
        syscall 2
        j loop
    .data
    buf: .space 64
    ";

    fn system(scheme: SchemeKind) -> IndraSystem {
        let cfg = SystemConfig { scheme, ..SystemConfig::default() };
        let mut sys = IndraSystem::new(cfg);
        let img = assemble("echo", ECHO).unwrap();
        sys.deploy(&img).unwrap();
        sys
    }

    #[test]
    fn serves_benign_requests() {
        let mut sys = system(SchemeKind::Delta);
        for i in 0..5u8 {
            sys.push_request(vec![b'a' + i; 8], false);
        }
        let state = sys.run(1_000_000);
        assert_eq!(state, RunState::Idle);
        let report = sys.report();
        assert_eq!(report.served, 5);
        assert_eq!(report.benign_served, 5);
        assert!(report.detections.is_empty());
        let responses = sys.take_responses();
        assert_eq!(responses.len(), 5);
        assert_eq!(responses[0].data, vec![b'a'; 8]);
        assert!(sys.report().mean_benign_response() > 0.0);
    }

    #[test]
    fn idle_then_more_requests() {
        let mut sys = system(SchemeKind::Delta);
        assert_eq!(sys.run(100_000), RunState::Idle);
        sys.push_request(b"x".to_vec(), false);
        assert_eq!(sys.run(1_000_000), RunState::Idle);
        assert_eq!(sys.report().served, 1);
    }

    #[test]
    fn monitoring_off_still_serves() {
        let cfg =
            SystemConfig { scheme: SchemeKind::None, monitoring: false, ..SystemConfig::default() };
        let mut sys = IndraSystem::new(cfg);
        let img = assemble("echo", ECHO).unwrap();
        sys.deploy(&img).unwrap();
        sys.push_request(b"hello".to_vec(), false);
        assert_eq!(sys.run(1_000_000), RunState::Idle);
        assert_eq!(sys.report().served, 1);
        assert_eq!(sys.monitor().stats().events, 0, "no trace with monitoring off");
    }

    #[test]
    fn fifo_backpressure_counts_stalls() {
        let mut cfg = SystemConfig::default();
        cfg.machine.fifo_entries = 4;
        let mut sys = IndraSystem::new(cfg);
        // A call-dense program to flood the FIFO.
        let img = assemble(
            "callheavy",
            "
        main:
            la  s0, buf
        loop:
            mv  a0, s0
            li  a1, 16
            syscall 1
            call f
            call f
            call f
            call f
            call f
            call f
            mv  a0, s0
            li  a1, 4
            syscall 2
            j loop
        f:
            addi sp, sp, -4
            sw ra, 0(sp)
            call g
            lw ra, 0(sp)
            addi sp, sp, 4
            ret
        g:
            ret
        .data
        buf: .space 16
        ",
        )
        .unwrap();
        sys.deploy(&img).unwrap();
        for _ in 0..10 {
            sys.push_request(b"req".to_vec(), false);
        }
        assert_eq!(sys.run(10_000_000), RunState::Idle);
        assert_eq!(sys.report().served, 10);
        assert!(sys.machine().fifo().stats().full_stalls > 0, "4-entry FIFO must stall");
        assert_eq!(sys.report().false_positives(), 0);
    }

    #[test]
    fn two_services_share_one_resurrector() {
        // The Fig. 2 topology: one resurrector, several resurrectees.
        let mut cfg = SystemConfig::default();
        cfg.machine.cores =
            vec![CoreRole::Resurrector, CoreRole::Resurrectee, CoreRole::Resurrectee];
        let mut sys = IndraSystem::new(cfg);
        let img = assemble("echo", ECHO).unwrap();
        let pid_a = sys.deploy(&img).unwrap();
        let pid_b = sys.deploy(&img).unwrap();
        assert_ne!(pid_a, pid_b);
        assert_eq!(sys.service_cores(), vec![1, 2]);

        for i in 0..4u8 {
            sys.push_request_to(1, vec![b'A' + i; 4], false);
            sys.push_request_to(2, vec![b'a' + i; 4], false);
        }
        let state = sys.run(5_000_000);
        assert_eq!(state, RunState::Idle);
        assert_eq!(sys.report().served, 8);

        let from_a = sys.take_responses_from(1);
        let from_b = sys.take_responses_from(2);
        assert_eq!(from_a.len(), 4);
        assert_eq!(from_b.len(), 4);
        assert_eq!(from_a[0].data, b"AAAA");
        assert_eq!(from_b[0].data, b"aaaa");
        // Samples are attributed to the right cores.
        assert!(sys.report().samples.iter().any(|s| s.core == 1));
        assert!(sys.report().samples.iter().any(|s| s.core == 2));
    }

    #[test]
    fn indra_system_is_send() {
        // The fleet executor moves whole systems onto worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<IndraSystem>();
        assert_send::<RunReport>();
    }

    #[test]
    fn fault_injection_recovers_and_is_audited() {
        let mut sys = system(SchemeKind::Delta);
        sys.push_request(b"before".to_vec(), false);
        assert_eq!(sys.run(1_000_000), RunState::Idle);
        let core = sys.service_cores()[0];
        sys.inject_fault(core);
        sys.push_request(b"after".to_vec(), false);
        assert_eq!(sys.run(1_000_000), RunState::Idle);
        assert_eq!(sys.report().served, 2, "service must survive the injected fault");
        assert_eq!(sys.report().detections.len(), 1);
        assert_eq!(sys.report().detections[0].cause, FailureCause::Fault);
        let avail = sys.availability(2);
        assert_eq!(avail.recoveries, 1);
        assert!((avail.benign_service_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_report_json_is_deterministic() {
        let mut sys = system(SchemeKind::Delta);
        sys.push_request(b"x".to_vec(), false);
        assert_eq!(sys.run(1_000_000), RunState::Idle);
        let a = sys.report().to_json();
        let b = sys.report().clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"served\":1,"));
        assert!(a.contains("\"samples\":[{\"request_id\":"));
    }

    #[test]
    fn deploy_fails_when_cores_exhausted() {
        let mut sys = system(SchemeKind::Delta);
        let img = assemble("echo", ECHO).unwrap();
        assert!(sys.deploy(&img).is_err(), "the dual-core machine has one resurrectee");
    }
}
