//! Deterministic chaos injection: seeded host-level fault schedules
//! that exercise the supervisor's revival machinery.
//!
//! Chaos is *planned*, never random at run time: a [`ChaosConfig`]
//! (seed included) expands into one [`ShardChaosPlan`] per shard via
//! [`indra_rng::derive_seed`], exactly the way traffic schedules are
//! derived. Every event fires at a deterministic point in *simulated*
//! progress (a served-request threshold or a schedule index), so the
//! same chaos seed reproduces the same crash sites — and the same
//! [`crate::SupervisionStats`] counts — on every run.
//!
//! Four fault families, mirroring what a real fleet suffers:
//!
//! * **kills** — the shard thread panics at a run-slice boundary
//!   (`panic_any` with a [`ChaosPanic`] payload the supervisor's panic
//!   hook silences).
//! * **stalls** — the shard thread stops heartbeating and sleeps; the
//!   supervisor's wall-clock deadline must catch it, cancel the zombie
//!   and revive from the checkpoint.
//! * **WAL tears** — the tail of `journal.wal` is truncated and
//!   bit-flipped *before* the kill, exercising persist's
//!   longest-valid-prefix recovery end-to-end.
//! * **guest bursts** — `IndraSystem::inject_fault` volleys against the
//!   simulated service. Bursts are part of the *simulated* history:
//!   their position is persisted in the shard's progress blob
//!   (`chaos_cursor`) so a revival replays them at the identical served
//!   count, keeping the guest trajectory byte-deterministic.
//!
//! A **poison** request is the fifth family: delivering one fixed
//! schedule index panics the shard every time it is replayed, until the
//! supervisor notices the repeat offender and quarantines it — the
//! fleet analogue of the paper's rollback *past* the malicious request
//! (§3.3.2).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use indra_rng::{derive_seed, Rng};

use crate::FleetConfig;

/// Per-shard chaos intensity. All counts are *per shard*; the poison
/// request (at most one per fleet) targets shard 0 so its two extra
/// deaths stay bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Chaos master seed; shard `i` draws its plan from
    /// `derive_seed(seed, i)`. Independent of the traffic seed.
    pub seed: u64,
    /// Forced panics per shard.
    pub kills: u32,
    /// Heartbeat stalls per shard.
    pub stalls: u32,
    /// Stall duration in wall milliseconds; 0 = auto (the supervisor
    /// picks a duration safely past its own deadline).
    pub stall_ms: u64,
    /// Journal-tail corruptions (truncate + bit-flip, then die) per
    /// shard. Degrades to a plain kill when the shard has no journal
    /// yet.
    pub wal_tears: u32,
    /// Guest-level fault bursts per shard.
    pub guest_bursts: u32,
    /// `IndraSystem::inject_fault` calls per burst.
    pub burst_faults: u32,
    /// Plant one poison request (on shard 0) whose delivery kills the
    /// shard until the supervisor quarantines it.
    pub poison: bool,
    /// Silent guest-memory corruptions per shard: a seeded bit flip in
    /// a resident physical frame with **no monitor-visible event** — no
    /// trace record, no fault injection, no panic. The trace monitor is
    /// structurally blind to these; only the replica layer's divergence
    /// voting detects them (the plain fleet path carries the events in
    /// its plan but never applies them).
    pub stealth: u32,
}

impl ChaosConfig {
    /// No chaos at all (the supervised executor still runs, so the
    /// "off" profile measures pure supervision overhead).
    #[must_use]
    pub fn off() -> ChaosConfig {
        ChaosConfig {
            seed: 0xc4a0_5eed,
            kills: 0,
            stalls: 0,
            stall_ms: 0,
            wal_tears: 0,
            guest_bursts: 0,
            burst_faults: 0,
            poison: false,
            stealth: 0,
        }
    }

    /// Whether this configuration injects anything.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.kills == 0
            && self.stalls == 0
            && self.wal_tears == 0
            && self.guest_bursts == 0
            && !self.poison
            && self.stealth == 0
    }

    /// Resolves a named profile.
    ///
    /// Profiles: `off`, `light` (1 kill), `kills` (2 kills), `stalls`
    /// (1 stall), `wal` (1 journal tear), `poison` (1 poison request),
    /// `stealth` (1 silent memory corruption — monitor-blind, replica
    /// voting only), `default` (1 kill + 1 tear + 1 guest burst),
    /// `heavy` (2 kills + 1 stall + 1 tear + 2 bursts + poison).
    ///
    /// # Errors
    ///
    /// The list of known profiles, when `name` is not one of them.
    pub fn profile(name: &str) -> Result<ChaosConfig, String> {
        let base = ChaosConfig::off();
        Ok(match name {
            "off" => base,
            "light" => ChaosConfig { kills: 1, ..base },
            "kills" => ChaosConfig { kills: 2, ..base },
            "stalls" => ChaosConfig { stalls: 1, ..base },
            "wal" => ChaosConfig { wal_tears: 1, ..base },
            "poison" => ChaosConfig { poison: true, ..base },
            "stealth" => ChaosConfig { stealth: 1, ..base },
            "default" => {
                ChaosConfig { kills: 1, wal_tears: 1, guest_bursts: 1, burst_faults: 2, ..base }
            }
            "heavy" => ChaosConfig {
                kills: 2,
                stalls: 1,
                wal_tears: 1,
                guest_bursts: 2,
                burst_faults: 2,
                poison: true,
                ..base
            },
            other => {
                return Err(format!(
                    "unknown chaos profile {other:?} (try off, light, kills, stalls, wal, \
                     poison, stealth, default, heavy)"
                ))
            }
        })
    }
}

/// What a host-level chaos event does to the shard thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEventKind {
    /// Panic at the next run-slice boundary.
    Kill,
    /// Stop heartbeating (sleep) until the supervisor cancels us.
    Stall,
    /// Corrupt the journal tail, then panic.
    WalTear,
}

/// One host-level event, triggered the first time the shard's served
/// count reaches `at_served` at a run-slice boundary. One-shot: the
/// trigger flag survives revival, so a replayed trajectory does not
/// re-fire it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostEvent {
    /// Served-request threshold.
    pub at_served: u64,
    /// The fault to inject.
    pub kind: HostEventKind,
}

/// One guest-level fault volley, fired when the served count reaches
/// `at_served`. Unlike host events, bursts re-fire on replay (tracked
/// by the persisted `chaos_cursor`) because they are part of the
/// simulated history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestBurst {
    /// Served-request threshold.
    pub at_served: u64,
    /// `inject_fault` calls in this volley.
    pub faults: u32,
}

/// One silent memory corruption, fired by the *replica runner only*
/// when the targeted replica's delivered count reaches `at_served`:
/// a single bit flip in a seeded resident physical frame, with no trace
/// event, no injected fault and no panic. The monitor never sees it —
/// divergence voting is the only detector. Salts (not concrete targets)
/// are planned so the choice adapts to whatever is resident at strike
/// time while staying a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealthEvent {
    /// Delivered-request threshold on the victim replica.
    pub at_served: u64,
    /// Selects the victim replica (`replica_salt % K`).
    pub replica_salt: u64,
    /// Selects the resident frame (`frame_salt % resident count`).
    pub frame_salt: u64,
    /// Selects the byte offset within the frame (`byte_salt % 4096`).
    pub byte_salt: u64,
    /// Selects the bit to flip (`bit % 8`).
    pub bit: u8,
}

/// A shard's complete chaos schedule — a pure function of
/// `(chaos seed, fleet config, shard index)`.
#[derive(Debug, Clone)]
pub struct ShardChaosPlan {
    /// Host events, sorted by threshold.
    pub events: Vec<HostEvent>,
    /// Guest bursts, sorted by threshold.
    pub bursts: Vec<GuestBurst>,
    /// Quarantinable schedule index whose delivery panics the shard.
    pub poison: Option<u64>,
    /// Silent corruptions, sorted by threshold (replica runner only).
    pub stealth: Vec<StealthEvent>,
}

/// Expands the chaos config into shard `shard`'s plan.
///
/// Host-event thresholds are sampled *without replacement* from the
/// interior of the quota so two one-shot events never share a trigger
/// point on one shard.
#[must_use]
pub fn plan_for_shard(chaos: &ChaosConfig, cfg: &FleetConfig, shard: usize) -> ShardChaosPlan {
    let mut rng = Rng::seed_from_u64(derive_seed(chaos.seed, shard as u64));
    let quota = u64::from(cfg.requests_per_shard);
    if quota < 4 || chaos.is_off() {
        return ShardChaosPlan {
            events: Vec::new(),
            bursts: Vec::new(),
            poison: None,
            stealth: Vec::new(),
        };
    }

    // Candidate thresholds 1..quota-1, partially Fisher-Yates shuffled;
    // the first k become the host-event trigger points.
    let host_kinds: Vec<HostEventKind> = std::iter::empty()
        .chain(std::iter::repeat_n(HostEventKind::Kill, chaos.kills as usize))
        .chain(std::iter::repeat_n(HostEventKind::Stall, chaos.stalls as usize))
        .chain(std::iter::repeat_n(HostEventKind::WalTear, chaos.wal_tears as usize))
        .collect();
    let mut candidates: Vec<u64> = (1..quota).collect();
    let picks = host_kinds.len().min(candidates.len());
    for i in 0..picks {
        let j = i + rng.range_u64(0, (candidates.len() - i) as u64) as usize;
        candidates.swap(i, j);
    }
    let mut events: Vec<HostEvent> = host_kinds
        .into_iter()
        .take(picks)
        .enumerate()
        .map(|(i, kind)| HostEvent { at_served: candidates[i], kind })
        .collect();
    events.sort_by_key(|e| e.at_served);

    let mut bursts: Vec<GuestBurst> = (0..chaos.guest_bursts)
        .map(|_| GuestBurst {
            at_served: rng.range_u64(1, quota),
            faults: chaos.burst_faults.max(1),
        })
        .collect();
    bursts.sort_by_key(|b| b.at_served);
    bursts.dedup_by_key(|b| b.at_served);

    let poison = (chaos.poison && shard == 0).then(|| rng.range_u64(quota / 3, 2 * quota / 3));

    let mut stealth: Vec<StealthEvent> = (0..chaos.stealth)
        .map(|_| StealthEvent {
            at_served: rng.range_u64(1, quota),
            replica_salt: rng.next_u64(),
            frame_salt: rng.next_u64(),
            byte_salt: rng.next_u64(),
            bit: rng.gen_u8() % 8,
        })
        .collect();
    stealth.sort_by_key(|s| s.at_served);
    stealth.dedup_by_key(|s| s.at_served);

    ShardChaosPlan { events, bursts, poison, stealth }
}

/// The panic payload of a chaos-injected death. The supervisor installs
/// a panic hook that suppresses these (dozens of intentional panics
/// must not spam stderr) while delegating every *real* panic to the
/// previous hook.
#[derive(Debug)]
pub(crate) struct ChaosPanic {
    /// Which shard the event targeted.
    pub shard: usize,
    /// Event family, for the supervisor's crash log.
    pub what: &'static str,
}

/// Installs the [`ChaosPanic`]-filtering panic hook, once per process.
pub(crate) fn install_chaos_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload for the supervision log.
pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(c) = payload.downcast_ref::<ChaosPanic>() {
        format!("chaos {} (shard {})", c.what, c.shard)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

/// One incarnation's view of the shard's chaos plan: the plan itself
/// plus the *shared* one-shot trigger flags that survive revival.
#[derive(Debug, Clone)]
pub(crate) struct ChaosRuntime {
    pub shard: usize,
    pub plan: Arc<ShardChaosPlan>,
    /// One flag per host event, shared across every incarnation of the
    /// shard so a revived trajectory never re-fires a one-shot fault.
    pub fired: Arc<Vec<AtomicBool>>,
    /// Resolved stall duration (the supervisor substitutes its own
    /// deadline-derived default for `stall_ms == 0`).
    pub stall_ms: u64,
    /// The shard's `journal.wal`, when checkpointing is on.
    pub wal_path: Option<PathBuf>,
}

impl ChaosRuntime {
    pub fn new(
        shard: usize,
        plan: Arc<ShardChaosPlan>,
        fired: Arc<Vec<AtomicBool>>,
        stall_ms: u64,
        wal_path: Option<PathBuf>,
    ) -> ChaosRuntime {
        debug_assert_eq!(plan.events.len(), fired.len());
        ChaosRuntime { shard, plan, fired, stall_ms, wal_path }
    }

    /// Fires every due, unfired host event. Kills and tears panic (the
    /// caller is expected to run under `catch_unwind`); a stall sleeps
    /// in short slices until it elapses or `cancel` is raised. Returns
    /// `true` when the incarnation was cancelled mid-stall and should
    /// exit quietly.
    pub fn fire_host(&self, served: u64, cancel: Option<&Arc<AtomicBool>>) -> bool {
        for (i, ev) in self.plan.events.iter().enumerate() {
            if served < ev.at_served || self.fired[i].swap(true, Ordering::SeqCst) {
                continue;
            }
            match ev.kind {
                HostEventKind::Kill => {
                    std::panic::panic_any(ChaosPanic { shard: self.shard, what: "kill" })
                }
                HostEventKind::WalTear => {
                    if let Some(path) = &self.wal_path {
                        tear_wal_tail(path);
                    }
                    std::panic::panic_any(ChaosPanic { shard: self.shard, what: "wal-tear" })
                }
                HostEventKind::Stall => {
                    let until = Instant::now() + Duration::from_millis(self.stall_ms);
                    loop {
                        if cancel.is_some_and(|c| c.load(Ordering::SeqCst)) {
                            return true;
                        }
                        let now = Instant::now();
                        if now >= until {
                            break;
                        }
                        std::thread::sleep((until - now).min(Duration::from_millis(10)));
                    }
                }
            }
        }
        false
    }

    /// The poison schedule index, if this shard has one.
    pub fn poison(&self) -> Option<u64> {
        self.plan.poison
    }

    /// Panics with the poison payload — called by the shard loop when
    /// it is about to deliver the poison request.
    pub fn poison_strike(&self) -> ! {
        std::panic::panic_any(ChaosPanic { shard: self.shard, what: "poison" })
    }
}

/// Corrupts the journal tail the way a dying disk would: truncate a few
/// bytes, flip one more. Persist's longest-valid-prefix recovery must
/// shrug this off and fall back to the previous checkpoint. A journal
/// too short to hold a record (header only, or absent) is left alone —
/// the event degrades to a plain kill.
fn tear_wal_tail(path: &std::path::Path) {
    let Ok(mut bytes) = std::fs::read(path) else { return };
    const HEADER: usize = 16;
    if bytes.len() <= HEADER + 8 {
        return;
    }
    let cut = bytes.len() - 5;
    bytes.truncate(cut);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    let _ = std::fs::write(path, &bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetConfig {
        FleetConfig::quick()
    }

    #[test]
    fn plans_are_a_pure_function_of_seed_and_shard() {
        let chaos = ChaosConfig::profile("heavy").unwrap();
        let a = plan_for_shard(&chaos, &cfg(), 1);
        let b = plan_for_shard(&chaos, &cfg(), 1);
        assert_eq!(a.events, b.events);
        assert_eq!(a.bursts, b.bursts);
        assert_eq!(a.poison, b.poison);
        let c = plan_for_shard(&chaos, &cfg(), 2);
        assert!(a.events != c.events || a.bursts != c.bursts, "shards draw distinct plans");
    }

    #[test]
    fn host_event_thresholds_are_distinct_and_interior() {
        let chaos = ChaosConfig::profile("heavy").unwrap();
        let quota = u64::from(cfg().requests_per_shard);
        for shard in 0..8 {
            let plan = plan_for_shard(&chaos, &cfg(), shard);
            let mut seen: Vec<u64> = plan.events.iter().map(|e| e.at_served).collect();
            let n = seen.len();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), n, "shard {shard}: duplicate trigger points");
            assert!(seen.iter().all(|&t| t >= 1 && t < quota));
        }
    }

    #[test]
    fn poison_targets_shard_zero_only() {
        let chaos = ChaosConfig::profile("poison").unwrap();
        let p0 = plan_for_shard(&chaos, &cfg(), 0);
        let quota = u64::from(cfg().requests_per_shard);
        let idx = p0.poison.expect("shard 0 gets the poison request");
        assert!(idx >= quota / 3 && idx < 2 * quota / 3, "poison sits mid-schedule");
        assert_eq!(plan_for_shard(&chaos, &cfg(), 1).poison, None);
        assert!(p0.events.is_empty() && p0.bursts.is_empty());
    }

    #[test]
    fn profiles_resolve_and_unknown_names_error() {
        let names = ["off", "light", "kills", "stalls", "wal", "poison", "stealth", "default"];
        for name in names.iter().chain(&["heavy"]) {
            assert!(ChaosConfig::profile(name).is_ok(), "profile {name}");
        }
        assert!(ChaosConfig::profile("off").unwrap().is_off());
        assert!(!ChaosConfig::profile("default").unwrap().is_off());
        assert!(!ChaosConfig::profile("stealth").unwrap().is_off());
        let err = ChaosConfig::profile("frobnicate").unwrap_err();
        assert!(err.contains("unknown chaos profile"));
    }

    #[test]
    fn tiny_quotas_disable_chaos_instead_of_panicking() {
        let chaos = ChaosConfig::profile("heavy").unwrap();
        let tiny = FleetConfig { requests_per_shard: 2, ..FleetConfig::quick() };
        let plan = plan_for_shard(&chaos, &tiny, 0);
        assert!(plan.events.is_empty() && plan.bursts.is_empty() && plan.poison.is_none());
        assert!(plan.stealth.is_empty());
    }

    #[test]
    fn stealth_plans_are_interior_silent_and_deterministic() {
        let chaos = ChaosConfig::profile("stealth").unwrap();
        let quota = u64::from(cfg().requests_per_shard);
        for shard in 0..4 {
            let plan = plan_for_shard(&chaos, &cfg(), shard);
            assert_eq!(plan.stealth.len(), 1);
            let ev = plan.stealth[0];
            assert!(ev.at_served >= 1 && ev.at_served < quota);
            assert_eq!(ev.bit, ev.bit % 8);
            // Stealth injects *nothing* the monitor or supervisor sees.
            assert!(plan.events.is_empty() && plan.bursts.is_empty() && plan.poison.is_none());
            assert_eq!(plan.stealth, plan_for_shard(&chaos, &cfg(), shard).stealth);
        }
    }

    #[test]
    fn wal_tear_damages_only_the_tail() {
        let dir = std::env::temp_dir().join(format!("indra-chaos-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.wal");
        let body: Vec<u8> = (0..200u16).map(|b| b as u8).collect();
        std::fs::write(&path, &body).unwrap();
        tear_wal_tail(&path);
        let torn = std::fs::read(&path).unwrap();
        assert_eq!(torn.len(), 195, "five bytes truncated");
        assert_eq!(torn[..190], body[..190], "prefix untouched");
        // Header-only journals are left alone.
        std::fs::write(&path, [0u8; 20]).unwrap();
        tear_wal_tail(&path);
        assert_eq!(std::fs::read(&path).unwrap().len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
