//! The parallel fleet executor: one OS thread per shard, one channel
//! into the aggregator.
//!
//! Shards run under [`std::thread::scope`] so they may borrow the
//! config; each sends [`ShardMsg`]s through an [`std::sync::mpsc`]
//! channel. The aggregator (the calling thread) folds latency samples
//! into a [`Histogram`] *while shards are still running* — arrival
//! order varies with the OS scheduler, but histogram recording is
//! commutative and per-shard summaries are slotted by shard index, so
//! the final [`FleetStats`] is schedule-independent.

use std::sync::mpsc;
use std::time::Instant;

use indra_bench::Histogram;
use indra_persist::SnapshotStore;

use crate::persist::{encode_meta, RestoredShard};
use crate::report::ShardHostPerf;
use crate::shard::{run_shard_inner, ShardHarness, ShardMsg, ShardOutput};
use crate::{FleetConfig, FleetReport, FleetStats};

/// Runs the whole fleet and aggregates the result.
///
/// # Panics
///
/// Panics if `cfg.shards == 0`, `cfg.apps` is empty, or a shard thread
/// panics (shard panics propagate — a broken shard must not silently
/// vanish from the aggregate).
#[must_use]
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let mut fresh: Vec<Option<RestoredShard>> = Vec::new();
    fresh.resize_with(cfg.shards, || None);
    run_fleet_with(cfg, fresh)
}

/// [`run_fleet`], with some shards thawed from checkpoints (`None`
/// entries start fresh). When `cfg.store_dir` is set the fleet config
/// is persisted to `fleet.meta` before any shard starts, so a crash at
/// any later point leaves a resumable directory.
pub(crate) fn run_fleet_with(
    cfg: &FleetConfig,
    restored: Vec<Option<RestoredShard>>,
) -> FleetReport {
    assert!(cfg.shards > 0, "fleet needs at least one shard");
    assert_eq!(restored.len(), cfg.shards, "one restore slot per shard");
    let started = Instant::now();
    let plans = cfg.plans();

    if let Some(dir) = &cfg.store_dir {
        if cfg.checkpoint_every > 0 {
            let store = SnapshotStore::create(dir.as_str()).expect("checkpoint store");
            store.write_meta(&encode_meta(cfg)).expect("checkpoint meta");
        }
    }

    let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
    outputs.resize_with(cfg.shards, || None);
    let mut latency = Histogram::new();

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<ShardMsg>();
        for (plan, thawed) in plans.into_iter().zip(restored) {
            let tx = tx.clone();
            scope.spawn(move || {
                let shard = plan.shard;
                run_shard_inner(cfg, plan, thawed, ShardHarness::default(), |msg| {
                    // The aggregator outlives every shard; a send can
                    // only fail if it panicked, and then the scope is
                    // already unwinding.
                    let _ = tx.send(msg);
                })
                .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
            });
        }
        drop(tx);
        // Live aggregation: the loop ends once every shard has dropped
        // its sender (i.e. finished).
        for msg in rx {
            match msg {
                ShardMsg::Sample(s) => latency.record(s.cycles),
                ShardMsg::Beat(_) => {} // heartbeats matter only under supervision
                ShardMsg::Done(out) => {
                    let slot = out.plan.shard;
                    outputs[slot] = Some(*out);
                }
            }
        }
    });

    let outputs: Vec<ShardOutput> = outputs
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| panic!("shard {i} never reported")))
        .collect();
    let stats = aggregate_stats(&outputs, latency);
    let shard_host = outputs
        .iter()
        .map(|o| ShardHostPerf {
            shard: o.plan.shard,
            insns: o.insns,
            wall_seconds: o.wall_seconds,
            superblocks: o.superblocks,
            predecode: o.predecode,
            wal_bytes: o.wal.bytes,
            wal_pages: o.wal.pages,
        })
        .collect();

    let wall_seconds = started.elapsed().as_secs_f64();
    let wall_req_per_sec =
        if wall_seconds > 0.0 { stats.served as f64 / wall_seconds } else { 0.0 };
    FleetReport { stats, wall_seconds, wall_req_per_sec, shard_host, supervision: None }
}

/// Folds shard outputs (already in shard order) into fleet-wide
/// [`FleetStats`]. Public because the service daemon (`indra-serve`)
/// aggregates its live and replayed shards through the exact same fold
/// — byte-identity of the two paths depends on sharing this code.
#[must_use]
pub fn aggregate_stats(outputs: &[ShardOutput], latency: Histogram) -> FleetStats {
    let per_shard: Vec<_> = outputs.iter().map(ShardOutput::summary).collect();
    let sum = |f: fn(&crate::ShardSummary) -> u64| per_shard.iter().map(f).sum::<u64>();
    let served = sum(|s| s.served);
    let benign_sent = sum(|s| s.benign_sent);
    let benign_served = sum(|s| s.benign_served);
    let max_shard_cycles = per_shard.iter().map(|s| s.sim_cycles).max().unwrap_or(0);
    FleetStats {
        shards: outputs.len(),
        served,
        benign_sent,
        benign_served,
        attacks_sent: sum(|s| s.attacks_sent),
        detections: sum(|s| s.detections),
        true_detections: sum(|s| s.true_detections),
        detection_latency_insns: sum(|s| s.detection_latency_insns),
        micro_recoveries: sum(|s| s.micro_recoveries),
        macro_recoveries: sum(|s| s.macro_recoveries),
        faults_injected: sum(|s| s.faults_injected),
        benign_service_ratio: if benign_sent == 0 {
            1.0
        } else {
            benign_served as f64 / benign_sent as f64
        },
        max_shard_cycles,
        total_shard_cycles: sum(|s| s.sim_cycles),
        served_per_mcycle: if max_shard_cycles == 0 {
            0.0
        } else {
            served as f64 * 1_000_000.0 / max_shard_cycles as f64
        },
        latency: latency.summary(),
        per_shard,
    }
}
