#![warn(missing_docs)]
//! # indra-fleet — sharded parallel fleet execution
//!
//! The paper's consolidation argument (§3.5, Fig. 2) is that one
//! physical multicore hosts *many* resurrector/resurrectee cells, each
//! running an independent network service. This crate scales the
//! simulator to that shape: a fleet of [`crate::shard`]s — each a
//! complete [`indra_core::IndraSystem`] — runs across OS threads, each
//! driven by its own deterministic open-loop traffic schedule (benign
//! requests with a configurable fraction of real exploit payloads),
//! optionally under periodic hardware-fault injection.
//!
//! Per-request latency samples stream over a channel to an aggregator
//! that folds them into a log-bucketed [`indra_bench::Histogram`] and
//! produces a fleet-wide [`FleetReport`]: throughput (requests per
//! million simulated cycles and wall-clock requests per second),
//! benign-service ratio, detection and recovery counts, and latency
//! percentiles.
//!
//! ## Determinism contract
//!
//! [`FleetStats`] is a pure function of [`FleetConfig`]. Each shard's
//! traffic comes from a seed derived with
//! [`indra_rng::derive_seed`]`(fleet_seed, shard_index)`; shards never
//! share simulated state; the aggregator folds shard summaries in shard
//! index order and histogram merging is commutative. Run the same
//! config on 1 thread or 16, today or tomorrow — `stats` (and its JSON)
//! is byte-identical. Wall-clock figures live outside `stats` in
//! [`FleetReport`].
//!
//! ```no_run
//! use indra_fleet::{run_fleet, FleetConfig};
//!
//! let report = run_fleet(&FleetConfig { shards: 6, ..FleetConfig::quick() });
//! println!("{}", report.stats);
//! assert_eq!(report.stats.true_detections, report.stats.attacks_sent);
//! ```

mod chaos;
mod executor;
mod persist;
mod report;
mod shard;
mod supervisor;
pub mod sweep;

pub use chaos::{
    plan_for_shard, ChaosConfig, GuestBurst, HostEvent, HostEventKind, ShardChaosPlan, StealthEvent,
};
pub use executor::{aggregate_stats, run_fleet};
pub use persist::{resume_fleet, RestoredShard, ShardProgress};
pub use report::{
    FleetReport, FleetStats, ShardHostPerf, ShardSummary, ShardSupervision, SupervisionStats,
};
pub use shard::{
    run_shard, shard_schedule, BeatMsg, SampleMsg, ShardError, ShardMsg, ShardOutput, ShardPlan,
};
pub use supervisor::{run_fleet_supervised, SupervisorConfig};

use indra_core::SchemeKind;
use indra_rng::derive_seed;
use indra_workloads::ServiceApp;

/// Everything that determines a fleet run.
///
/// The deterministic portion of the result ([`FleetStats`]) depends on
/// nothing else — see the crate docs for the contract.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (independent resurrector/resurrectee cells).
    pub shards: usize,
    /// Services assigned round-robin to shards (shard `i` runs
    /// `apps[i % apps.len()]`).
    pub apps: Vec<ServiceApp>,
    /// Request quota per shard.
    pub requests_per_shard: u32,
    /// Work-scale divisor applied to every workload (1 = paper scale).
    pub scale: u32,
    /// Attack probability per request, in ‰ (0–1000).
    pub attack_per_mille: u32,
    /// Mean inter-arrival gap of the open-loop schedule, in resurrectee
    /// cycles.
    pub mean_gap_cycles: u64,
    /// Master seed; shard `i` derives its own via
    /// [`indra_rng::derive_seed`].
    pub seed: u64,
    /// Checkpoint scheme every shard deploys.
    pub scheme: SchemeKind,
    /// Trace FIFO entries per shard machine.
    pub fifo_entries: usize,
    /// CAM filter entries per shard machine.
    pub cam_entries: usize,
    /// Inject a hardware fault after every N served requests
    /// (`None` = no fault injection).
    pub fault_every: Option<u32>,
    /// Instruction-budget granularity of the run loop; smaller slices
    /// stream samples sooner at more scheduling overhead.
    pub run_slice_steps: u64,
    /// Include the dormant-pointer attack in the mix. Off by default:
    /// dormant plants are (by design) detected only when a *later*
    /// benign request trips the planted pointer, which breaks the
    /// "every injected attack is detected" accounting the fleet report
    /// asserts on.
    pub include_dormant_attacks: bool,
    /// Durably checkpoint each shard after every N served requests
    /// (0 = no checkpointing). Checkpointing never touches simulated
    /// state, so [`FleetStats`] is identical with it on or off.
    pub checkpoint_every: u32,
    /// Checkpoint directory (required for `checkpoint_every > 0`; see
    /// [`resume_fleet`]).
    pub store_dir: Option<String>,
    /// Crash simulation: each shard stops dead (reports `completed =
    /// false`) after writing this many checkpoints. Never persisted —
    /// a resumed run always runs to quota.
    pub halt_after_checkpoints: Option<u64>,
    /// Host-side fast paths (predecode cache, translation micro-cache)
    /// in every shard machine. [`FleetStats`] is byte-identical either
    /// way; the flag exists so equivalence tests can force the slow
    /// reference path.
    pub fast_paths: bool,
    /// Superblock execution engine in every shard machine: hot basic
    /// blocks run as pre-validated micro-op traces with batched
    /// accounting. Host-side only — [`FleetStats`] is byte-identical
    /// either way; independent of `fast_paths`.
    pub superblocks: bool,
    /// Per-request compartments in every shard system: page-group
    /// tagging by request, sealed-compartment discard on attributed
    /// faults, and victim-request retry. [`FleetStats`] is
    /// byte-identical either way on attack-free, fault-free runs; under
    /// attack the compartment path *changes* outcomes (that is its
    /// job — benign requests that would be dropped are retried).
    pub compartments: bool,
    /// Graceful-shutdown flag (e.g. raised by a SIGINT/SIGTERM handler).
    /// Checked at every run-slice boundary — a checkpoint boundary — so
    /// a shutdown drains cleanly: the store is never torn mid-write and
    /// the run is resumable. The interrupted run reports `completed =
    /// false` on unfinished shards. Never persisted to `fleet.meta`
    /// (like `halt_after_checkpoints`, it describes this process, not
    /// the run).
    pub shutdown: Option<&'static std::sync::atomic::AtomicBool>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            apps: ServiceApp::ALL.to_vec(),
            requests_per_shard: 32,
            scale: 20,
            attack_per_mille: 125,
            mean_gap_cycles: 50_000,
            seed: 0x1d7a_f1ee,
            scheme: SchemeKind::Delta,
            fifo_entries: 32,
            cam_entries: 32,
            fault_every: None,
            run_slice_steps: 200_000,
            include_dormant_attacks: false,
            checkpoint_every: 0,
            store_dir: None,
            halt_after_checkpoints: None,
            fast_paths: true,
            superblocks: true,
            compartments: true,
            shutdown: None,
        }
    }
}

impl FleetConfig {
    /// A configuration small enough for tests: fewer requests at a
    /// deeper work-scale reduction.
    #[must_use]
    pub fn quick() -> FleetConfig {
        FleetConfig { requests_per_shard: 12, scale: 40, ..FleetConfig::default() }
    }

    /// The plan for shard `shard` (app round-robin, derived seed).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    #[must_use]
    pub fn plan(&self, shard: usize) -> ShardPlan {
        assert!(!self.apps.is_empty(), "fleet needs at least one app");
        ShardPlan {
            shard,
            app: self.apps[shard % self.apps.len()],
            seed: derive_seed(self.seed, shard as u64),
        }
    }

    /// Plans for every shard, in shard order.
    #[must_use]
    pub fn plans(&self) -> Vec<ShardPlan> {
        (0..self.shards).map(|s| self.plan(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_robin_apps_and_vary_seeds() {
        let cfg = FleetConfig { shards: 8, ..FleetConfig::quick() };
        let plans = cfg.plans();
        assert_eq!(plans.len(), 8);
        assert_eq!(plans[0].app, ServiceApp::Ftpd);
        assert_eq!(plans[6].app, ServiceApp::Ftpd); // 6 apps wrap
        let mut seeds: Vec<u64> = plans.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "derived seeds must be distinct");
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_plan() {
        let cfg = FleetConfig::quick();
        let a = shard_schedule(&cfg, &cfg.plan(2));
        let b = shard_schedule(&cfg, &cfg.plan(2));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_cycle, y.arrival_cycle);
            assert_eq!(x.malicious, y.malicious);
            assert_eq!(x.data, y.data);
        }
    }
}
