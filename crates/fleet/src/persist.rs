//! Fleet-level durability: checkpoint metadata, shard progress blobs
//! and crash-safe resume.
//!
//! The snapshot machinery in `indra-persist` captures a frozen
//! [`indra_core::SystemState`]; this module adds the two pieces the
//! *fleet* needs on top:
//!
//! * `fleet.meta` — the [`FleetConfig`] that produced the run, so
//!   `--resume <dir>` needs no other flags. Determinism makes this
//!   sufficient: the schedule, images and seeds are all pure functions
//!   of the config.
//! * a per-shard progress blob (stored opaquely alongside each
//!   snapshot) carrying the harness-side loop variables that live
//!   outside the simulated system: the schedule cursor, the
//!   fault-injection bookkeeping and the remaining step budget.
//!
//! [`resume_fleet`] reopens a store, rebuilds the config, restores
//! every shard that managed to checkpoint (shards that never reached
//! their first checkpoint simply start over — same result, by
//! determinism) and runs the fleet to the original quota. The stats of
//! a killed-and-resumed run are byte-identical to an uninterrupted one.

use std::path::Path;

use indra_core::{SchemeKind, SystemState};
use indra_persist::{PersistError, SnapshotStore, WireReader, WireWriter};
use indra_workloads::ServiceApp;

use crate::executor::run_fleet_with;
use crate::{FleetConfig, FleetReport};

/// Harness-side loop state of one shard at a checkpoint boundary —
/// everything `run_shard` tracks outside the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProgress {
    /// Schedule entries already consumed (delivered into the system).
    pub cursor: u64,
    /// Hardware faults injected so far.
    pub faults_injected: u64,
    /// `report().served` when the last fault was injected.
    pub served_at_last_fault: u64,
    /// Remaining instruction-step budget.
    pub steps_left: u64,
    /// `report().served` when this checkpoint was taken.
    pub served_at_last_ckpt: u64,
    /// Guest-level chaos bursts already injected (see
    /// [`crate::chaos::GuestBurst`]): bursts are simulated history, so
    /// a revival must replay exactly the ones the checkpoint had not
    /// yet absorbed. Zero outside chaos runs.
    pub chaos_cursor: u64,
}

/// A shard's restored starting point: the thawed system plus the
/// harness loop state that goes with it.
#[derive(Debug)]
pub struct RestoredShard {
    /// The frozen system at the last valid checkpoint.
    pub state: SystemState,
    /// Harness loop variables at that checkpoint.
    pub progress: ShardProgress,
}

pub(crate) fn encode_progress(p: &ShardProgress) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(p.cursor);
    w.u64(p.faults_injected);
    w.u64(p.served_at_last_fault);
    w.u64(p.steps_left);
    w.u64(p.served_at_last_ckpt);
    w.u64(p.chaos_cursor);
    w.finish()
}

pub(crate) fn decode_progress(bytes: &[u8]) -> Result<ShardProgress, PersistError> {
    let mut r = WireReader::new(bytes);
    let p = ShardProgress {
        cursor: r.u64("progress cursor")?,
        faults_injected: r.u64("progress faults")?,
        served_at_last_fault: r.u64("progress fault mark")?,
        steps_left: r.u64("progress budget")?,
        served_at_last_ckpt: r.u64("progress ckpt mark")?,
        chaos_cursor: r.u64("progress chaos cursor")?,
    };
    r.expect_exhausted("progress trailing bytes")?;
    Ok(p)
}

fn app_tag(app: ServiceApp) -> u8 {
    ServiceApp::ALL.iter().position(|&a| a == app).expect("app in ALL") as u8
}

fn scheme_tag(scheme: SchemeKind) -> u8 {
    match scheme {
        SchemeKind::None => 0,
        SchemeKind::Delta => 1,
        SchemeKind::VirtualCheckpoint => 2,
        SchemeKind::SoftwareCheckpoint => 3,
        SchemeKind::UndoLog => 4,
    }
}

fn scheme_from_tag(tag: u8) -> Result<SchemeKind, PersistError> {
    Ok(match tag {
        0 => SchemeKind::None,
        1 => SchemeKind::Delta,
        2 => SchemeKind::VirtualCheckpoint,
        3 => SchemeKind::SoftwareCheckpoint,
        4 => SchemeKind::UndoLog,
        _ => return Err(PersistError::Corrupt { context: "unknown scheme kind" }),
    })
}

/// Serializes the deterministic portion of a [`FleetConfig`] for
/// `fleet.meta`. `store_dir` and `halt_after_checkpoints` are excluded
/// on purpose: the first is supplied by `--resume <dir>` itself, the
/// second is a crash-simulation knob that must not survive a resume.
pub(crate) fn encode_meta(cfg: &FleetConfig) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.usize(cfg.shards);
    w.seq(cfg.apps.len());
    for &app in &cfg.apps {
        w.u8(app_tag(app));
    }
    w.u32(cfg.requests_per_shard);
    w.u32(cfg.scale);
    w.u32(cfg.attack_per_mille);
    w.u64(cfg.mean_gap_cycles);
    w.u64(cfg.seed);
    w.u8(scheme_tag(cfg.scheme));
    w.usize(cfg.fifo_entries);
    w.usize(cfg.cam_entries);
    w.opt_u32(cfg.fault_every);
    w.u64(cfg.run_slice_steps);
    w.bool(cfg.include_dormant_attacks);
    w.u32(cfg.checkpoint_every);
    w.bool(cfg.fast_paths);
    w.bool(cfg.superblocks);
    w.bool(cfg.compartments);
    w.finish()
}

pub(crate) fn decode_meta(bytes: &[u8]) -> Result<FleetConfig, PersistError> {
    let mut r = WireReader::new(bytes);
    let shards = r.usize("meta shards")?;
    let n = r.seq(1, "meta apps")?;
    let mut apps = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8("meta app")? as usize;
        apps.push(
            *ServiceApp::ALL
                .get(tag)
                .ok_or(PersistError::Corrupt { context: "unknown service app" })?,
        );
    }
    let cfg = FleetConfig {
        shards,
        apps,
        requests_per_shard: r.u32("meta requests")?,
        scale: r.u32("meta scale")?,
        attack_per_mille: r.u32("meta attack rate")?,
        mean_gap_cycles: r.u64("meta gap")?,
        seed: r.u64("meta seed")?,
        scheme: scheme_from_tag(r.u8("meta scheme")?)?,
        fifo_entries: r.usize("meta fifo")?,
        cam_entries: r.usize("meta cam")?,
        fault_every: r.opt_u32("meta fault every")?,
        run_slice_steps: r.u64("meta slice")?,
        include_dormant_attacks: r.bool("meta dormant")?,
        checkpoint_every: r.u32("meta ckpt every")?,
        store_dir: None,
        halt_after_checkpoints: None,
        fast_paths: r.bool("meta fast paths")?,
        superblocks: r.bool("meta superblocks")?,
        compartments: r.bool("meta compartments")?,
        shutdown: None,
    };
    r.expect_exhausted("meta trailing bytes")?;
    Ok(cfg)
}

/// Resumes a fleet from a checkpoint directory and runs it to the
/// original quota.
///
/// Reads `fleet.meta`, recovers every shard's last valid checkpoint
/// (base snapshot + journal replay), and re-runs the fleet with those
/// shards thawed mid-flight; shards with no checkpoint on disk start
/// from scratch. Because every shard is deterministic, the resulting
/// [`FleetStats`](crate::FleetStats) — and its JSON — are byte-identical
/// to the run that was killed, had it been left to finish.
///
/// # Errors
///
/// Typed [`PersistError`] when the directory, metadata, a base
/// snapshot or a progress blob is unreadable or corrupt. A torn
/// journal tail is *not* an error (that is the normal crash shape); a
/// config whose shard count disagrees with the on-disk layout is.
///
/// # Panics
///
/// Panics only where [`crate::run_fleet`] does (zero shards, shard
/// thread panic).
pub fn resume_fleet(dir: impl AsRef<Path>) -> Result<FleetReport, PersistError> {
    let dir = dir.as_ref();
    let store = SnapshotStore::open(dir)?;
    let mut cfg = decode_meta(&store.read_meta()?)?;
    cfg.store_dir = Some(dir.to_string_lossy().into_owned());

    let mut restored: Vec<Option<RestoredShard>> = Vec::new();
    for shard in 0..cfg.shards {
        restored.push(match store.load_shard(shard)? {
            Some(loaded) => Some(RestoredShard {
                state: loaded.state,
                progress: decode_progress(&loaded.progress)?,
            }),
            None => None,
        });
    }
    Ok(run_fleet_with(&cfg, restored))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        let cfg = FleetConfig {
            shards: 3,
            apps: vec![ServiceApp::Bind, ServiceApp::Imap],
            fault_every: Some(5),
            checkpoint_every: 4,
            store_dir: Some("/tmp/x".into()),
            halt_after_checkpoints: Some(2),
            fast_paths: false,
            superblocks: false,
            compartments: false,
            ..FleetConfig::quick()
        };
        let back = decode_meta(&encode_meta(&cfg)).unwrap();
        assert_eq!(back.shards, 3);
        assert_eq!(back.apps, vec![ServiceApp::Bind, ServiceApp::Imap]);
        assert_eq!(back.fault_every, Some(5));
        assert_eq!(back.checkpoint_every, 4);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.scheme, cfg.scheme);
        assert!(!back.fast_paths, "fast_paths must survive the meta roundtrip");
        assert!(!back.superblocks, "superblocks must survive the meta roundtrip");
        assert!(!back.compartments, "compartments must survive the meta roundtrip");
        // Resume-supplied fields never travel through the meta file.
        assert_eq!(back.store_dir, None);
        assert_eq!(back.halt_after_checkpoints, None);
    }

    #[test]
    fn progress_roundtrip() {
        let p = ShardProgress {
            cursor: 17,
            faults_injected: 2,
            served_at_last_fault: 12,
            steps_left: 1_000_000,
            served_at_last_ckpt: 16,
            chaos_cursor: 3,
        };
        assert_eq!(decode_progress(&encode_progress(&p)).unwrap(), p);
        assert!(decode_progress(&[1, 2, 3]).is_err());
    }
}
