//! Aggregated fleet reporting.
//!
//! The deterministic measurements live in [`FleetStats`]: for a fixed
//! [`crate::FleetConfig`] (seed included), `stats` — and therefore its
//! JSON rendering — is byte-identical across runs and across any thread
//! interleaving, because every shard's traffic is a pure function of its
//! derived seed and shards are folded in shard order. Wall-clock numbers
//! (which *do* vary run to run) are quarantined in the outer
//! [`FleetReport`] so determinism stays assertable.

use indra_bench::HistogramSummary;
use indra_core::json::{json_array, JsonObject};
use indra_workloads::ServiceApp;

/// One shard's contribution to the fleet aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index (0-based).
    pub shard: usize,
    /// The service this shard ran.
    pub app: ServiceApp,
    /// Requests fully served.
    pub served: u64,
    /// Benign requests queued by the traffic schedule.
    pub benign_sent: u64,
    /// Benign requests served.
    pub benign_served: u64,
    /// Attack requests queued by the traffic schedule.
    pub attacks_sent: u64,
    /// Recovery episodes on this shard.
    pub detections: u64,
    /// Detections whose in-flight request was genuinely malicious.
    pub true_detections: u64,
    /// Instructions attackers got retired before detection, summed over
    /// this shard's recovery episodes (per-detection
    /// `insns_into_request`) — the fleet-level detection-latency
    /// scoring counter the red-team campaign drives down.
    pub detection_latency_insns: u64,
    /// Micro (per-request rollback) recoveries.
    pub micro_recoveries: u64,
    /// Macro (application checkpoint) recoveries.
    pub macro_recoveries: u64,
    /// Injected hardware faults survived.
    pub faults_injected: u64,
    /// Resurrectee cycles this shard's service consumed.
    pub sim_cycles: u64,
    /// Fraction of honest clients served, in `[0, 1]`.
    pub benign_service_ratio: f64,
    /// Whether the shard finished its whole schedule (a `false` here
    /// means the service halted or ran out of budget — it is *not*
    /// silently dropped from the aggregate).
    pub completed: bool,
}

impl ShardSummary {
    /// JSON with fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("shard", self.shard as u64)
            .str("app", self.app.name())
            .u64("served", self.served)
            .u64("benign_sent", self.benign_sent)
            .u64("benign_served", self.benign_served)
            .u64("attacks_sent", self.attacks_sent)
            .u64("detections", self.detections)
            .u64("true_detections", self.true_detections)
            .u64("detection_latency_insns", self.detection_latency_insns)
            .u64("micro_recoveries", self.micro_recoveries)
            .u64("macro_recoveries", self.macro_recoveries)
            .u64("faults_injected", self.faults_injected)
            .u64("sim_cycles", self.sim_cycles)
            .f64("benign_service_ratio", self.benign_service_ratio)
            .bool("completed", self.completed)
            .finish()
    }
}

/// The deterministic fleet-wide aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Shard count the fleet ran with.
    pub shards: usize,
    /// Per-shard summaries, in shard order.
    pub per_shard: Vec<ShardSummary>,
    /// Requests fully served, fleet-wide.
    pub served: u64,
    /// Benign requests queued, fleet-wide.
    pub benign_sent: u64,
    /// Benign requests served, fleet-wide.
    pub benign_served: u64,
    /// Attack requests queued, fleet-wide.
    pub attacks_sent: u64,
    /// Recovery episodes, fleet-wide.
    pub detections: u64,
    /// Detections that hit genuinely malicious requests.
    pub true_detections: u64,
    /// Instructions attackers retired before detection, fleet-wide (sum
    /// of per-detection `insns_into_request`).
    pub detection_latency_insns: u64,
    /// Micro recoveries, fleet-wide.
    pub micro_recoveries: u64,
    /// Macro recoveries, fleet-wide.
    pub macro_recoveries: u64,
    /// Injected hardware faults, fleet-wide.
    pub faults_injected: u64,
    /// Fleet benign-service ratio (served honest clients over queued).
    pub benign_service_ratio: f64,
    /// The slowest shard's resurrectee cycle count — the fleet's
    /// sim-time makespan.
    pub max_shard_cycles: u64,
    /// Sum of all shards' cycles (total simulated work).
    pub total_shard_cycles: u64,
    /// Requests served per million simulated cycles of makespan — the
    /// sim-time throughput that scales with shard count.
    pub served_per_mcycle: f64,
    /// Latency digest over every served request (resurrectee cycles,
    /// delivery → response).
    pub latency: HistogramSummary,
}

impl FleetStats {
    /// JSON with fixed field order; equal stats give equal bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("shards", self.shards as u64)
            .u64("served", self.served)
            .u64("benign_sent", self.benign_sent)
            .u64("benign_served", self.benign_served)
            .u64("attacks_sent", self.attacks_sent)
            .u64("detections", self.detections)
            .u64("true_detections", self.true_detections)
            .u64("detection_latency_insns", self.detection_latency_insns)
            .u64("micro_recoveries", self.micro_recoveries)
            .u64("macro_recoveries", self.macro_recoveries)
            .u64("faults_injected", self.faults_injected)
            .f64("benign_service_ratio", self.benign_service_ratio)
            .u64("max_shard_cycles", self.max_shard_cycles)
            .u64("total_shard_cycles", self.total_shard_cycles)
            .f64("served_per_mcycle", self.served_per_mcycle)
            .raw("latency", &self.latency.to_json())
            .raw("per_shard", &json_array(self.per_shard.iter().map(ShardSummary::to_json)))
            .finish()
    }
}

/// One shard's host-side performance: simulated instructions over the
/// shard loop's wall clock. Wall-clock data varies run to run, so it
/// lives here in the outer report, never in [`FleetStats`].
#[derive(Debug, Clone, Copy)]
pub struct ShardHostPerf {
    /// Shard index.
    pub shard: usize,
    /// Instructions retired across the shard machine's cores.
    pub insns: u64,
    /// Host wall-clock seconds the shard loop ran.
    pub wall_seconds: f64,
    /// Superblock-engine counters (translations, hits, block
    /// instructions, invalidations, fallback reasons) summed over the
    /// shard machine's cores. Host-side observability only.
    pub superblocks: indra_sim::SuperblockStats,
    /// Predecode-cache counters summed over the shard machine's cores.
    pub predecode: indra_sim::PredecodeStats,
    /// WAL-delta bytes this shard's durable checkpoints wrote (0 when
    /// checkpointing is off). Host-side observability only.
    pub wal_bytes: u64,
    /// Page frames serialized across this shard's checkpoints — with
    /// compartment-scoped deltas upstream, only pages dirtied since the
    /// previous cut.
    pub wal_pages: u64,
}

impl ShardHostPerf {
    /// Host MIPS (million simulated instructions per wall second).
    #[must_use]
    pub fn mips(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.insns as f64 / self.wall_seconds / 1.0e6
        } else {
            0.0
        }
    }

    /// Fraction of retired instructions executed inside superblocks, in
    /// `[0, 1]` — the engine's coverage of the dynamic instruction
    /// stream.
    #[must_use]
    pub fn superblock_coverage(&self) -> f64 {
        if self.insns > 0 {
            self.superblocks.block_insns as f64 / self.insns as f64
        } else {
            0.0
        }
    }

    /// JSON with fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let sb = &self.superblocks;
        let pd = &self.predecode;
        JsonObject::new()
            .u64("shard", self.shard as u64)
            .u64("insns", self.insns)
            .f64("wall_seconds", self.wall_seconds)
            .f64("mips", self.mips())
            .raw(
                "superblocks",
                &JsonObject::new()
                    .u64("translations", sb.translations)
                    .u64("hits", sb.hits)
                    .u64("block_insns", sb.block_insns)
                    .f64("coverage", self.superblock_coverage())
                    .u64("stale", sb.stale)
                    .u64("invalidations", sb.invalidations)
                    .u64("exit_events", sb.exit_events)
                    .u64("exit_self_modified", sb.exit_self_modified)
                    .u64("exit_traps", sb.exit_traps)
                    .u64("exit_faults", sb.exit_faults)
                    .finish(),
            )
            .raw(
                "predecode",
                &JsonObject::new()
                    .u64("hits", pd.hits)
                    .u64("misses", pd.misses)
                    .u64("invalidations", pd.invalidations)
                    .finish(),
            )
            .raw(
                "wal",
                &JsonObject::new()
                    .u64("bytes", self.wal_bytes)
                    .u64("pages", self.wal_pages)
                    .finish(),
            )
            .finish()
    }
}

/// One shard's view of the supervision run: how often it died, how it
/// died, and what the supervisor did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSupervision {
    /// Shard index.
    pub shard: usize,
    /// Times the supervisor respawned this shard.
    pub revivals: u32,
    /// Deaths by panic (caught via `catch_unwind`).
    pub crashes: u32,
    /// Deaths by missed heartbeat deadline (hung shard cancelled).
    pub hangs: u32,
    /// Deaths by typed harness error (e.g. an unreadable checkpoint).
    pub harness_errors: u32,
    /// Schedule indices quarantined as poison requests (a request whose
    /// delivery killed the shard twice in a row).
    pub quarantined: Vec<u64>,
    /// Whether the supervisor gave up on this shard after exhausting
    /// its revival budget.
    pub abandoned: bool,
    /// Mean wall-clock milliseconds from death detection to respawn
    /// (includes drain wait and backoff); 0 if the shard never died.
    pub mean_time_to_revive_ms: f64,
    /// Replica-vote divergences observed on this shard's group (0 when
    /// the shard ran unreplicated).
    pub divergences: u32,
    /// Divergent replicas masked and revived from the majority
    /// checkpoint.
    pub divergent_masked: u32,
    /// Scheduled proactive rejuvenations performed on this group.
    pub rejuvenations: u32,
}

impl ShardSupervision {
    /// JSON with fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("shard", self.shard as u64)
            .u64("revivals", u64::from(self.revivals))
            .u64("crashes", u64::from(self.crashes))
            .u64("hangs", u64::from(self.hangs))
            .u64("harness_errors", u64::from(self.harness_errors))
            .raw("quarantined", &json_array(self.quarantined.iter().map(u64::to_string)))
            .bool("abandoned", self.abandoned)
            .f64("mean_time_to_revive_ms", self.mean_time_to_revive_ms)
            .u64("divergences", u64::from(self.divergences))
            .u64("divergent_masked", u64::from(self.divergent_masked))
            .u64("rejuvenations", u64::from(self.rejuvenations))
            .finish()
    }
}

/// Fleet-wide supervision outcome, produced only by
/// [`crate::run_fleet_supervised`]. Wall-clock derived (MTTR,
/// availability under real kills), so it lives in [`FleetReport`],
/// never in [`FleetStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionStats {
    /// Total shard revivals across the fleet.
    pub revivals: u64,
    /// Total panic deaths.
    pub crashes: u64,
    /// Total hang deaths (heartbeat deadline missed).
    pub hangs: u64,
    /// Total typed harness-error deaths.
    pub harness_errors: u64,
    /// Chaos host events that actually fired (kills + stalls + WAL
    /// tears), summed over shards.
    pub chaos_host_events: u64,
    /// Requests quarantined as poison, fleet-wide.
    pub quarantined_requests: u64,
    /// Shards abandoned after exhausting their revival budget.
    pub abandoned_shards: u64,
    /// Requests *disposed of* — served, or neutralized as detected
    /// attacks — over requests scheduled, in `[0, 1]`. 1.0 means no
    /// request was lost to quarantine or abandonment; chaos that only
    /// kills and revives leaves it at 1.0 because revival replays are
    /// exact.
    pub availability: f64,
    /// Mean time-to-revive over every revival in the run, in wall
    /// milliseconds (0 when nothing died).
    pub mean_time_to_revive_ms: f64,
    /// Replica-vote divergences detected fleet-wide (0 unless the fleet
    /// ran with `--replicas >= 2`).
    pub divergences: u64,
    /// Divergent replicas masked and revived from a majority checkpoint
    /// (K >= 3 only; 2-way groups quarantine instead of masking).
    pub divergent_masked: u64,
    /// Scheduled proactive rejuvenations performed fleet-wide.
    pub rejuvenations: u64,
    /// Per-shard supervision rows, in shard order.
    pub per_shard: Vec<ShardSupervision>,
}

impl SupervisionStats {
    /// JSON with fixed field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("revivals", self.revivals)
            .u64("crashes", self.crashes)
            .u64("hangs", self.hangs)
            .u64("harness_errors", self.harness_errors)
            .u64("chaos_host_events", self.chaos_host_events)
            .u64("quarantined_requests", self.quarantined_requests)
            .u64("abandoned_shards", self.abandoned_shards)
            .f64("availability", self.availability)
            .f64("mean_time_to_revive_ms", self.mean_time_to_revive_ms)
            .u64("divergences", self.divergences)
            .u64("divergent_masked", self.divergent_masked)
            .u64("rejuvenations", self.rejuvenations)
            .raw("per_shard", &json_array(self.per_shard.iter().map(ShardSupervision::to_json)))
            .finish()
    }
}

impl std::fmt::Display for SupervisionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "supervision: {} revivals ({} crashes, {} hangs, {} harness errors), \
             {} quarantined, {} abandoned; availability {:.4}, mean revive {:.1} ms; \
             {} divergences ({} masked), {} rejuvenations",
            self.revivals,
            self.crashes,
            self.hangs,
            self.harness_errors,
            self.quarantined_requests,
            self.abandoned_shards,
            self.availability,
            self.mean_time_to_revive_ms,
            self.divergences,
            self.divergent_masked,
            self.rejuvenations
        )
    }
}

/// A full fleet run: the deterministic stats plus this run's wall-clock
/// measurements.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The deterministic aggregate.
    pub stats: FleetStats,
    /// Wall-clock seconds the fleet took.
    pub wall_seconds: f64,
    /// Wall-clock throughput in requests per second.
    pub wall_req_per_sec: f64,
    /// Per-shard host MIPS rows, in shard order (wall-clock data —
    /// deliberately outside `stats`).
    pub shard_host: Vec<ShardHostPerf>,
    /// Supervision outcome — `Some` only for
    /// [`crate::run_fleet_supervised`] runs.
    pub supervision: Option<SupervisionStats>,
}

impl FleetReport {
    /// Fleet-wide host MIPS: every shard's instructions over the whole
    /// run's wall clock.
    #[must_use]
    pub fn host_mips(&self) -> f64 {
        let insns: u64 = self.shard_host.iter().map(|h| h.insns).sum();
        if self.wall_seconds > 0.0 {
            insns as f64 / self.wall_seconds / 1.0e6
        } else {
            0.0
        }
    }

    /// Fleet-wide superblock coverage: instructions executed inside
    /// superblocks over all instructions retired, in `[0, 1]`.
    #[must_use]
    pub fn superblock_coverage(&self) -> f64 {
        let insns: u64 = self.shard_host.iter().map(|h| h.insns).sum();
        let block: u64 = self.shard_host.iter().map(|h| h.superblocks.block_insns).sum();
        if insns > 0 {
            block as f64 / insns as f64
        } else {
            0.0
        }
    }

    /// JSON of the whole report (stats plus wall clock).
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .raw("stats", &self.stats.to_json())
            .f64("wall_seconds", self.wall_seconds)
            .f64("wall_req_per_sec", self.wall_req_per_sec)
            .f64("host_mips", self.host_mips())
            .raw("shard_host", &json_array(self.shard_host.iter().map(ShardHostPerf::to_json)))
            .raw(
                "supervision",
                &self.supervision.as_ref().map_or_else(|| "null".into(), SupervisionStats::to_json),
            )
            .finish()
    }
}

impl std::fmt::Display for FleetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet of {} shards: {} served ({} benign of {} sent, ratio {:.3})",
            self.shards,
            self.served,
            self.benign_served,
            self.benign_sent,
            self.benign_service_ratio
        )?;
        writeln!(
            f,
            "attacks: {} sent, {} detections ({} true, {} micro / {} macro recoveries, {} faults injected)",
            self.attacks_sent, self.detections, self.true_detections, self.micro_recoveries,
            self.macro_recoveries, self.faults_injected
        )?;
        write!(
            f,
            "latency cycles p50/p95/p99 = {}/{}/{}; {:.1} req/Mcycle over a {}-cycle makespan",
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.served_per_mcycle,
            self.max_shard_cycles
        )
    }
}
