//! One shard: a complete Fig. 2 cell (resurrector + resurrectee running
//! one service) driven by its own open-loop traffic schedule to a
//! request quota.
//!
//! A shard is deliberately a *whole* [`IndraSystem`] rather than one
//! core of a shared machine: the paper's consolidation topology puts
//! several resurrectees under one resurrector, and the fleet replicates
//! that cell per OS thread so cells never contend on simulated state.
//! Everything a shard does is a pure function of its [`ShardPlan`]
//! (derived seed, app, quota), which is what makes the fleet aggregate
//! reproducible under any thread schedule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use indra_core::{IndraSystem, RunReport, RunState, SystemConfig};
use indra_persist::{CheckpointReceipt, PersistError, SnapshotStore};
use indra_workloads::{
    build_app_scaled, detectable_attack_suite, standard_attack_suite, OpenLoopTraffic,
    ScheduleCursor, ServiceApp, TimedRequest, WorkloadSpec,
};

use crate::chaos::ChaosRuntime;
use crate::persist::{encode_progress, RestoredShard, ShardProgress};
use crate::{FleetConfig, ShardSummary};

/// A typed failure of the shard *harness* itself — as opposed to a
/// failure of the simulated service (which the system handles) or a
/// panic (which the supervisor handles). Keeping these typed matters
/// under supervision: a stray `expect` inside `catch_unwind` would be
/// indistinguishable from a chaos-injected crash.
#[derive(Debug)]
pub enum ShardError {
    /// Deploying the service image into the fresh system failed.
    Deploy(indra_sim::LoadError),
    /// The durable checkpoint store failed.
    Persist(PersistError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Deploy(e) => write!(f, "service deploy failed: {e:?}"),
            ShardError::Persist(e) => write!(f, "checkpoint store failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<PersistError> for ShardError {
    fn from(e: PersistError) -> ShardError {
        ShardError::Persist(e)
    }
}

/// Sentinel for "not delivering anything right now" in
/// [`ShardHarness::delivering`].
pub(crate) const NOT_DELIVERING: u64 = u64::MAX;

/// Supervision hooks threaded into the shard loop. The default (plain
/// `run_fleet`) is inert: no cancellation, nothing quarantined, no
/// chaos.
#[derive(Debug, Default)]
pub(crate) struct ShardHarness {
    /// Cooperative cancellation for this incarnation: checked at every
    /// run-slice boundary (and inside chaos stalls); when raised the
    /// loop returns quietly without emitting [`ShardMsg::Done`].
    pub cancel: Option<Arc<AtomicBool>>,
    /// Quarantined schedule indices — consumed but never delivered.
    pub quarantined: Vec<u64>,
    /// The schedule index currently being delivered ([`NOT_DELIVERING`]
    /// otherwise). The supervisor reads it after a crash to attribute
    /// the death to a specific request: two consecutive deaths of one
    /// shard attributed to the same index mark that request as poison.
    pub delivering: Option<Arc<AtomicU64>>,
    /// This shard's chaos schedule, when running under a chaos profile.
    pub chaos: Option<ChaosRuntime>,
}

impl ShardHarness {
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.load(Ordering::SeqCst))
    }

    fn set_delivering(&self, index: u64) {
        if let Some(d) = &self.delivering {
            d.store(index, Ordering::SeqCst);
        }
    }
}

/// Everything that determines one shard's behavior.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard index.
    pub shard: usize,
    /// The service this shard runs.
    pub app: ServiceApp,
    /// This shard's traffic seed (derived from the fleet seed).
    pub seed: u64,
}

/// What one shard hands the aggregator when it finishes.
#[derive(Debug)]
pub struct ShardOutput {
    /// The plan that produced this output.
    pub plan: ShardPlan,
    /// The system's full run report.
    pub report: RunReport,
    /// Benign requests the schedule queued.
    pub benign_sent: u64,
    /// Attack requests the schedule queued.
    pub attacks_sent: u64,
    /// Hardware faults injected by the harness.
    pub faults_injected: u64,
    /// Resurrectee cycles consumed.
    pub sim_cycles: u64,
    /// Whether the schedule was fully delivered and drained.
    pub completed: bool,
    /// Instructions retired across every core of the shard machine
    /// (deterministic, but only reported host-side).
    pub insns: u64,
    /// Host wall-clock seconds this shard's loop ran. Wall-clock only —
    /// never folded into [`ShardSummary`] or [`crate::FleetStats`].
    pub wall_seconds: f64,
    /// Superblock-engine counters summed over the shard machine's cores
    /// (host-side observability — never folded into [`crate::FleetStats`]).
    pub superblocks: indra_sim::SuperblockStats,
    /// Predecode-cache counters summed over the shard machine's cores.
    pub predecode: indra_sim::PredecodeStats,
    /// Accumulated WAL-delta cost of every durable checkpoint this shard
    /// wrote (zero when checkpointing is off). Host-side observability —
    /// never folded into [`crate::FleetStats`].
    pub wal: CheckpointReceipt,
}

impl ShardOutput {
    /// Collapses the output into its aggregate summary row.
    #[must_use]
    pub fn summary(&self) -> ShardSummary {
        let benign_served = self.report.benign_served;
        ShardSummary {
            shard: self.plan.shard,
            app: self.plan.app,
            served: self.report.served,
            benign_sent: self.benign_sent,
            benign_served,
            attacks_sent: self.attacks_sent,
            detections: self.report.detections.len() as u64,
            true_detections: self.report.true_detections() as u64,
            detection_latency_insns: self
                .report
                .detections
                .iter()
                .map(|d| d.insns_into_request)
                .sum(),
            micro_recoveries: self
                .report
                .detections
                .iter()
                .filter(|d| d.level == indra_core::RecoveryLevel::Micro)
                .count() as u64,
            macro_recoveries: self
                .report
                .detections
                .iter()
                .filter(|d| d.level == indra_core::RecoveryLevel::Macro)
                .count() as u64,
            faults_injected: self.faults_injected,
            sim_cycles: self.sim_cycles,
            benign_service_ratio: if self.benign_sent == 0 {
                1.0
            } else {
                benign_served as f64 / self.benign_sent as f64
            },
            completed: self.completed,
        }
    }
}

/// A per-request latency observation streamed to the aggregator while
/// the shard is still running.
#[derive(Debug, Clone, Copy)]
pub struct SampleMsg {
    /// Originating shard.
    pub shard: usize,
    /// Delivery-to-response resurrectee cycles.
    pub cycles: u64,
}

/// A progress heartbeat: emitted at every run-slice boundary so a
/// supervisor can tell a slow shard from a hung one.
#[derive(Debug, Clone, Copy)]
pub struct BeatMsg {
    /// Originating shard.
    pub shard: usize,
    /// Schedule entries consumed so far (delivered or quarantined).
    pub cursor: u64,
    /// Requests served so far.
    pub served: u64,
}

/// Messages a shard sends over the aggregation channel.
#[derive(Debug)]
pub enum ShardMsg {
    /// A served request's latency (streamed as it happens).
    Sample(SampleMsg),
    /// A run-slice-boundary heartbeat (ignored by the plain executor).
    Beat(BeatMsg),
    /// The shard finished (or gave up); terminal message.
    Done(Box<ShardOutput>),
}

/// Builds the deterministic traffic schedule for `plan`.
#[must_use]
pub fn shard_schedule(cfg: &FleetConfig, plan: &ShardPlan) -> Vec<TimedRequest> {
    let image = build_app_scaled(plan.app, cfg.scale);
    let attacks = if cfg.include_dormant_attacks {
        standard_attack_suite(&image)
    } else {
        detectable_attack_suite(&image)
    };
    OpenLoopTraffic::with_attack_mix(
        cfg.requests_per_shard,
        attacks,
        cfg.attack_per_mille,
        cfg.mean_gap_cycles,
        plan.seed,
    )
    .generate(&image)
}

/// Runs one shard to completion, streaming samples through `emit`.
///
/// `emit` receives every served request's latency as it is observed;
/// the terminal [`ShardOutput`] still carries the authoritative
/// [`RunReport`] so the aggregator never depends on delivery order.
///
/// # Panics
///
/// Panics when the harness itself fails (deploy or checkpoint-store
/// errors) — use the supervised executor for typed handling.
pub fn run_shard(cfg: &FleetConfig, plan: ShardPlan, emit: impl FnMut(ShardMsg)) {
    let shard = plan.shard;
    run_shard_inner(cfg, plan, None, ShardHarness::default(), emit)
        .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
}

/// The shard loop, optionally thawed from a checkpoint.
///
/// A `restored` shard rebuilds the same system (same config, same
/// deployed image — both pure functions of the plan), overwrites its
/// state with the frozen capture and re-enters the loop with the saved
/// harness cursors; from there execution is cycle-for-cycle identical
/// to the run that was killed. Samples already in the restored report
/// are re-streamed so a fresh aggregator sees the complete history.
pub(crate) fn run_shard_inner(
    cfg: &FleetConfig,
    plan: ShardPlan,
    restored: Option<RestoredShard>,
    harness: ShardHarness,
    mut emit: impl FnMut(ShardMsg),
) -> Result<(), ShardError> {
    let started = std::time::Instant::now();
    let image = build_app_scaled(plan.app, cfg.scale);
    let schedule = shard_schedule(cfg, &plan);
    let benign_sent = schedule.iter().filter(|r| !r.malicious).count() as u64;
    let attacks_sent = schedule.len() as u64 - benign_sent;
    let schedule_len = schedule.len() as u64;

    let sys_cfg = SystemConfig {
        machine: indra_sim::MachineConfig {
            fifo_entries: cfg.fifo_entries,
            cam_entries: cfg.cam_entries,
            fast_paths: cfg.fast_paths,
            superblocks: cfg.superblocks,
            ..indra_sim::MachineConfig::default()
        },
        scheme: cfg.scheme,
        monitoring: true,
        compartments: cfg.compartments,
        ..SystemConfig::default()
    };
    let mut sys = IndraSystem::new(sys_cfg);
    sys.deploy(&image).map_err(ShardError::Deploy)?;
    let core = sys.service_cores()[0];

    // Budget: generous multiple of the workload's nominal per-request
    // work — recoveries and restarts all fit; only a harness bug (or an
    // undetected kill) exhausts it.
    let per_request = WorkloadSpec::for_app(plan.app)
        .scaled_down(cfg.scale.max(1))
        .approx_insns_per_request()
        .max(50_000);
    let mut steps_left = per_request * (schedule_len + 4) * 8;

    let mut queue = ScheduleCursor::new(schedule, harness.quarantined.clone());
    let mut faults_injected = 0u64;
    let mut served_at_last_fault = 0u64;
    let mut served_at_last_ckpt = 0u64;
    let mut chaos_cursor = 0u64;
    if let Some(r) = &restored {
        sys.restore_state(&r.state);
        queue.seek(r.progress.cursor);
        faults_injected = r.progress.faults_injected;
        served_at_last_fault = r.progress.served_at_last_fault;
        steps_left = r.progress.steps_left;
        served_at_last_ckpt = r.progress.served_at_last_ckpt;
        chaos_cursor = r.progress.chaos_cursor;
    }

    let mut writer = match (&cfg.store_dir, cfg.checkpoint_every) {
        (Some(dir), every) if every > 0 => {
            let store = SnapshotStore::create(dir.as_str())?;
            Some(store.shard_writer(plan.shard)?)
        }
        _ => None,
    };
    let mut ckpts_written = 0u64;
    let mut wal = CheckpointReceipt::default();

    // Starts at zero even when restored: samples already in the thawed
    // report are re-streamed so a fresh aggregator sees the complete
    // history (the supervisor ignores the stream and rebuilds from the
    // final report instead, so it never double-counts).
    let mut sample_cursor = 0usize;
    let mut completed = true;

    loop {
        // Cooperative cancellation: the supervisor revoked this
        // incarnation (hang recovery, or end-of-run cleanup). Exit
        // without a Done — a newer incarnation owns the result.
        if harness.cancelled() {
            return Ok(());
        }

        // Graceful shutdown (signal handler raised the flag): stop at
        // this slice boundary. The boundary is also the checkpoint
        // boundary, so everything durable is already consistent — the
        // final checkpoint below (if due) or the last one written makes
        // the store resumable with no torn state.
        if cfg.shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
            completed = false;
            break;
        }

        // Heartbeat at every run-slice boundary.
        emit(ShardMsg::Beat(BeatMsg {
            shard: plan.shard,
            cursor: queue.consumed(),
            served: sys.report().served,
        }));

        // Host-level chaos: kills and journal tears panic out of here
        // (the supervisor's catch_unwind picks them up); a stall just
        // burns wall clock until the heartbeat deadline trips.
        if let Some(chaos) = &harness.chaos {
            if chaos.fire_host(sys.report().served, harness.cancel.as_ref()) {
                return Ok(()); // cancelled mid-stall
            }
        }

        // Guest-level chaos bursts are simulated history: their cursor
        // is persisted, so a revival replays them at the same point.
        if let Some(chaos) = &harness.chaos {
            let served = sys.report().served;
            while let Some(b) = chaos.plan.bursts.get(chaos_cursor as usize) {
                if served < b.at_served {
                    break;
                }
                for _ in 0..b.faults {
                    sys.inject_fault(core);
                }
                faults_injected += u64::from(b.faults);
                chaos_cursor += 1;
            }
        }

        // Quarantined entries are consumed (and recorded in the system
        // report) *before* the checkpoint, so the frozen state always
        // explains the cursor it is stored with.
        while let Some(idx) = queue.skip_quarantined_head() {
            sys.note_quarantined(idx);
        }

        // Durable checkpoint at the run-slice boundary. `freeze` never
        // mutates, so a checkpointed run is sim-cycle-identical to an
        // unchekpointed one; only wall-clock pays for the file writes.
        if let Some(w) = writer.as_mut() {
            let served = sys.report().served;
            if served.saturating_sub(served_at_last_ckpt) >= u64::from(cfg.checkpoint_every) {
                served_at_last_ckpt = served;
                let progress = ShardProgress {
                    cursor: queue.consumed(),
                    faults_injected,
                    served_at_last_fault,
                    steps_left,
                    served_at_last_ckpt,
                    chaos_cursor,
                };
                wal.absorb(w.checkpoint(&sys.freeze(), &encode_progress(&progress))?);
                ckpts_written += 1;
                if cfg.halt_after_checkpoints.is_some_and(|halt| ckpts_written >= halt) {
                    // Simulated crash: die between two slices, exactly
                    // where a real kill -9 would land.
                    completed = false;
                    break;
                }
            }
        }

        // Open-loop delivery: everything whose arrival time has passed
        // goes into the inbox, regardless of service progress.
        let now = sys.service_cycles();
        let mut delivered = false;
        loop {
            while let Some(idx) = queue.skip_quarantined_head() {
                sys.note_quarantined(idx);
            }
            if queue.peek().is_none_or(|r| r.arrival_cycle > now) {
                break;
            }
            deliver_next(&mut queue, &mut sys, &harness);
            delivered = true;
        }

        let state = sys.run(cfg.run_slice_steps.min(steps_left.max(1)));
        steps_left = steps_left.saturating_sub(cfg.run_slice_steps);

        // Stream freshly completed samples.
        while sample_cursor < sys.report().samples.len() {
            let s = sys.report().samples[sample_cursor];
            emit(ShardMsg::Sample(SampleMsg { shard: plan.shard, cycles: s.cycles }));
            sample_cursor += 1;
        }

        // Optional rejuvenation-under-fault pressure.
        if let Some(every) = cfg.fault_every {
            let served = sys.report().served;
            if every > 0 && served.saturating_sub(served_at_last_fault) >= u64::from(every) {
                sys.inject_fault(core);
                faults_injected += 1;
                served_at_last_fault = served;
            }
        }

        match state {
            RunState::Idle => {
                while let Some(idx) = queue.skip_quarantined_head() {
                    sys.note_quarantined(idx);
                }
                match queue.peek() {
                    // The service outpaced the arrival process: the next
                    // client's clock becomes "now" (idle sim cores cannot
                    // burn cycles waiting, so the gap collapses).
                    Some(_) if !delivered => deliver_next(&mut queue, &mut sys, &harness),
                    Some(_) => {}
                    None => break,
                }
            }
            RunState::Halted => {
                // Service died (e.g. undetected kill with monitoring off).
                completed = false;
                break;
            }
            RunState::BudgetExhausted => {
                if steps_left == 0 {
                    completed = false;
                    break;
                }
            }
        }
    }

    let completed = completed && queue.peek().is_none();
    let machine = sys.machine();
    let insns = (0..machine.num_cores()).map(|c| machine.core(c).retired()).sum();
    let mut superblocks = indra_sim::SuperblockStats::default();
    let mut predecode = indra_sim::PredecodeStats::default();
    for c in 0..machine.num_cores() {
        superblocks += machine.superblock_stats(c);
        predecode += machine.predecode_stats(c);
    }
    let output = ShardOutput {
        sim_cycles: sys.service_cycles(),
        report: sys.report().clone(),
        benign_sent,
        attacks_sent,
        faults_injected,
        completed,
        insns,
        wall_seconds: started.elapsed().as_secs_f64(),
        superblocks,
        predecode,
        wal,
        plan,
    };
    emit(ShardMsg::Done(Box::new(output)));
    Ok(())
}

/// Consumes and delivers the schedule head (which the caller has
/// already verified exists and is not quarantined), flagging the
/// in-flight index so a crash mid-delivery is attributable to this
/// request — and striking first when the head is the poison request.
fn deliver_next(queue: &mut ScheduleCursor, sys: &mut IndraSystem, harness: &ShardHarness) {
    let index = queue.consumed();
    harness.set_delivering(index);
    if let Some(chaos) = &harness.chaos {
        if chaos.poison() == Some(index) {
            chaos.poison_strike();
        }
    }
    let r = queue.pop().expect("caller peeked");
    sys.push_request(r.data, r.malicious);
    harness.set_delivering(NOT_DELIVERING);
}
