//! The self-healing executor: shard threads under supervision, with
//! checkpoint-based revival.
//!
//! [`run_fleet_supervised`] runs every shard inside
//! [`std::panic::catch_unwind`] and watches a progress-heartbeat
//! channel. Three death shapes are handled:
//!
//! * **crash** — the shard thread panicked; the panic payload and the
//!   in-flight schedule index (if the death happened mid-delivery) are
//!   captured for attribution.
//! * **hang** — no heartbeat within the configured wall-clock deadline;
//!   the zombie incarnation is cancelled cooperatively and replaced.
//! * **harness error** — the shard returned a typed
//!   [`ShardError`](crate::shard::ShardError) (deploy or checkpoint-store
//!   failure).
//!
//! A dead shard is revived from its latest durable checkpoint (when the
//! fleet checkpoints; from scratch otherwise — determinism makes both
//! converge on the same [`crate::FleetStats`]) after a bounded
//! exponential backoff. A shard that keeps dying is *abandoned* once it
//! exhausts [`SupervisorConfig::max_revivals`]: the fleet degrades but
//! finishes, salvaging the abandoned shard's last checkpointed report.
//!
//! **Poison requests** get special treatment, mirroring the paper's
//! rollback *past* the malicious request (§3.3.2): when two deaths of
//! one shard are attributed to delivering the same schedule index, that
//! index is quarantined — the next incarnation consumes it without
//! delivery and the fleet keeps its availability instead of crash-looping.
//!
//! The deterministic aggregate is rebuilt from each shard's *final*
//! report (the live sample stream is ignored — revived incarnations
//! re-stream history), so a kill-and-revive run yields byte-identical
//! [`crate::FleetStats`] to an undisturbed one.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use indra_bench::Histogram;
use indra_core::RunReport;
use indra_persist::{SnapshotStore, JOURNAL_FILE};

use crate::chaos::{
    describe_panic, install_chaos_panic_hook, plan_for_shard, ChaosConfig, ChaosRuntime,
    ShardChaosPlan,
};
use crate::executor::aggregate_stats;
use crate::persist::{decode_progress, encode_meta, RestoredShard};
use crate::report::{ShardHostPerf, ShardSupervision, SupervisionStats};
use crate::shard::{
    run_shard_inner, shard_schedule, ShardHarness, ShardMsg, ShardOutput, NOT_DELIVERING,
};
use crate::{FleetConfig, FleetReport};

/// Supervision policy: how patiently shards are watched and how hard
/// the supervisor tries before giving up on one.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Revivals allowed per shard before it is abandoned (the fleet
    /// then finishes degraded instead of crash-looping forever).
    pub max_revivals: u32,
    /// Heartbeat deadline in wall milliseconds: a shard that emits no
    /// run-slice heartbeat for this long is declared hung.
    pub deadline_ms: u64,
    /// First revival backoff in wall milliseconds (doubles per revival
    /// of the same shard).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in wall milliseconds.
    pub backoff_cap_ms: u64,
    /// The chaos schedule to inject (see [`ChaosConfig`]);
    /// [`ChaosConfig::off`] for plain supervision.
    pub chaos: ChaosConfig,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_revivals: 10,
            deadline_ms: 5_000,
            backoff_base_ms: 5,
            backoff_cap_ms: 100,
            chaos: ChaosConfig::off(),
        }
    }
}

impl SupervisorConfig {
    /// The revival delay before revival number `n` (1-based), doubling
    /// from the base and saturating at the cap.
    fn backoff(&self, n: u32) -> Duration {
        let exp = n.saturating_sub(1).min(20);
        Duration::from_millis(
            self.backoff_base_ms.saturating_mul(1 << exp).min(self.backoff_cap_ms),
        )
    }
}

/// What a shard incarnation can report upward.
enum SupEvent {
    /// A regular shard message (heartbeat, sample, final output).
    Msg(ShardMsg),
    /// The incarnation panicked; `delivering` is the schedule index it
    /// was delivering when it died, if the death was mid-delivery.
    Crashed { delivering: Option<u64> },
    /// The incarnation failed with a typed harness error.
    Fault(String),
    /// The incarnation's thread is gone (always the last message).
    Exited,
}

struct SupMsg {
    shard: usize,
    gen: u64,
    event: SupEvent,
}

enum SlotState {
    /// An incarnation is (believed) alive.
    Running,
    /// Death observed; waiting for the incarnation's `Exited` so the
    /// checkpoint store has exactly one writer per shard.
    Draining,
    /// Dead and drained; respawn when the backoff elapses.
    Backoff {
        until: Instant,
    },
    Done,
    Abandoned,
}

/// The supervisor's per-shard bookkeeping.
struct Slot {
    gen: u64,
    state: SlotState,
    cancel: Arc<AtomicBool>,
    delivering: Arc<AtomicU64>,
    revivals: u32,
    crashes: u32,
    hangs: u32,
    harness_errors: u32,
    last_beat: Instant,
    /// Schedule index attributed to the most recent *attributable*
    /// death. A second death at the same index marks it poison.
    last_death_attr: Option<u64>,
    quarantined: BTreeSet<u64>,
    died_at: Option<Instant>,
    revive_ms: Vec<f64>,
    output: Option<Box<ShardOutput>>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            gen: 0,
            state: SlotState::Running,
            cancel: Arc::new(AtomicBool::new(false)),
            delivering: Arc::new(AtomicU64::new(NOT_DELIVERING)),
            revivals: 0,
            crashes: 0,
            hangs: 0,
            harness_errors: 0,
            last_beat: Instant::now(),
            last_death_attr: None,
            quarantined: BTreeSet::new(),
            died_at: None,
            revive_ms: Vec::new(),
            output: None,
        }
    }

    fn finished(&self) -> bool {
        matches!(self.state, SlotState::Done | SlotState::Abandoned)
    }

    fn mean_revive_ms(&self) -> f64 {
        if self.revive_ms.is_empty() {
            0.0
        } else {
            self.revive_ms.iter().sum::<f64>() / self.revive_ms.len() as f64
        }
    }
}

/// Shared per-fleet context the spawn/revive paths need.
struct Ctx<'a> {
    sup: &'a SupervisorConfig,
    store: Option<SnapshotStore>,
    plans: Vec<Arc<ShardChaosPlan>>,
    fired: Vec<Arc<Vec<AtomicBool>>>,
    stall_ms: u64,
}

impl Ctx<'_> {
    fn harness(&self, shard: usize, slot: &Slot) -> ShardHarness {
        let chaos = (!self.sup.chaos.is_off()).then(|| {
            ChaosRuntime::new(
                shard,
                self.plans[shard].clone(),
                self.fired[shard].clone(),
                self.stall_ms,
                self.store.as_ref().map(|s| s.shard_dir(shard).join(JOURNAL_FILE)),
            )
        });
        ShardHarness {
            cancel: Some(slot.cancel.clone()),
            quarantined: slot.quarantined.iter().copied().collect(),
            delivering: Some(slot.delivering.clone()),
            chaos,
        }
    }

    /// Loads the shard's latest checkpoint for revival. Any load
    /// failure (no store, nothing checkpointed yet, corrupt blob)
    /// degrades to a fresh start — determinism makes the restart
    /// converge on the same trajectory, just more slowly.
    fn thaw(&self, shard: usize) -> Option<RestoredShard> {
        let loaded = self.store.as_ref()?.load_shard(shard).ok()??;
        let progress = decode_progress(&loaded.progress).ok()?;
        Some(RestoredShard { state: loaded.state, progress })
    }
}

fn spawn_incarnation<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    cfg: &'env FleetConfig,
    tx: mpsc::Sender<SupMsg>,
    shard: usize,
    gen: u64,
    restored: Option<RestoredShard>,
    harness: ShardHarness,
) {
    let plan = cfg.plan(shard);
    let delivering = harness.delivering.clone();
    scope.spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shard_inner(cfg, plan, restored, harness, |msg| {
                let _ = tx.send(SupMsg { shard, gen, event: SupEvent::Msg(msg) });
            })
        }));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = tx.send(SupMsg { shard, gen, event: SupEvent::Fault(e.to_string()) });
            }
            Err(payload) => {
                // Attribute the death: if the loop was mid-delivery the
                // flag still holds the schedule index it was delivering.
                let at = delivering.as_ref().map_or(NOT_DELIVERING, |d| d.load(Ordering::SeqCst));
                // The description is rendered eagerly because the
                // payload cannot leave this thread; it is currently only
                // used to keep the hook-silenced panics debuggable.
                let _desc = describe_panic(payload.as_ref());
                let _ = tx.send(SupMsg {
                    shard,
                    gen,
                    event: SupEvent::Crashed { delivering: (at != NOT_DELIVERING).then_some(at) },
                });
            }
        }
        let _ = tx.send(SupMsg { shard, gen, event: SupEvent::Exited });
    });
}

/// Runs the fleet under supervision: crashes, hangs and harness errors
/// are detected, the dead shard is revived from its latest checkpoint
/// (or from scratch) with bounded exponential backoff, repeat-offender
/// "poison" requests are quarantined, and shards that exhaust their
/// revival budget are abandoned so the fleet finishes degraded rather
/// than not at all.
///
/// The returned report carries [`FleetReport::supervision`]. The
/// deterministic [`crate::FleetStats`] inside is byte-identical to an
/// unsupervised run of the same config whenever nothing was quarantined
/// or abandoned — revival replays from checkpoints are exact.
///
/// # Panics
///
/// Panics if `cfg.shards == 0`, `cfg.apps` is empty, or the checkpoint
/// store cannot be created — everything *after* setup is handled, not
/// propagated.
#[must_use]
pub fn run_fleet_supervised(cfg: &FleetConfig, sup: &SupervisorConfig) -> FleetReport {
    assert!(cfg.shards > 0, "fleet needs at least one shard");
    let started = Instant::now();
    if !sup.chaos.is_off() {
        install_chaos_panic_hook();
    }

    let store = match (&cfg.store_dir, cfg.checkpoint_every) {
        (Some(dir), every) if every > 0 => {
            let s = SnapshotStore::create(dir.as_str()).expect("checkpoint store");
            s.write_meta(&encode_meta(cfg)).expect("checkpoint meta");
            Some(s)
        }
        _ => None,
    };
    // A stall must outlive the supervisor's deadline or it would never
    // be seen as a hang; resolve `stall_ms == 0` to safely past it.
    let stall_ms =
        if sup.chaos.stall_ms > 0 { sup.chaos.stall_ms } else { sup.deadline_ms * 2 + 250 };
    let plans: Vec<Arc<ShardChaosPlan>> =
        (0..cfg.shards).map(|s| Arc::new(plan_for_shard(&sup.chaos, cfg, s))).collect();
    let fired: Vec<Arc<Vec<AtomicBool>>> = plans
        .iter()
        .map(|p| Arc::new((0..p.events.len()).map(|_| AtomicBool::new(false)).collect::<Vec<_>>()))
        .collect();
    let ctx = Ctx { sup, store, plans, fired, stall_ms };

    let deadline = Duration::from_millis(sup.deadline_ms.max(1));
    let mut slots: Vec<Slot> = (0..cfg.shards).map(|_| Slot::new()).collect();

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<SupMsg>();
        for (shard, slot) in slots.iter().enumerate() {
            spawn_incarnation(
                scope,
                cfg,
                tx.clone(),
                shard,
                slot.gen,
                None,
                ctx.harness(shard, slot),
            );
        }

        while !slots.iter().all(Slot::finished) {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(m) => handle(&mut slots[m.shard], m, sup),
                Err(RecvTimeoutError::Timeout) => {}
                // Unreachable while we hold `tx`, but never spin on it.
                Err(RecvTimeoutError::Disconnected) => break,
            }

            let now = Instant::now();
            for (shard, slot) in slots.iter_mut().enumerate() {
                match slot.state {
                    SlotState::Running if now.duration_since(slot.last_beat) > deadline => {
                        // Hung: cancel the zombie; its `Exited` (the
                        // stall loop polls the flag) triggers revival.
                        slot.hangs += 1;
                        slot.died_at = Some(now);
                        slot.cancel.store(true, Ordering::SeqCst);
                        slot.state = SlotState::Draining;
                    }
                    SlotState::Backoff { until } if now >= until => {
                        slot.gen += 1;
                        slot.revivals += 1;
                        slot.cancel = Arc::new(AtomicBool::new(false));
                        slot.delivering = Arc::new(AtomicU64::new(NOT_DELIVERING));
                        if let Some(d) = slot.died_at.take() {
                            slot.revive_ms.push(d.elapsed().as_secs_f64() * 1e3);
                        }
                        slot.last_beat = now;
                        slot.state = SlotState::Running;
                        spawn_incarnation(
                            scope,
                            cfg,
                            tx.clone(),
                            shard,
                            slot.gen,
                            ctx.thaw(shard),
                            ctx.harness(shard, slot),
                        );
                    }
                    _ => {}
                }
            }
        }

        // Belt and braces: no live incarnations should remain, but a
        // raised flag costs nothing and guarantees the scope join.
        for slot in &slots {
            slot.cancel.store(true, Ordering::SeqCst);
        }
    });

    assemble_report(cfg, &ctx, &mut slots, started)
}

/// Applies one incarnation message to its shard's slot.
fn handle(slot: &mut Slot, m: SupMsg, sup: &SupervisorConfig) {
    if m.gen != slot.gen {
        // A previous incarnation's leftover (it cannot outlive its
        // `Exited`, which revival waits for — but be safe, not sorry).
        return;
    }
    match m.event {
        SupEvent::Msg(ShardMsg::Beat(_)) => slot.last_beat = Instant::now(),
        // The live sample stream is ignored under supervision: revived
        // incarnations re-stream history, so the aggregate is rebuilt
        // from final reports instead (see `assemble_report`).
        SupEvent::Msg(ShardMsg::Sample(_)) => {}
        SupEvent::Msg(ShardMsg::Done(out)) => {
            slot.output = Some(out);
            slot.state = SlotState::Done;
        }
        SupEvent::Crashed { delivering } => {
            // Poison attribution: two deaths delivering the same index
            // quarantine it (loop-top deaths are never attributable, so
            // chaos kills between the two strikes cannot confuse this).
            if let Some(idx) = delivering {
                if slot.last_death_attr == Some(idx) {
                    slot.quarantined.insert(idx);
                }
                slot.last_death_attr = Some(idx);
            }
            if matches!(slot.state, SlotState::Running) {
                slot.crashes += 1;
                slot.died_at = Some(Instant::now());
                slot.state = SlotState::Draining;
            }
        }
        SupEvent::Fault(_desc) => {
            if matches!(slot.state, SlotState::Running) {
                slot.harness_errors += 1;
                slot.died_at = Some(Instant::now());
                slot.state = SlotState::Draining;
            }
        }
        SupEvent::Exited => match slot.state {
            SlotState::Draining => schedule_revival(slot, sup),
            SlotState::Running => {
                // Exited with no Done and no death report: treat as a
                // crash-shaped death so the shard is not lost silently.
                slot.crashes += 1;
                slot.died_at = Some(Instant::now());
                schedule_revival(slot, sup);
            }
            _ => {}
        },
    }
}

/// The dead incarnation has fully exited: either queue a revival after
/// backoff or abandon the shard.
fn schedule_revival(slot: &mut Slot, sup: &SupervisorConfig) {
    if slot.revivals >= sup.max_revivals {
        slot.died_at = None;
        slot.state = SlotState::Abandoned;
    } else {
        slot.state = SlotState::Backoff { until: Instant::now() + sup.backoff(slot.revivals + 1) };
    }
}

/// Best-effort stand-in for an abandoned shard: its last checkpointed
/// report (served counts, detections, samples — all real history), or
/// an empty one if it never checkpointed. `completed: false` keeps the
/// degradation visible in the aggregate.
fn salvage_output(cfg: &FleetConfig, ctx: &Ctx<'_>, shard: usize) -> ShardOutput {
    let plan = cfg.plan(shard);
    let schedule = shard_schedule(cfg, &plan);
    let benign_sent = schedule.iter().filter(|r| !r.malicious).count() as u64;
    let attacks_sent = schedule.len() as u64 - benign_sent;
    let (report, faults_injected) =
        match ctx.store.as_ref().and_then(|s| s.load_shard(shard).ok().flatten()) {
            Some(l) => {
                let faults = decode_progress(&l.progress).map_or(0, |p| p.faults_injected);
                (l.state.report, faults)
            }
            None => (RunReport::default(), 0),
        };
    let sim_cycles = report.samples.last().map_or(0, |s| s.completed_at);
    ShardOutput {
        plan,
        report,
        benign_sent,
        attacks_sent,
        faults_injected,
        sim_cycles,
        completed: false,
        insns: 0,
        wall_seconds: 0.0,
        superblocks: indra_sim::SuperblockStats::default(),
        predecode: indra_sim::PredecodeStats::default(),
        wal: indra_persist::CheckpointReceipt::default(),
    }
}

fn assemble_report(
    cfg: &FleetConfig,
    ctx: &Ctx<'_>,
    slots: &mut [Slot],
    started: Instant,
) -> FleetReport {
    let outputs: Vec<ShardOutput> = slots
        .iter_mut()
        .enumerate()
        .map(|(shard, slot)| match slot.output.take() {
            Some(b) => *b,
            None => salvage_output(cfg, ctx, shard),
        })
        .collect();

    // Rebuild the latency digest from final reports — identical to the
    // stream-fed digest of an unsupervised run, and immune to revived
    // incarnations re-streaming their history.
    let mut latency = Histogram::new();
    for o in &outputs {
        for s in &o.report.samples {
            latency.record(s.cycles);
        }
    }
    let stats = aggregate_stats(&outputs, latency);

    let per_shard: Vec<ShardSupervision> = slots
        .iter()
        .enumerate()
        .map(|(shard, s)| ShardSupervision {
            shard,
            revivals: s.revivals,
            crashes: s.crashes,
            hangs: s.hangs,
            harness_errors: s.harness_errors,
            quarantined: s.quarantined.iter().copied().collect(),
            abandoned: matches!(s.state, SlotState::Abandoned),
            mean_time_to_revive_ms: s.mean_revive_ms(),
            divergences: 0,
            divergent_masked: 0,
            rejuvenations: 0,
        })
        .collect();
    let sum =
        |f: fn(&ShardSupervision) -> u32| per_shard.iter().map(|s| u64::from(f(s))).sum::<u64>();
    let all_revivals: Vec<f64> = slots.iter().flat_map(|s| s.revive_ms.iter().copied()).collect();
    let scheduled = cfg.shards as u64 * u64::from(cfg.requests_per_shard);
    let supervision = SupervisionStats {
        revivals: sum(|s| s.revivals),
        crashes: sum(|s| s.crashes),
        hangs: sum(|s| s.hangs),
        harness_errors: sum(|s| s.harness_errors),
        chaos_host_events: ctx
            .fired
            .iter()
            .map(|f| f.iter().filter(|b| b.load(Ordering::SeqCst)).count() as u64)
            .sum(),
        quarantined_requests: per_shard.iter().map(|s| s.quarantined.len() as u64).sum(),
        abandoned_shards: per_shard.iter().filter(|s| s.abandoned).count() as u64,
        // A request is "disposed" when it was served, or when it was a
        // detected attack the system neutralized (that *is* the service
        // working); quarantined and never-delivered requests are not.
        availability: if scheduled == 0 {
            1.0
        } else {
            let disposed = stats.served + stats.true_detections.min(stats.attacks_sent);
            disposed as f64 / scheduled as f64
        },
        mean_time_to_revive_ms: if all_revivals.is_empty() {
            0.0
        } else {
            all_revivals.iter().sum::<f64>() / all_revivals.len() as f64
        },
        divergences: 0,
        divergent_masked: 0,
        rejuvenations: 0,
        per_shard,
    };

    let shard_host = outputs
        .iter()
        .map(|o| ShardHostPerf {
            shard: o.plan.shard,
            insns: o.insns,
            wall_seconds: o.wall_seconds,
            superblocks: o.superblocks,
            predecode: o.predecode,
            wal_bytes: o.wal.bytes,
            wal_pages: o.wal.pages,
        })
        .collect();
    let wall_seconds = started.elapsed().as_secs_f64();
    let wall_req_per_sec =
        if wall_seconds > 0.0 { stats.served as f64 / wall_seconds } else { 0.0 };
    FleetReport {
        stats,
        wall_seconds,
        wall_req_per_sec,
        shard_host,
        supervision: Some(supervision),
    }
}
