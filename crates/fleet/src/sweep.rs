//! The `fleetbench` shard-count scaling sweep (logic; the thin binary
//! wrapper lives in the root package so `cargo run --bin fleetbench`
//! works from the workspace root).
//!
//! For each shard count the sweep runs the *same* per-shard workload —
//! so total work grows with the fleet — and reports sim-time throughput
//! (requests per million cycles of makespan), wall-clock throughput,
//! benign-service ratio, detection counts and latency percentiles. The
//! wall-clock speedup column is the honest parallelism signal: on a
//! multi-core host it grows with shard count; on a single hardware
//! thread it stays flat while the deterministic stats stay identical.

use indra_bench::CsvSink;
use indra_core::json::{json_array, JsonObject};

use crate::{
    resume_fleet, run_fleet, run_fleet_supervised, ChaosConfig, FleetConfig, FleetReport,
    SupervisorConfig,
};

/// Parsed `fleetbench` command line.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Shard counts to sweep, in order.
    pub shard_counts: Vec<usize>,
    /// Base fleet configuration (shards overridden per sweep point).
    pub base: FleetConfig,
    /// CSV output directory (`--csv DIR`).
    pub csv: Option<String>,
    /// Emit each point's full report as JSON (`--json`).
    pub json: bool,
    /// Resume a killed run from its checkpoint directory (`--resume
    /// DIR`); every other traffic flag is ignored — the directory's
    /// `fleet.meta` is authoritative.
    pub resume: Option<String>,
    /// Run the supervised chaos mode instead of the scaling sweep
    /// (`--chaos PROFILE`, or `--chaos campaign` for the whole ladder).
    pub chaos: Option<String>,
    /// Chaos seed override (`--chaos-seed N`).
    pub chaos_seed: Option<u64>,
    /// Revival budget override (`--max-revivals N`).
    pub max_revivals: Option<u32>,
    /// Heartbeat deadline override (`--shard-deadline-ms N`).
    pub shard_deadline_ms: Option<u64>,
    /// Shrink the workload to smoke-test size (`--quick`).
    pub quick: bool,
    /// Where the chaos JSON report goes (`--chaos-out PATH`; the
    /// campaign defaults to `results/BENCH_chaos.json`).
    pub chaos_out: Option<String>,
    /// Fail unless total revivals reach this floor
    /// (`--assert-revivals-min N`).
    pub assert_revivals_min: Option<u64>,
    /// Fail unless every chaos run's availability reaches this floor
    /// (`--assert-availability-min F`).
    pub assert_availability_min: Option<f64>,
    /// Replicas per shard (`--replicas K`, 1–3). Values above 1 switch
    /// the run to the divergence-voting replica executor (dispatched by
    /// the `fleetbench` binary — this crate only validates).
    pub replicas: usize,
    /// Proactive-rejuvenation cadence in admitted requests
    /// (`--rejuvenate-every N`).
    pub rejuvenate_every: Option<u64>,
    /// Run the replica benchmark sweep and write
    /// `results/BENCH_replica.json` (`--replica-bench`).
    pub replica_bench: bool,
    /// Fail a replicated run unless voting caught at least this many
    /// divergences (`--assert-divergences-min N`).
    pub assert_divergences_min: Option<u64>,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            shard_counts: vec![1, 2, 4, 6],
            base: FleetConfig::default(),
            csv: None,
            json: false,
            resume: None,
            chaos: None,
            chaos_seed: None,
            max_revivals: None,
            shard_deadline_ms: None,
            quick: false,
            chaos_out: None,
            assert_revivals_min: None,
            assert_availability_min: None,
            replicas: 1,
            rejuvenate_every: None,
            replica_bench: false,
            assert_divergences_min: None,
        }
    }
}

/// Parses CLI arguments (exposed for testing).
///
/// # Errors
///
/// Returns a usage string when an option is unknown or its value does
/// not parse.
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<SweepArgs, String> {
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    let mut out = SweepArgs::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let v: String = value(&mut args, "--shards")?;
                out.shard_counts = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--shards: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.shard_counts.is_empty() || out.shard_counts.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
            }
            "--requests" => {
                out.base.requests_per_shard = value(&mut args, "--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--scale" => {
                out.base.scale =
                    value(&mut args, "--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
            }
            "--attack-per-mille" => {
                out.base.attack_per_mille = value(&mut args, "--attack-per-mille")?
                    .parse()
                    .map_err(|e| format!("--attack-per-mille: {e}"))?;
                if out.base.attack_per_mille > 1000 {
                    return Err("--attack-per-mille is out of [0, 1000]".into());
                }
            }
            "--mean-gap" => {
                out.base.mean_gap_cycles = value(&mut args, "--mean-gap")?
                    .parse()
                    .map_err(|e| format!("--mean-gap: {e}"))?;
            }
            "--fault-every" => {
                out.base.fault_every = Some(
                    value(&mut args, "--fault-every")?
                        .parse()
                        .map_err(|e| format!("--fault-every: {e}"))?,
                );
            }
            "--seed" => {
                out.base.seed =
                    value(&mut args, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--checkpoint-every" => {
                out.base.checkpoint_every = value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--store" => out.base.store_dir = Some(value(&mut args, "--store")?),
            "--halt-after" => {
                out.base.halt_after_checkpoints = Some(
                    value(&mut args, "--halt-after")?
                        .parse()
                        .map_err(|e| format!("--halt-after: {e}"))?,
                );
            }
            "--resume" => out.resume = Some(value(&mut args, "--resume")?),
            "--csv" => out.csv = Some(value(&mut args, "--csv")?),
            "--json" => out.json = true,
            "--no-fast-paths" => out.base.fast_paths = false,
            "--no-superblocks" => out.base.superblocks = false,
            "--no-compartments" => out.base.compartments = false,
            "--chaos" => {
                let name = value(&mut args, "--chaos")?;
                if name != "campaign" {
                    ChaosConfig::profile(&name).map_err(|e| format!("--chaos: {e}"))?;
                }
                out.chaos = Some(name);
            }
            "--chaos-seed" => {
                out.chaos_seed = Some(
                    value(&mut args, "--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                );
            }
            "--max-revivals" => {
                out.max_revivals = Some(
                    value(&mut args, "--max-revivals")?
                        .parse()
                        .map_err(|e| format!("--max-revivals: {e}"))?,
                );
            }
            "--shard-deadline-ms" => {
                let ms: u64 = value(&mut args, "--shard-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--shard-deadline-ms: {e}"))?;
                if ms == 0 {
                    return Err("--shard-deadline-ms needs a positive deadline".into());
                }
                out.shard_deadline_ms = Some(ms);
            }
            "--quick" => out.quick = true,
            "--chaos-out" => out.chaos_out = Some(value(&mut args, "--chaos-out")?),
            "--assert-revivals-min" => {
                out.assert_revivals_min = Some(
                    value(&mut args, "--assert-revivals-min")?
                        .parse()
                        .map_err(|e| format!("--assert-revivals-min: {e}"))?,
                );
            }
            "--assert-availability-min" => {
                out.assert_availability_min = Some(
                    value(&mut args, "--assert-availability-min")?
                        .parse()
                        .map_err(|e| format!("--assert-availability-min: {e}"))?,
                );
            }
            "--replicas" => {
                let k: usize = value(&mut args, "--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}\n{USAGE}"))?;
                if !(1..=3).contains(&k) {
                    return Err(format!("--replicas needs 1, 2 or 3 (got {k})\n{USAGE}"));
                }
                out.replicas = k;
            }
            "--rejuvenate-every" => {
                let n: u64 = value(&mut args, "--rejuvenate-every")?
                    .parse()
                    .map_err(|e| format!("--rejuvenate-every: {e}\n{USAGE}"))?;
                if n == 0 || n > 1_000_000 {
                    return Err(format!(
                        "--rejuvenate-every needs a cadence in [1, 1000000] (got {n})\n{USAGE}"
                    ));
                }
                out.rejuvenate_every = Some(n);
            }
            "--replica-bench" => out.replica_bench = true,
            "--assert-divergences-min" => {
                out.assert_divergences_min = Some(
                    value(&mut args, "--assert-divergences-min")?
                        .parse()
                        .map_err(|e| format!("--assert-divergences-min: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    if out.base.checkpoint_every > 0 && out.base.store_dir.is_none() {
        return Err("--checkpoint-every needs --store DIR".into());
    }
    if out.base.halt_after_checkpoints.is_some() && out.base.checkpoint_every == 0 {
        return Err("--halt-after needs --checkpoint-every".into());
    }
    if out.quick {
        // Smoke-test shape: fewer requests, deeper work-scale cut.
        out.base.requests_per_shard = 12;
        out.base.scale = 40;
    }
    Ok(out)
}

/// `fleetbench --help` text.
pub const USAGE: &str = "\
fleetbench — INDRA fleet shard-count scaling sweep

USAGE: fleetbench [--shards 1,2,4,6] [--requests N] [--scale N]
                  [--attack-per-mille N] [--mean-gap CYCLES]
                  [--fault-every N] [--seed N] [--csv DIR] [--json]
                  [--no-fast-paths] [--no-superblocks]
                  [--no-compartments] [--quick]
                  [--checkpoint-every N --store DIR [--halt-after N]]
                  [--resume DIR]
                  [--chaos PROFILE|campaign] [--chaos-seed N]
                  [--max-revivals N] [--shard-deadline-ms N]
                  [--chaos-out PATH] [--assert-revivals-min N]
                  [--assert-availability-min F]
                  [--replicas K] [--rejuvenate-every N] [--replica-bench]
                  [--assert-divergences-min N]

--no-fast-paths disables the host-side predecode and translation
caches (slow reference path); --no-superblocks disables the superblock
execution engine (hot basic blocks batched into pre-validated micro-op
traces). The deterministic stats are byte-identical either way — only
the host mips and sb% columns move.

--no-compartments disables per-request compartments (fine-grained
rewind-and-discard of only the guilty request's pages and heap arena
on detection). Attack-free fault-free stats are byte-identical either
way; under attack, compartments retry benign requests instead of
losing them, so outcomes differ by design. Compartments also shrink
WAL deltas — the wal KB/pages columns report checkpoint volume.

Crash-safe checkpointing: --checkpoint-every N durably snapshots each
shard to --store DIR after every N served requests; --halt-after K
simulates a crash by killing each shard after its Kth checkpoint.
--resume DIR restores a killed run from its checkpoint directory and
runs it to the original quota — the final stats are byte-identical to
an uninterrupted run.

Chaos mode: --chaos PROFILE (off, light, kills, stalls, wal, poison,
default, heavy) runs the fleet under supervision with that fault
schedule injected, at the largest --shards point; --chaos campaign
runs the off/light/default/heavy ladder and writes
results/BENCH_chaos.json. A checkpoint store is created automatically
(in a temp dir) when --store is absent so revival really replays from
disk. --assert-revivals-min / --assert-availability-min turn the run
into a self-checking smoke test.

Replication: --replicas K (2 or 3) runs K deterministic replicas of
every shard with per-request divergence voting — a silently corrupted
replica (--chaos stealth) votes apart, is masked and revived from the
majority checkpoint; the deterministic stats stay byte-identical to an
undisturbed run. --rejuvenate-every N proactively restarts each
replica from its durable checkpoint every N admitted requests,
staggered so the group keeps its voting quorum. --replica-bench runs
the K=1/2/3 detection and overhead sweep and writes
results/BENCH_replica.json. In replicated runs --chaos-out PATH saves
the deterministic FleetStats JSON and --assert-divergences-min N fails
the run unless voting caught at least N divergences.";

/// Runs the sweep, printing the scaling table (and optional JSON) to
/// stdout and mirroring it into `<csv>/fleet_scaling.csv`.
///
/// With `--resume DIR` the sweep is skipped entirely: the checkpointed
/// fleet is restored and run to quota, and its single report returned.
///
/// # Errors
///
/// A resume failure (missing/corrupt checkpoint directory) is returned
/// as a printable message; the sweep itself only errors via panics.
pub fn run_sweep(args: &SweepArgs) -> Result<Vec<FleetReport>, String> {
    if let Some(dir) = &args.resume {
        let report = resume_fleet(dir).map_err(|e| format!("--resume {dir}: {e}"))?;
        let s = &report.stats;
        println!(
            "resumed fleet from {dir}: {} shards, served {}, benign {:.1}%, \
             attacks {}, detections {}",
            s.shards,
            s.served,
            s.benign_service_ratio * 100.0,
            s.attacks_sent,
            s.true_detections,
        );
        if args.json {
            println!("{}", report.to_json());
        }
        return Ok(vec![report]);
    }
    if let Some(name) = &args.chaos {
        return run_chaos(args, name);
    }
    let sink = match &args.csv {
        Some(dir) => CsvSink::to_dir(dir),
        None => CsvSink::disabled(),
    };
    println!(
        "fleet scaling sweep: {} requests/shard, scale 1/{}, {}‰ attacks, seed {:#x}",
        args.base.requests_per_shard, args.base.scale, args.base.attack_per_mille, args.base.seed
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>7} {:>9} {:>11} {:>10} {:>7} {:>6} {:>8} {:>7} {:>9} {:>8}",
        "shards",
        "served",
        "benign%",
        "attacks",
        "detect",
        "req/Mcyc",
        "wall req/s",
        "speedup",
        "mips",
        "sb%",
        "wal KB",
        "wal pg",
        "p50 cyc",
        "p99 cyc"
    );

    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut base_wall_rps = 0.0f64;
    for (i, &shards) in args.shard_counts.iter().enumerate() {
        let cfg = FleetConfig { shards, ..args.base.clone() };
        let report = run_fleet(&cfg);
        let s = &report.stats;
        if i == 0 {
            base_wall_rps = report.wall_req_per_sec;
        }
        // Speedup over the first sweep point, normalized per shard of
        // work: point k does (shards_k / shards_0)× the work.
        let work = shards as f64 / args.shard_counts[0] as f64;
        let speedup =
            if base_wall_rps > 0.0 { report.wall_req_per_sec / base_wall_rps } else { 0.0 };
        let wal_bytes: u64 = report.shard_host.iter().map(|h| h.wal_bytes).sum();
        let wal_pages: u64 = report.shard_host.iter().map(|h| h.wal_pages).sum();
        println!(
            "{:>6} {:>8} {:>7.1}% {:>8} {:>7} {:>9.2} {:>11.1} {:>9.2}x {:>7.2} {:>5.1}% {:>8.1} {:>7} {:>9} {:>8}",
            shards,
            s.served,
            s.benign_service_ratio * 100.0,
            s.attacks_sent,
            s.true_detections,
            s.served_per_mcycle,
            report.wall_req_per_sec,
            speedup,
            report.host_mips(),
            report.superblock_coverage() * 100.0,
            wal_bytes as f64 / 1024.0,
            wal_pages,
            s.latency.p50,
            s.latency.p99,
        );
        if args.json {
            println!("{}", report.to_json());
        }
        rows.push(vec![
            shards.to_string(),
            s.served.to_string(),
            format!("{:.4}", s.benign_service_ratio),
            s.attacks_sent.to_string(),
            s.detections.to_string(),
            s.true_detections.to_string(),
            s.micro_recoveries.to_string(),
            s.macro_recoveries.to_string(),
            format!("{:.3}", s.served_per_mcycle),
            format!("{:.1}", report.wall_req_per_sec),
            format!("{:.3}", speedup),
            format!("{:.3}", work),
            format!("{:.3}", report.host_mips()),
            format!("{:.4}", report.superblock_coverage()),
            report.shard_host.iter().map(|h| h.superblocks.translations).sum::<u64>().to_string(),
            report.shard_host.iter().map(|h| h.superblocks.hits).sum::<u64>().to_string(),
            report.shard_host.iter().map(|h| h.superblocks.invalidations).sum::<u64>().to_string(),
            wal_bytes.to_string(),
            wal_pages.to_string(),
            s.latency.p50.to_string(),
            s.latency.p95.to_string(),
            s.latency.p99.to_string(),
        ]);
        reports.push(report);
    }
    sink.write(
        "fleet_scaling",
        &[
            "shards",
            "served",
            "benign_service_ratio",
            "attacks_sent",
            "detections",
            "true_detections",
            "micro_recoveries",
            "macro_recoveries",
            "served_per_mcycle",
            "wall_req_per_sec",
            "wall_speedup",
            "relative_work",
            "mips",
            "sb_coverage",
            "sb_translations",
            "sb_hits",
            "sb_invalidations",
            "wal_bytes",
            "wal_pages",
            "p50_cycles",
            "p95_cycles",
            "p99_cycles",
        ],
        &rows,
    );
    if sink.is_enabled() {
        println!("csv: wrote fleet_scaling.csv");
    }
    Ok(reports)
}

/// The profile ladder `--chaos campaign` sweeps, in intensity order.
pub const CAMPAIGN_PROFILES: [&str; 4] = ["off", "light", "default", "heavy"];

/// Builds the supervisor policy for one chaos profile, applying the
/// CLI overrides.
fn supervisor_for(args: &SweepArgs, profile: &str) -> Result<SupervisorConfig, String> {
    let mut chaos = ChaosConfig::profile(profile)?;
    if let Some(seed) = args.chaos_seed {
        chaos.seed = seed;
    }
    let mut sup = SupervisorConfig { chaos, ..SupervisorConfig::default() };
    if let Some(m) = args.max_revivals {
        sup.max_revivals = m;
    }
    if let Some(d) = args.shard_deadline_ms {
        sup.deadline_ms = d;
    }
    Ok(sup)
}

/// Runs the supervised chaos mode: one profile, or the whole campaign
/// ladder. Prints a per-profile supervision table, optionally mirrors
/// it to CSV/JSON, and enforces the `--assert-*` floors.
///
/// # Errors
///
/// Unknown profile names, unwritable output files, and violated
/// assertion floors.
fn run_chaos(args: &SweepArgs, name: &str) -> Result<Vec<FleetReport>, String> {
    let profiles: Vec<&str> =
        if name == "campaign" { CAMPAIGN_PROFILES.to_vec() } else { vec![name] };
    let shards = *args.shard_counts.last().expect("parse_args rejects empty --shards");
    println!(
        "chaos {}: {} shards, {} requests/shard, scale 1/{}, traffic seed {:#x}",
        name, shards, args.base.requests_per_shard, args.base.scale, args.base.seed
    );
    println!(
        "{:>8} {:>8} {:>8} {:>6} {:>8} {:>11} {:>10} {:>13} {:>8} {:>8}",
        "profile",
        "revivals",
        "crashes",
        "hangs",
        "harness",
        "quarantined",
        "abandoned",
        "availability",
        "mttr ms",
        "served"
    );

    let sink = match &args.csv {
        Some(dir) => CsvSink::to_dir(dir),
        None => CsvSink::disabled(),
    };
    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut total_revivals = 0u64;
    let mut worst_availability = 1.0f64;
    for profile in profiles {
        let mut cfg = FleetConfig { shards, ..args.base.clone() };
        // Revival needs a durable store; conjure a scratch one when the
        // caller did not provide theirs.
        let scratch = if cfg.store_dir.is_none() {
            let dir =
                std::env::temp_dir().join(format!("indra-chaos-{}-{profile}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            cfg.store_dir = Some(dir.to_string_lossy().into_owned());
            if cfg.checkpoint_every == 0 {
                cfg.checkpoint_every = 3;
            }
            Some(dir)
        } else {
            None
        };
        let sup = supervisor_for(args, profile)?;
        let report = run_fleet_supervised(&cfg, &sup);
        if let Some(dir) = scratch {
            let _ = std::fs::remove_dir_all(&dir);
        }
        let s = report.supervision.as_ref().expect("supervised runs carry supervision stats");
        println!(
            "{:>8} {:>8} {:>8} {:>6} {:>8} {:>11} {:>10} {:>13.4} {:>8.1} {:>8}",
            profile,
            s.revivals,
            s.crashes,
            s.hangs,
            s.harness_errors,
            s.quarantined_requests,
            s.abandoned_shards,
            s.availability,
            s.mean_time_to_revive_ms,
            report.stats.served,
        );
        if args.json {
            println!("{}", report.to_json());
        }
        total_revivals += s.revivals;
        worst_availability = worst_availability.min(s.availability);
        rows.push(vec![
            profile.to_string(),
            s.revivals.to_string(),
            s.crashes.to_string(),
            s.hangs.to_string(),
            s.harness_errors.to_string(),
            s.chaos_host_events.to_string(),
            s.quarantined_requests.to_string(),
            s.abandoned_shards.to_string(),
            format!("{:.6}", s.availability),
            format!("{:.3}", s.mean_time_to_revive_ms),
            report.stats.served.to_string(),
            format!("{:.3}", report.wall_seconds),
        ]);
        entries.push(
            JsonObject::new()
                .str("profile", profile)
                .u64("shards", shards as u64)
                .u64("requests_per_shard", u64::from(cfg.requests_per_shard))
                .u64("chaos_seed", sup.chaos.seed)
                .raw("supervision", &s.to_json())
                .raw("stats", &report.stats.to_json())
                .f64("wall_seconds", report.wall_seconds)
                .finish(),
        );
        reports.push(report);
    }
    sink.write(
        "fleet_chaos",
        &[
            "profile",
            "revivals",
            "crashes",
            "hangs",
            "harness_errors",
            "chaos_host_events",
            "quarantined_requests",
            "abandoned_shards",
            "availability",
            "mttr_ms",
            "served",
            "wall_seconds",
        ],
        &rows,
    );
    if sink.is_enabled() {
        println!("csv: wrote fleet_chaos.csv");
    }

    let out_path = args
        .chaos_out
        .clone()
        .or_else(|| (name == "campaign").then(|| "results/BENCH_chaos.json".to_string()));
    if let Some(path) = out_path {
        let doc = JsonObject::new()
            .str("bench", "fleet_chaos")
            .str("mode", name)
            .raw("runs", &json_array(entries.iter().cloned()))
            .finish();
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        std::fs::write(&path, doc.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
        println!("chaos report: wrote {path}");
    }

    if let Some(min) = args.assert_revivals_min {
        if total_revivals < min {
            return Err(format!(
                "assertion failed: {total_revivals} revivals < required minimum {min}"
            ));
        }
    }
    if let Some(min) = args.assert_availability_min {
        if worst_availability < min {
            return Err(format!(
                "assertion failed: availability {worst_availability:.4} < required minimum {min}"
            ));
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<SweepArgs, String> {
        parse_args(words.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = parse(&[
            "--shards",
            "2,4",
            "--requests",
            "9",
            "--scale",
            "30",
            "--attack-per-mille",
            "250",
            "--seed",
            "7",
            "--json",
            "--no-fast-paths",
            "--no-superblocks",
            "--no-compartments",
        ])
        .unwrap();
        assert_eq!(a.shard_counts, vec![2, 4]);
        assert_eq!(a.base.requests_per_shard, 9);
        assert_eq!(a.base.scale, 30);
        assert_eq!(a.base.attack_per_mille, 250);
        assert_eq!(a.base.seed, 7);
        assert!(a.json);
        assert!(!a.base.fast_paths);
        assert!(!a.base.superblocks);
        assert!(!a.base.compartments);
        let d = parse(&[]).unwrap();
        assert!(d.base.fast_paths && d.base.superblocks, "both engines default on");
        assert!(d.base.compartments, "compartments default on");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--attack-per-mille", "1001"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn parses_and_validates_replica_flags() {
        let a = parse(&[
            "--replicas",
            "3",
            "--rejuvenate-every",
            "8",
            "--replica-bench",
            "--assert-divergences-min",
            "2",
        ])
        .unwrap();
        assert_eq!(a.replicas, 3);
        assert_eq!(a.rejuvenate_every, Some(8));
        assert!(a.replica_bench);
        assert_eq!(a.assert_divergences_min, Some(2));
        assert_eq!(parse(&[]).unwrap().replicas, 1, "unreplicated by default");
        // 0 and absurd values are rejected with the usage text.
        for bad in [["--replicas", "0"], ["--replicas", "4"], ["--replicas", "-1"]] {
            let err = parse(&bad).unwrap_err();
            assert!(err.contains("--replicas"), "{err}");
        }
        for bad in [["--rejuvenate-every", "0"], ["--rejuvenate-every", "1000001"]] {
            let err = parse(&bad).unwrap_err();
            assert!(err.contains("--rejuvenate-every"), "{err}");
            assert!(err.contains("USAGE"), "usage must ride along: {err}");
        }
    }

    #[test]
    fn parses_chaos_flags() {
        let a = parse(&[
            "--chaos",
            "default",
            "--chaos-seed",
            "99",
            "--max-revivals",
            "3",
            "--shard-deadline-ms",
            "750",
            "--quick",
            "--chaos-out",
            "/tmp/chaos.json",
            "--assert-revivals-min",
            "1",
            "--assert-availability-min",
            "0.7",
        ])
        .unwrap();
        assert_eq!(a.chaos.as_deref(), Some("default"));
        assert_eq!(a.chaos_seed, Some(99));
        assert_eq!(a.max_revivals, Some(3));
        assert_eq!(a.shard_deadline_ms, Some(750));
        assert!(a.quick);
        assert_eq!(a.base.requests_per_shard, 12, "--quick shrinks the workload");
        assert_eq!(a.chaos_out.as_deref(), Some("/tmp/chaos.json"));
        assert_eq!(a.assert_revivals_min, Some(1));
        assert_eq!(a.assert_availability_min, Some(0.7));
        // campaign is accepted; unknown profiles and zero deadlines are not.
        assert_eq!(parse(&["--chaos", "campaign"]).unwrap().chaos.as_deref(), Some("campaign"));
        assert!(parse(&["--chaos", "frobnicate"]).is_err());
        assert!(parse(&["--shard-deadline-ms", "0"]).is_err());
    }
}
