//! The `fleetbench` shard-count scaling sweep (logic; the thin binary
//! wrapper lives in the root package so `cargo run --bin fleetbench`
//! works from the workspace root).
//!
//! For each shard count the sweep runs the *same* per-shard workload —
//! so total work grows with the fleet — and reports sim-time throughput
//! (requests per million cycles of makespan), wall-clock throughput,
//! benign-service ratio, detection counts and latency percentiles. The
//! wall-clock speedup column is the honest parallelism signal: on a
//! multi-core host it grows with shard count; on a single hardware
//! thread it stays flat while the deterministic stats stay identical.

use indra_bench::CsvSink;

use crate::{resume_fleet, run_fleet, FleetConfig, FleetReport};

/// Parsed `fleetbench` command line.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Shard counts to sweep, in order.
    pub shard_counts: Vec<usize>,
    /// Base fleet configuration (shards overridden per sweep point).
    pub base: FleetConfig,
    /// CSV output directory (`--csv DIR`).
    pub csv: Option<String>,
    /// Emit each point's full report as JSON (`--json`).
    pub json: bool,
    /// Resume a killed run from its checkpoint directory (`--resume
    /// DIR`); every other traffic flag is ignored — the directory's
    /// `fleet.meta` is authoritative.
    pub resume: Option<String>,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            shard_counts: vec![1, 2, 4, 6],
            base: FleetConfig::default(),
            csv: None,
            json: false,
            resume: None,
        }
    }
}

/// Parses CLI arguments (exposed for testing).
///
/// # Errors
///
/// Returns a usage string when an option is unknown or its value does
/// not parse.
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<SweepArgs, String> {
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    let mut out = SweepArgs::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let v: String = value(&mut args, "--shards")?;
                out.shard_counts = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--shards: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.shard_counts.is_empty() || out.shard_counts.contains(&0) {
                    return Err("--shards needs positive counts".into());
                }
            }
            "--requests" => {
                out.base.requests_per_shard = value(&mut args, "--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--scale" => {
                out.base.scale =
                    value(&mut args, "--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
            }
            "--attack-per-mille" => {
                out.base.attack_per_mille = value(&mut args, "--attack-per-mille")?
                    .parse()
                    .map_err(|e| format!("--attack-per-mille: {e}"))?;
                if out.base.attack_per_mille > 1000 {
                    return Err("--attack-per-mille is out of [0, 1000]".into());
                }
            }
            "--mean-gap" => {
                out.base.mean_gap_cycles = value(&mut args, "--mean-gap")?
                    .parse()
                    .map_err(|e| format!("--mean-gap: {e}"))?;
            }
            "--fault-every" => {
                out.base.fault_every = Some(
                    value(&mut args, "--fault-every")?
                        .parse()
                        .map_err(|e| format!("--fault-every: {e}"))?,
                );
            }
            "--seed" => {
                out.base.seed =
                    value(&mut args, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--checkpoint-every" => {
                out.base.checkpoint_every = value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--store" => out.base.store_dir = Some(value(&mut args, "--store")?),
            "--halt-after" => {
                out.base.halt_after_checkpoints = Some(
                    value(&mut args, "--halt-after")?
                        .parse()
                        .map_err(|e| format!("--halt-after: {e}"))?,
                );
            }
            "--resume" => out.resume = Some(value(&mut args, "--resume")?),
            "--csv" => out.csv = Some(value(&mut args, "--csv")?),
            "--json" => out.json = true,
            "--no-fast-paths" => out.base.fast_paths = false,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    if out.base.checkpoint_every > 0 && out.base.store_dir.is_none() {
        return Err("--checkpoint-every needs --store DIR".into());
    }
    if out.base.halt_after_checkpoints.is_some() && out.base.checkpoint_every == 0 {
        return Err("--halt-after needs --checkpoint-every".into());
    }
    Ok(out)
}

/// `fleetbench --help` text.
pub const USAGE: &str = "\
fleetbench — INDRA fleet shard-count scaling sweep

USAGE: fleetbench [--shards 1,2,4,6] [--requests N] [--scale N]
                  [--attack-per-mille N] [--mean-gap CYCLES]
                  [--fault-every N] [--seed N] [--csv DIR] [--json]
                  [--no-fast-paths]
                  [--checkpoint-every N --store DIR [--halt-after N]]
                  [--resume DIR]

--no-fast-paths disables the host-side predecode and translation
caches (slow reference path); the deterministic stats are identical
either way — only the host mips column moves.

Crash-safe checkpointing: --checkpoint-every N durably snapshots each
shard to --store DIR after every N served requests; --halt-after K
simulates a crash by killing each shard after its Kth checkpoint.
--resume DIR restores a killed run from its checkpoint directory and
runs it to the original quota — the final stats are byte-identical to
an uninterrupted run.";

/// Runs the sweep, printing the scaling table (and optional JSON) to
/// stdout and mirroring it into `<csv>/fleet_scaling.csv`.
///
/// With `--resume DIR` the sweep is skipped entirely: the checkpointed
/// fleet is restored and run to quota, and its single report returned.
///
/// # Errors
///
/// A resume failure (missing/corrupt checkpoint directory) is returned
/// as a printable message; the sweep itself only errors via panics.
pub fn run_sweep(args: &SweepArgs) -> Result<Vec<FleetReport>, String> {
    if let Some(dir) = &args.resume {
        let report = resume_fleet(dir).map_err(|e| format!("--resume {dir}: {e}"))?;
        let s = &report.stats;
        println!(
            "resumed fleet from {dir}: {} shards, served {}, benign {:.1}%, \
             attacks {}, detections {}",
            s.shards,
            s.served,
            s.benign_service_ratio * 100.0,
            s.attacks_sent,
            s.true_detections,
        );
        if args.json {
            println!("{}", report.to_json());
        }
        return Ok(vec![report]);
    }
    let sink = match &args.csv {
        Some(dir) => CsvSink::to_dir(dir),
        None => CsvSink::disabled(),
    };
    println!(
        "fleet scaling sweep: {} requests/shard, scale 1/{}, {}‰ attacks, seed {:#x}",
        args.base.requests_per_shard, args.base.scale, args.base.attack_per_mille, args.base.seed
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>7} {:>9} {:>11} {:>10} {:>7} {:>9} {:>8}",
        "shards",
        "served",
        "benign%",
        "attacks",
        "detect",
        "req/Mcyc",
        "wall req/s",
        "speedup",
        "mips",
        "p50 cyc",
        "p99 cyc"
    );

    let mut reports = Vec::new();
    let mut rows = Vec::new();
    let mut base_wall_rps = 0.0f64;
    for (i, &shards) in args.shard_counts.iter().enumerate() {
        let cfg = FleetConfig { shards, ..args.base.clone() };
        let report = run_fleet(&cfg);
        let s = &report.stats;
        if i == 0 {
            base_wall_rps = report.wall_req_per_sec;
        }
        // Speedup over the first sweep point, normalized per shard of
        // work: point k does (shards_k / shards_0)× the work.
        let work = shards as f64 / args.shard_counts[0] as f64;
        let speedup =
            if base_wall_rps > 0.0 { report.wall_req_per_sec / base_wall_rps } else { 0.0 };
        println!(
            "{:>6} {:>8} {:>7.1}% {:>8} {:>7} {:>9.2} {:>11.1} {:>9.2}x {:>7.2} {:>9} {:>8}",
            shards,
            s.served,
            s.benign_service_ratio * 100.0,
            s.attacks_sent,
            s.true_detections,
            s.served_per_mcycle,
            report.wall_req_per_sec,
            speedup,
            report.host_mips(),
            s.latency.p50,
            s.latency.p99,
        );
        if args.json {
            println!("{}", report.to_json());
        }
        rows.push(vec![
            shards.to_string(),
            s.served.to_string(),
            format!("{:.4}", s.benign_service_ratio),
            s.attacks_sent.to_string(),
            s.detections.to_string(),
            s.true_detections.to_string(),
            s.micro_recoveries.to_string(),
            s.macro_recoveries.to_string(),
            format!("{:.3}", s.served_per_mcycle),
            format!("{:.1}", report.wall_req_per_sec),
            format!("{:.3}", speedup),
            format!("{:.3}", work),
            format!("{:.3}", report.host_mips()),
            s.latency.p50.to_string(),
            s.latency.p95.to_string(),
            s.latency.p99.to_string(),
        ]);
        reports.push(report);
    }
    sink.write(
        "fleet_scaling",
        &[
            "shards",
            "served",
            "benign_service_ratio",
            "attacks_sent",
            "detections",
            "true_detections",
            "micro_recoveries",
            "macro_recoveries",
            "served_per_mcycle",
            "wall_req_per_sec",
            "wall_speedup",
            "relative_work",
            "mips",
            "p50_cycles",
            "p95_cycles",
            "p99_cycles",
        ],
        &rows,
    );
    if sink.is_enabled() {
        println!("csv: wrote fleet_scaling.csv");
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<SweepArgs, String> {
        parse_args(words.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = parse(&[
            "--shards",
            "2,4",
            "--requests",
            "9",
            "--scale",
            "30",
            "--attack-per-mille",
            "250",
            "--seed",
            "7",
            "--json",
            "--no-fast-paths",
        ])
        .unwrap();
        assert_eq!(a.shard_counts, vec![2, 4]);
        assert_eq!(a.base.requests_per_shard, 9);
        assert_eq!(a.base.scale, 30);
        assert_eq!(a.base.attack_per_mille, 250);
        assert_eq!(a.base.seed, 7);
        assert!(a.json);
        assert!(!a.base.fast_paths);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--attack-per-mille", "1001"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }
}
