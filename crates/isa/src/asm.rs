//! A two-section text assembler for IR32.
//!
//! The assembler exists so examples and tests can express small programs
//! (including attack payload stubs) readably; the workload generators use
//! [`ProgramBuilder`](crate::ProgramBuilder) directly. Forward references
//! are resolved through the builder's label machinery, so a single pass
//! over the source suffices.
//!
//! # Syntax
//!
//! ```text
//! .text                      # switch to the text section (default)
//! .global main               # export `main`
//! main:                      # labels end with `:` — text labels become functions
//!     li   a0, 0x1234        # pseudo: expands to lui+ori as needed
//!     la   a1, buf           # address of a data or text symbol
//!     lw   t0, 4(a1)         # load with offset(base) addressing
//!     beqz t0, done          # pseudo branch
//!     call helper
//! done:
//!     halt
//! helper:
//!     addi a0, a0, 1
//!     ret
//!
//! .data
//! buf:    .space 64          # zero-filled bytes
//! msg:    .asciz "hi\n"      # NUL-terminated string
//! nums:   .word 1, 2, -3     # 32-bit words
//! table:  .target main, helper   # function-pointer table (absolute addrs)
//! ```
//!
//! Additional directives: `.equ NAME, value` defines an assembly-time
//! constant usable wherever an immediate is expected; `.align N` pads the
//! data segment to an N-byte boundary.
//!
//! Pseudo-instructions beyond the obvious (`li`, `la`, `mv`, `j`, `call`,
//! `ret`, `beqz`, `bnez`): `not`, `neg`, `seqz`, `snez`, `subi`, `ble`,
//! `bgt` (the last four expand using the assembler temporary `at` or
//! operand swaps, as on MIPS).
//!
//! Comments start with `#` or `;` and run to end of line.

use std::collections::HashMap;
use std::fmt;

use crate::{AluOp, Cond, DataRef, Image, Instruction, Label, ProgramBuilder, Reg, Width};

/// An assembly error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assembles IR32 source text into an [`Image`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// unknown mnemonic, malformed operand, or unresolved symbol.
///
/// # Examples
///
/// ```
/// let img = indra_isa::assemble("demo", "
///     .text
///     .global main
/// main:
///     li a0, 7
///     halt
/// ").unwrap();
/// assert_eq!(img.entry, img.addr_of("main").unwrap());
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Image, AsmError> {
    Assembler::new(name).run(source)
}

struct Assembler {
    b: ProgramBuilder,
    section: Section,
    consts: HashMap<String, i64>,
    text_labels: HashMap<String, Label>,
    data_names: HashMap<String, DataRef>,
    globals: Vec<String>,
    /// Text labels bound in order of appearance, for function symbols.
    bound_text: Vec<(String, Label)>,
    /// Data labels whose definition must be the next data directive.
    pending_data_label: Option<(String, usize)>,
    /// `.target` tables patched after all labels exist: (name, entries, line).
    deferred_targets: Vec<(String, Vec<String>, usize)>,
}

impl Assembler {
    fn new(name: &str) -> Assembler {
        Assembler {
            b: ProgramBuilder::new(name),
            section: Section::Text,
            consts: HashMap::new(),
            text_labels: HashMap::new(),
            data_names: HashMap::new(),
            globals: Vec::new(),
            bound_text: Vec::new(),
            pending_data_label: None,
            deferred_targets: Vec::new(),
        }
    }

    fn err(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// An immediate: a literal, or a declared `.equ` constant.
    fn imm_value(&self, s: &str) -> Option<i64> {
        parse_imm(s).or_else(|| self.consts.get(s.trim()).copied())
    }

    fn text_label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.text_labels.get(name) {
            l
        } else {
            let l = self.b.new_label();
            self.text_labels.insert(name.to_owned(), l);
            l
        }
    }

    fn run(mut self, source: &str) -> Result<Image, AsmError> {
        // Split the source into data-section and text-section lines, and
        // process the data section first: `la` in text needs every data
        // symbol to already exist. Text-label forward references are fine
        // either way (the builder's fixups handle them), and `.target`
        // tables in data that point at text labels are deferred below.
        let mut data_lines: Vec<(usize, &str)> = Vec::new();
        let mut text_lines: Vec<(usize, &str)> = Vec::new();
        let mut section = Section::Text;
        for (idx, raw) in source.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".equ ") {
                let (name, value) =
                    rest.split_once(',').ok_or_else(|| Self::err(lineno, ".equ NAME, value"))?;
                let name = name.trim();
                if !is_ident(name) {
                    return Err(Self::err(lineno, format!("invalid constant name `{name}`")));
                }
                let value = parse_imm(value.trim())
                    .ok_or_else(|| Self::err(lineno, format!("bad .equ value `{value}`")))?;
                self.consts.insert(name.to_owned(), value);
                continue;
            }
            match line {
                ".text" => section = Section::Text,
                ".data" => section = Section::Data,
                _ => match section {
                    Section::Text => text_lines.push((lineno, line)),
                    Section::Data => data_lines.push((lineno, line)),
                },
            }
        }
        self.section = Section::Data;
        for (lineno, line) in data_lines {
            self.line(lineno, line)?;
        }
        if let Some((name, line)) = self.pending_data_label.take() {
            return Err(Self::err(line, format!("data label `{name}` has no directive")));
        }
        // Materialize deferred .target tables before any text is processed,
        // so `la` can find them; the entries are forward text-label
        // references resolved by the builder's fixups at finish().
        for (name, entries, _line) in std::mem::take(&mut self.deferred_targets) {
            let labels: Vec<Label> = entries.iter().map(|e| self.text_label(e)).collect();
            let r = self.b.data_fn_table(name.clone(), &labels);
            self.data_names.insert(name, r);
        }
        self.section = Section::Text;
        for (lineno, line) in text_lines {
            self.line(lineno, line)?;
        }

        // Function symbols for all text labels, exported iff .global.
        for (name, label) in std::mem::take(&mut self.bound_text) {
            let exported = self.globals.contains(&name);
            self.b.func_symbol_at(label, name.clone(), exported);
            if name == "main" || self.globals.first().is_some_and(|g| *g == name) {
                // `main` (or the first global) is the entry point.
            }
        }
        if let Some(&l) = self.text_labels.get("main") {
            self.b.set_entry(l);
        }

        self.b.finish().map_err(|e| Self::err(0, e.to_string()))
    }

    fn line(&mut self, lineno: usize, mut line: &str) -> Result<(), AsmError> {
        // Labels (possibly several on one line).
        while let Some(colon) = find_label_colon(line) {
            let name = line[..colon].trim();
            if !is_ident(name) {
                return Err(Self::err(lineno, format!("invalid label name `{name}`")));
            }
            match self.section {
                Section::Text => {
                    let l = self.text_label(name);
                    if self.bound_text.iter().any(|(n, _)| n == name) {
                        return Err(Self::err(lineno, format!("label `{name}` defined twice")));
                    }
                    self.b.bind(l);
                    self.bound_text.push((name.to_owned(), l));
                }
                Section::Data => {
                    if self.pending_data_label.is_some() {
                        return Err(Self::err(lineno, "two data labels without a directive"));
                    }
                    self.pending_data_label = Some((name.to_owned(), lineno));
                }
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            return Ok(());
        }
        if let Some(directive) = line.strip_prefix('.') {
            return self.directive(lineno, directive);
        }
        match self.section {
            Section::Text => self.instruction(lineno, line),
            Section::Data => Err(Self::err(lineno, "instructions are not allowed in .data")),
        }
    }

    fn directive(&mut self, lineno: usize, text: &str) -> Result<(), AsmError> {
        let (name, rest) = split_mnemonic(text);
        match name {
            "text" => {
                self.section = Section::Text;
                Ok(())
            }
            "data" => {
                self.section = Section::Data;
                Ok(())
            }
            "global" | "globl" => {
                let sym = rest.trim();
                if !is_ident(sym) {
                    return Err(Self::err(lineno, format!("invalid symbol `{sym}`")));
                }
                self.globals.push(sym.to_owned());
                Ok(())
            }
            "align" => {
                let n = self
                    .imm_value(rest.trim())
                    .ok_or_else(|| Self::err(lineno, "expected an alignment"))?;
                if self.section != Section::Data {
                    return Err(Self::err(lineno, ".align only allowed in .data"));
                }
                let n = u32::try_from(n).ok().filter(|n| n.is_power_of_two()).ok_or_else(|| {
                    Self::err(lineno, "alignment must be a positive power of two")
                })?;
                self.b.align_data_to(n);
                Ok(())
            }
            "dyncode" => {
                let pages = parse_imm(rest.trim())
                    .ok_or_else(|| Self::err(lineno, "expected page count"))?;
                // Bounded so hostile sources cannot overflow the layout
                // arithmetic or reserve the whole address space.
                let pages = u32::try_from(pages)
                    .ok()
                    .filter(|&p| p > 0 && p <= 4096)
                    .ok_or_else(|| Self::err(lineno, "page count must be between 1 and 4096"))?;
                self.b.declare_dynamic_code_pages(pages);
                Ok(())
            }
            "word" | "space" | "byte" | "ascii" | "asciz" | "target" => {
                let label = self
                    .pending_data_label
                    .take()
                    .map(|(n, _)| n)
                    .unwrap_or_else(|| format!("__anon_{lineno}"));
                self.data_directive(lineno, name, rest, label)
            }
            other => Err(Self::err(lineno, format!("unknown directive `.{other}`"))),
        }
    }

    fn data_directive(
        &mut self,
        lineno: usize,
        directive: &str,
        rest: &str,
        label: String,
    ) -> Result<(), AsmError> {
        if self.section != Section::Data {
            return Err(Self::err(lineno, format!(".{directive} only allowed in .data")));
        }
        let r = match directive {
            "word" => {
                let mut words = Vec::new();
                for part in split_operands(rest) {
                    let v = self
                        .imm_value(&part)
                        .ok_or_else(|| Self::err(lineno, format!("bad word `{part}`")))?;
                    words.push(v as u32);
                }
                self.b.data_words(label.clone(), &words)
            }
            "byte" => {
                let mut bytes = Vec::new();
                for part in split_operands(rest) {
                    let v = self
                        .imm_value(&part)
                        .ok_or_else(|| Self::err(lineno, format!("bad byte `{part}`")))?;
                    bytes.push(v as u8);
                }
                self.b.data_bytes(label.clone(), &bytes)
            }
            "space" => {
                let n = self
                    .imm_value(rest.trim())
                    .ok_or_else(|| Self::err(lineno, "expected a size"))?;
                // A negative or absurd size is hostile input, not a layout
                // request: `n as u32` would otherwise ask for gigabytes.
                let n = u32::try_from(n)
                    .ok()
                    .filter(|&n| n <= (1 << 24))
                    .ok_or_else(|| Self::err(lineno, "size must be between 0 and 16 MiB"))?;
                self.b.data_zeroed(label.clone(), n)
            }
            "ascii" | "asciz" => {
                let mut s = parse_string(rest.trim())
                    .ok_or_else(|| Self::err(lineno, "expected a quoted string"))?;
                if directive == "asciz" {
                    s.push(0);
                }
                self.b.data_bytes(label.clone(), &s)
            }
            "target" => {
                let entries: Vec<String> = split_operands(rest).collect();
                self.deferred_targets.push((label.clone(), entries, lineno));
                return Ok(());
            }
            _ => unreachable!(),
        };
        self.data_names.insert(label, r);
        Ok(())
    }

    fn instruction(&mut self, lineno: usize, line: &str) -> Result<(), AsmError> {
        let (mn, rest) = split_mnemonic(line);
        let ops: Vec<String> = split_operands(rest).collect();
        let e = |msg: &str| Self::err(lineno, format!("{mn}: {msg}"));
        let reg = |s: &str| -> Result<Reg, AsmError> {
            s.parse().map_err(|_| Self::err(lineno, format!("bad register `{s}`")))
        };
        let imm = |s: &str| -> Result<i32, AsmError> {
            self.imm_value(s)
                .map(|v| v as i32)
                .ok_or_else(|| Self::err(lineno, format!("bad immediate `{s}`")))
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(Self::err(lineno, format!("{mn}: expected {n} operands, got {}", ops.len())))
            }
        };

        // Register-register ALU ops.
        let rrr: Option<AluOp> = match mn {
            "add" => Some(AluOp::Add),
            "sub" => Some(AluOp::Sub),
            "mul" => Some(AluOp::Mul),
            "div" => Some(AluOp::Div),
            "rem" => Some(AluOp::Rem),
            "and" => Some(AluOp::And),
            "or" => Some(AluOp::Or),
            "xor" => Some(AluOp::Xor),
            "sll" => Some(AluOp::Sll),
            "srl" => Some(AluOp::Srl),
            "sra" => Some(AluOp::Sra),
            "slt" => Some(AluOp::Slt),
            "sltu" => Some(AluOp::Sltu),
            _ => None,
        };
        if let Some(op) = rrr {
            need(3)?;
            self.b.alu(op, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?);
            return Ok(());
        }

        // Immediate ALU ops.
        let rri: Option<AluOp> = match mn {
            "addi" => Some(AluOp::Add),
            "andi" => Some(AluOp::And),
            "ori" => Some(AluOp::Or),
            "xori" => Some(AluOp::Xor),
            "slti" => Some(AluOp::Slt),
            "sltiu" => Some(AluOp::Sltu),
            "slli" => Some(AluOp::Sll),
            "srli" => Some(AluOp::Srl),
            "srai" => Some(AluOp::Sra),
            "muli" => Some(AluOp::Mul),
            _ => None,
        };
        if let Some(op) = rri {
            need(3)?;
            self.b.inst(Instruction::AluImm {
                op,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: imm(&ops[2])?,
            });
            return Ok(());
        }

        // Loads/stores with offset(base).
        let mem: Option<(Width, bool, bool)> = match mn {
            "lb" => Some((Width::Byte, true, true)),
            "lbu" => Some((Width::Byte, false, true)),
            "lh" => Some((Width::Half, true, true)),
            "lhu" => Some((Width::Half, false, true)),
            "lw" => Some((Width::Word, true, true)),
            "sb" => Some((Width::Byte, false, false)),
            "sh" => Some((Width::Half, false, false)),
            "sw" => Some((Width::Word, false, false)),
            _ => None,
        };
        if let Some((width, signed, is_load)) = mem {
            need(2)?;
            let r = reg(&ops[0])?;
            let (offset, base) =
                parse_mem_operand(&ops[1]).ok_or_else(|| e("expected offset(base)"))?;
            let base = reg(&base)?;
            if is_load {
                self.b.inst(Instruction::Load { width, signed, rd: r, rs1: base, offset });
            } else {
                self.b.inst(Instruction::Store { width, rs2: r, rs1: base, offset });
            }
            return Ok(());
        }

        // Branches.
        let cond: Option<Cond> = match mn {
            "beq" => Some(Cond::Eq),
            "bne" => Some(Cond::Ne),
            "blt" => Some(Cond::Lt),
            "bge" => Some(Cond::Ge),
            "bltu" => Some(Cond::Ltu),
            "bgeu" => Some(Cond::Geu),
            _ => None,
        };
        if let Some(cond) = cond {
            need(3)?;
            let rs1 = reg(&ops[0])?;
            let rs2 = reg(&ops[1])?;
            let target = self.text_label(&ops[2]);
            self.b.branch(cond, rs1, rs2, target);
            return Ok(());
        }

        match mn {
            "not" => {
                // two-instruction expansion through the assembler temp
                need(2)?;
                let rd = reg(&ops[0])?;
                let rs = reg(&ops[1])?;
                self.b.li(Reg::AT, -1);
                self.b.alu(AluOp::Xor, rd, rs, Reg::AT);
            }
            "neg" => {
                need(2)?;
                self.b.alu(AluOp::Sub, reg(&ops[0])?, Reg::ZERO, reg(&ops[1])?);
            }
            "seqz" => {
                need(2)?;
                self.b.inst(Instruction::AluImm {
                    op: AluOp::Sltu,
                    rd: reg(&ops[0])?,
                    rs1: reg(&ops[1])?,
                    imm: 1,
                });
            }
            "snez" => {
                need(2)?;
                self.b.alu(AluOp::Sltu, reg(&ops[0])?, Reg::ZERO, reg(&ops[1])?);
            }
            "subi" => {
                need(3)?;
                self.b.addi(reg(&ops[0])?, reg(&ops[1])?, -imm(&ops[2])?);
            }
            "ble" => {
                need(3)?;
                let rs1 = reg(&ops[0])?;
                let rs2 = reg(&ops[1])?;
                let t = self.text_label(&ops[2]);
                self.b.branch(Cond::Ge, rs2, rs1, t);
            }
            "bgt" => {
                need(3)?;
                let rs1 = reg(&ops[0])?;
                let rs2 = reg(&ops[1])?;
                let t = self.text_label(&ops[2]);
                self.b.branch(Cond::Lt, rs2, rs1, t);
            }
            "beqz" => {
                need(2)?;
                let r = reg(&ops[0])?;
                let t = self.text_label(&ops[1]);
                self.b.beqz(r, t);
            }
            "bnez" => {
                need(2)?;
                let r = reg(&ops[0])?;
                let t = self.text_label(&ops[1]);
                self.b.bnez(r, t);
            }
            "li" => {
                need(2)?;
                self.b.li(reg(&ops[0])?, imm(&ops[1])?);
            }
            "lui" => {
                need(2)?;
                let v = imm(&ops[1])?;
                self.b.inst(Instruction::Lui { rd: reg(&ops[0])?, imm: v as u32 });
            }
            "la" => {
                need(2)?;
                let rd = reg(&ops[0])?;
                let sym = ops[1].as_str();
                if let Some(&d) = self.data_names.get(sym) {
                    self.b.la_data(rd, d, 0);
                } else {
                    // Forward text reference or not-yet-seen data label: code
                    // labels resolve via the builder; data labels must be
                    // defined before use.
                    let l = self.text_label(sym);
                    self.b.la_label(rd, l);
                }
            }
            "mv" => {
                need(2)?;
                self.b.mv(reg(&ops[0])?, reg(&ops[1])?);
            }
            "j" => {
                need(1)?;
                let t = self.text_label(&ops[0]);
                self.b.jump(t);
            }
            "jal" | "call" => {
                need(1)?;
                let t = self.text_label(&ops[0]);
                self.b.call(t);
            }
            "jalr" => {
                need(1)?;
                self.b.call_indirect(reg(&ops[0])?);
            }
            "jr" => {
                need(1)?;
                self.b.inst(Instruction::Jalr { rd: Reg::ZERO, rs1: reg(&ops[0])?, offset: 0 });
            }
            "ret" => {
                need(0)?;
                self.b.ret();
            }
            "syscall" => {
                need(1)?;
                let code = imm(&ops[0])?;
                let code = u16::try_from(code).map_err(|_| e("code out of range"))?;
                self.b.syscall(code);
            }
            "halt" => {
                need(0)?;
                self.b.halt();
            }
            "nop" => {
                need(0)?;
                self.b.nop();
            }
            other => return Err(Self::err(lineno, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> &str {
    // Respect quotes so `.asciz "# not a comment"` works.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' | ';' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    is_ident(head.trim()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_mnemonic(line: &str) -> (&str, &str) {
    match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => (line, ""),
    }
}

fn split_operands(rest: &str) -> impl Iterator<Item = String> + '_ {
    rest.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned)
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .ok()
            .or_else(|| u32::from_str_radix(hex, 16).ok().map(i64::from));
    }
    if let Some(neg) = s.strip_prefix("-0x") {
        return i64::from_str_radix(neg, 16).ok().map(|v| -v);
    }
    if let Some(c) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        if c.len() == 1 {
            return Some(i64::from(c.bytes().next()?));
        }
    }
    s.parse::<i64>().ok()
}

fn parse_mem_operand(s: &str) -> Option<(i32, String)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close <= open {
        return None;
    }
    let off = s[..open].trim();
    let offset = if off.is_empty() { 0 } else { parse_imm(off)? as i32 };
    Some((offset, s[open + 1..close].trim().to_owned()))
}

fn parse_string(s: &str) -> Option<Vec<u8>> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.bytes();
    while let Some(b) = chars.next() {
        if b == b'\\' {
            match chars.next()? {
                b'n' => out.push(b'\n'),
                b't' => out.push(b'\t'),
                b'0' => out.push(0),
                b'\\' => out.push(b'\\'),
                b'"' => out.push(b'"'),
                other => out.push(other),
            }
        } else {
            out.push(b);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_program_assembles() {
        let img = assemble(
            "hello",
            r#"
            .text
            .global main
        main:
            li   a0, 0x1234
            la   a1, msg
            call helper
            halt
        helper:
            addi a0, a0, 1
            ret

            .data
        msg: .asciz "hi\n"
        buf: .space 16
        nums: .word 1, 2, -3, 0xff
        "#,
        )
        .unwrap();
        assert_eq!(img.entry, img.addr_of("main").unwrap());
        assert!(img.addr_of("helper").is_some());
        assert_eq!(img.symbol("msg").unwrap().size, 4);
        assert_eq!(img.symbol("nums").unwrap().size, 16);
        assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn branches_and_loops() {
        let img = assemble(
            "loop",
            "
        main:
            li t0, 10
            li t1, 0
        top:
            addi t1, t1, 1
            addi t0, t0, -1
            bnez t0, top
            beq t1, t0, main
            halt
        ",
        )
        .unwrap();
        assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn fn_pointer_table() {
        let img = assemble(
            "tbl",
            "
        main:
            la t0, handlers
            lw t1, 0(t0)
            jalr t1
            halt
        h_a:
            ret
        h_b:
            ret
            .data
        handlers: .target h_a, h_b
        ",
        )
        .unwrap();
        let tbl = img.symbol("handlers").unwrap();
        let seg = img.segment_at(tbl.addr).unwrap();
        let off = (tbl.addr - seg.vaddr) as usize;
        let e0 = u32::from_le_bytes(seg.data[off..off + 4].try_into().unwrap());
        assert_eq!(e0, img.addr_of("h_a").unwrap());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("bad", "main:\n    bogus a0, a1\n    halt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn unknown_register_rejected() {
        let err = assemble("bad", "main:\n    addi q7, a0, 1\n").unwrap_err();
        assert!(err.message.contains("q7"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("bad", "main:\n    nop\nmain:\n    halt\n").unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn comments_and_quotes() {
        let img = assemble(
            "c",
            "main: # entry\n    halt ; trailing\n.data\ns: .asciz \"has # inside\"\n",
        )
        .unwrap();
        assert_eq!(img.symbol("s").unwrap().size, "has # inside\0".len() as u32);
    }

    #[test]
    fn mem_operands() {
        let img = assemble(
            "m",
            "main:\n    lw a0, 8(sp)\n    sw a0, -4(fp)\n    lbu t0, (a1)\n    halt\n",
        )
        .unwrap();
        assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn data_in_text_rejected() {
        let err = assemble("bad", "main:\n.word 5\n").unwrap_err();
        assert!(err.message.contains("only allowed in .data"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::Reg;

    /// Execute-free check: assemble and decode the first instructions.
    fn words(src: &str) -> Vec<Instruction> {
        let img = assemble("t", src).unwrap();
        img.segments[0]
            .data
            .chunks_exact(4)
            .map(|c| Instruction::decode(u32::from_le_bytes(c.try_into().unwrap())))
            .take_while(Result::is_ok)
            .map(Result::unwrap)
            .collect()
    }

    #[test]
    fn equ_constants_in_immediates_and_data() {
        let img = assemble(
            "e",
            "
            .equ BUFSZ, 128
            .equ MAGIC, 0x1F
        main:
            li a0, BUFSZ
            addi a1, zero, MAGIC
            halt
        .data
        buf: .space BUFSZ
        tag: .word MAGIC, BUFSZ
        ",
        )
        .unwrap();
        assert_eq!(img.symbol("buf").unwrap().size, 128);
        let insts = words(
            "
            .equ BUFSZ, 128
        main:
            li a0, BUFSZ
            halt
        ",
        );
        assert_eq!(
            insts[0],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 128 }
        );
    }

    #[test]
    fn unknown_constant_is_an_error() {
        let err = assemble("e", "main:\n li a0, NOPE\n halt\n").unwrap_err();
        assert!(err.message.contains("NOPE"));
    }

    #[test]
    fn align_pads_data() {
        let img =
            assemble("a", "main:\n halt\n.data\nb: .byte 1\n.align 64\nc: .word 7\n").unwrap();
        let c = img.addr_of("c").unwrap();
        assert!(c.is_multiple_of(64), "c at {c:#x} must be 64-aligned");
    }

    #[test]
    fn align_rejects_non_power_of_two() {
        let err = assemble("a", "main:\n halt\n.data\n.align 3\n").unwrap_err();
        assert!(err.message.contains("power of two"));
    }

    #[test]
    fn pseudo_expansions() {
        let insts = words(
            "
        main:
            neg  t0, t1
            seqz t2, t3
            snez t4, t5
            subi t6, t7, 5
            halt
        ",
        );
        assert_eq!(
            insts[0],
            Instruction::Alu { op: AluOp::Sub, rd: Reg::T0, rs1: Reg::ZERO, rs2: Reg::T1 }
        );
        assert_eq!(
            insts[1],
            Instruction::AluImm { op: AluOp::Sltu, rd: Reg::T2, rs1: Reg::T3, imm: 1 }
        );
        assert_eq!(
            insts[2],
            Instruction::Alu { op: AluOp::Sltu, rd: Reg::T4, rs1: Reg::ZERO, rs2: Reg::T5 }
        );
        assert_eq!(
            insts[3],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T6, rs1: Reg::T7, imm: -5 }
        );
    }

    #[test]
    fn not_uses_assembler_temp() {
        let insts = words("main:\n not a0, a1\n halt\n");
        // li at, -1  (single addi) then xor a0, a1, at
        assert_eq!(
            insts[0],
            Instruction::AluImm { op: AluOp::Add, rd: Reg::AT, rs1: Reg::ZERO, imm: -1 }
        );
        assert_eq!(
            insts[1],
            Instruction::Alu { op: AluOp::Xor, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::AT }
        );
    }

    #[test]
    fn swapped_operand_branches() {
        let insts = words("main:\n ble t0, t1, main\n bgt t0, t1, main\n halt\n");
        match insts[0] {
            Instruction::Branch { cond: Cond::Ge, rs1, rs2, .. } => {
                assert_eq!((rs1, rs2), (Reg::T1, Reg::T0), "ble swaps to bge");
            }
            other => panic!("expected branch, got {other}"),
        }
        match insts[1] {
            Instruction::Branch { cond: Cond::Lt, rs1, rs2, .. } => {
                assert_eq!((rs1, rs2), (Reg::T1, Reg::T0), "bgt swaps to blt");
            }
            other => panic!("expected branch, got {other}"),
        }
    }
}
