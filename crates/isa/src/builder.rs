//! Programmatic code generation for IR32.
//!
//! [`ProgramBuilder`] plays the role of the compiler + linker for this
//! reproduction: workload generators use it to emit whole server
//! applications as real machine code, with labels, functions, data
//! objects, function-pointer tables and the monitor-facing metadata
//! (symbols, indirect-target sets) collected along the way.

use std::collections::BTreeSet;
use std::fmt;

use crate::{
    AluOp, Cond, EncodeError, Image, Instruction, Perms, Reg, Segment, Symbol, SymbolKind,
};

/// Default base of the text segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Default base of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Default top of the initial stack (grows downward).
pub const STACK_TOP: u32 = 0x7FFF_F000;
/// Default size of the initial stack mapping.
pub const STACK_SIZE: u32 = 64 * 1024;

/// A forward-referenceable position in the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A named object in the data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRef {
    sym: usize,
}

#[derive(Debug, Clone)]
enum Fixup {
    /// Patch a branch offset to point at a label.
    Branch(Label),
    /// Patch a `jal` offset to point at a label.
    Jal(Label),
    /// Patch the 16-bit immediate with the high half of a label address.
    HiLabel(Label),
    /// Patch the 16-bit immediate with the low half of a label address.
    LoLabel(Label),
    /// Patch with the high half of a data symbol address (+offset).
    HiData(DataRef, u32),
    /// Patch with the low half of a data symbol address (+offset).
    LoData(DataRef, u32),
}

#[derive(Debug, Clone)]
struct Slot {
    inst: Instruction,
    fixup: Option<Fixup>,
}

#[derive(Debug, Clone)]
struct DataSym {
    name: String,
    offset: u32,
    size: u32,
}

#[derive(Debug, Clone)]
struct PendingFunc {
    name: String,
    start: usize,
    exported: bool,
}

#[derive(Debug, Clone, Copy)]
enum DataPatch {
    /// Store the absolute address of a text label at this data offset.
    LabelAddr { offset: u32, label: Label },
}

/// Error produced while building or finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// Index of the referencing instruction.
        at_inst: usize,
    },
    /// A label was bound twice.
    ReboundLabel,
    /// Instruction encoding failed after fixup resolution.
    Encode(EncodeError),
    /// `end_func` without `begin_func`.
    NoOpenFunction,
    /// `finish` while a function is still open.
    UnclosedFunction {
        /// The still-open function's name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { at_inst } => {
                write!(f, "unbound label referenced by instruction {at_inst}")
            }
            BuildError::ReboundLabel => f.write_str("label bound twice"),
            BuildError::Encode(e) => write!(f, "encoding failed: {e}"),
            BuildError::NoOpenFunction => f.write_str("end_func called with no open function"),
            BuildError::UnclosedFunction { name } => {
                write!(f, "finish called while function `{name}` is still open")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<EncodeError> for BuildError {
    fn from(e: EncodeError) -> Self {
        BuildError::Encode(e)
    }
}

/// Incrementally builds an IR32 [`Image`].
///
/// # Examples
///
/// ```
/// use indra_isa::{ProgramBuilder, Reg};
///
/// # fn main() -> Result<(), indra_isa::BuildError> {
/// let mut b = ProgramBuilder::new("demo");
/// b.begin_func("main", true);
/// b.li(Reg::A0, 41);
/// b.addi(Reg::A0, Reg::A0, 1);
/// b.halt();
/// b.end_func();
/// let image = b.finish()?;
/// assert_eq!(image.entry, image.addr_of("main").unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    text: Vec<Slot>,
    labels: Vec<Option<usize>>,
    data: Vec<u8>,
    data_syms: Vec<DataSym>,
    data_patches: Vec<DataPatch>,
    funcs: Vec<Symbol>,
    label_funcs: Vec<(Label, String, bool)>,
    open_func: Option<PendingFunc>,
    entry_label: Option<Label>,
    extra_indirect_targets: Vec<Label>,
    dynamic_regions_pages: u32,
    text_base: u32,
    data_base: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            text: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            data_syms: Vec::new(),
            data_patches: Vec::new(),
            funcs: Vec::new(),
            label_funcs: Vec::new(),
            open_func: None,
            entry_label: None,
            extra_indirect_targets: Vec::new(),
            dynamic_regions_pages: 0,
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
        }
    }

    /// Overrides the text segment base address.
    pub fn text_base(&mut self, base: u32) -> &mut Self {
        self.text_base = base;
        self
    }

    /// Overrides the data segment base address.
    pub fn data_base(&mut self, base: u32) -> &mut Self {
        self.data_base = base;
        self
    }

    /// Current instruction index (useful for size accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` when no instructions have been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    // ---- labels ---------------------------------------------------------

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current text position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (that is a builder-usage bug).
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.text.len());
    }

    /// Allocates and immediately binds a label at the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- functions ------------------------------------------------------

    /// Starts a function: binds a label, records a symbol, and registers the
    /// entry as a valid indirect-call target.
    pub fn begin_func(&mut self, name: impl Into<String>, exported: bool) -> Label {
        let name = name.into();
        assert!(self.open_func.is_none(), "begin_func while `{name}` caller still open");
        let label = self.here();
        if self.entry_label.is_none() {
            self.entry_label = Some(label);
        }
        self.open_func = Some(PendingFunc { name, start: self.text.len(), exported });
        self.extra_indirect_targets.push(label);
        label
    }

    /// Ends the currently open function, fixing its size in the symbol table.
    pub fn end_func(&mut self) {
        let f = self.open_func.take().expect("end_func with no open function");
        self.funcs.push(Symbol {
            name: f.name,
            addr: f.start as u32, // patched to a real address in finish()
            size: (self.text.len() - f.start) as u32 * 4,
            kind: SymbolKind::Function,
            exported: f.exported,
        });
    }

    /// Registers a function symbol at an already-bound label without the
    /// `begin_func`/`end_func` bracketing (used by the assembler, where
    /// function extents are implicit). The entry also becomes a valid
    /// indirect-call target.
    pub fn func_symbol_at(&mut self, label: Label, name: impl Into<String>, exported: bool) {
        self.label_funcs.push((label, name.into(), exported));
        self.extra_indirect_targets.push(label);
        if self.entry_label.is_none() {
            self.entry_label = Some(label);
        }
    }

    /// Marks `label` as the program entry point (defaults to the first
    /// function begun).
    pub fn set_entry(&mut self, label: Label) {
        self.entry_label = Some(label);
    }

    /// Registers an additional valid indirect-jump target (e.g. a jump-table
    /// case) with the monitor metadata.
    pub fn add_indirect_target(&mut self, label: Label) {
        self.extra_indirect_targets.push(label);
    }

    /// Reserves `pages` pages of declared dynamic-code region above the heap.
    pub fn declare_dynamic_code_pages(&mut self, pages: u32) {
        self.dynamic_regions_pages += pages;
    }

    // ---- raw emission ---------------------------------------------------

    /// Emits one instruction verbatim.
    pub fn inst(&mut self, inst: Instruction) {
        self.text.push(Slot { inst, fixup: None });
    }

    fn inst_fixup(&mut self, inst: Instruction, fixup: Fixup) {
        self.text.push(Slot { inst, fixup: Some(fixup) });
    }

    // ---- convenience emitters -------------------------------------------

    /// `add rd, rs1, rs2` and friends.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Instruction::Alu { op, rd, rs1, rs2 });
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.inst(Instruction::AluImm { op: AluOp::Add, rd, rs1, imm });
    }

    /// Loads an arbitrary 32-bit constant, expanding to 1–2 instructions.
    pub fn li(&mut self, rd: Reg, value: i32) {
        let v = value as u32;
        if (-(1 << 15)..(1 << 15)).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
        } else if v & 0xFFFF == 0 {
            self.inst(Instruction::Lui { rd, imm: v >> 16 });
        } else {
            self.inst(Instruction::Lui { rd, imm: v >> 16 });
            self.inst(Instruction::AluImm { op: AluOp::Or, rd, rs1: rd, imm: (v & 0xFFFF) as i32 });
        }
    }

    /// Loads the absolute address of a code label (2 instructions).
    pub fn la_label(&mut self, rd: Reg, label: Label) {
        self.inst_fixup(Instruction::Lui { rd, imm: 0 }, Fixup::HiLabel(label));
        self.inst_fixup(
            Instruction::AluImm { op: AluOp::Or, rd, rs1: rd, imm: 0 },
            Fixup::LoLabel(label),
        );
    }

    /// Loads the absolute address of a data object plus `offset`.
    pub fn la_data(&mut self, rd: Reg, data: DataRef, offset: u32) {
        self.inst_fixup(Instruction::Lui { rd, imm: 0 }, Fixup::HiData(data, offset));
        self.inst_fixup(
            Instruction::AluImm { op: AluOp::Or, rd, rs1: rd, imm: 0 },
            Fixup::LoData(data, offset),
        );
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.inst(Instruction::mv(rd, rs));
    }

    /// Word load `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.inst(Instruction::Load { width: crate::Width::Word, signed: true, rd, rs1, offset });
    }

    /// Word store `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i32) {
        self.inst(Instruction::Store { width: crate::Width::Word, rs2, rs1, offset });
    }

    /// Byte load (unsigned) `lbu rd, offset(rs1)`.
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.inst(Instruction::Load { width: crate::Width::Byte, signed: false, rd, rs1, offset });
    }

    /// Byte store `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, offset: i32) {
        self.inst(Instruction::Store { width: crate::Width::Byte, rs2, rs1, offset });
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) {
        self.inst_fixup(Instruction::Branch { cond, rs1, rs2, offset: 0 }, Fixup::Branch(target));
    }

    /// `beqz rs, target`.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.branch(Cond::Eq, rs, Reg::ZERO, target);
    }

    /// `bnez rs, target`.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.branch(Cond::Ne, rs, Reg::ZERO, target);
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) {
        self.inst_fixup(Instruction::Jal { rd: Reg::ZERO, offset: 0 }, Fixup::Jal(target));
    }

    /// Direct call to a label (`jal ra, target`).
    pub fn call(&mut self, target: Label) {
        self.inst_fixup(Instruction::Jal { rd: Reg::RA, offset: 0 }, Fixup::Jal(target));
    }

    /// Indirect call through a register (`jalr ra, 0(rs)`).
    pub fn call_indirect(&mut self, rs: Reg) {
        self.inst(Instruction::Jalr { rd: Reg::RA, rs1: rs, offset: 0 });
    }

    /// Function return.
    pub fn ret(&mut self) {
        self.inst(Instruction::ret());
    }

    /// System call.
    pub fn syscall(&mut self, code: u16) {
        self.inst(Instruction::Syscall { code });
    }

    /// Halt the core.
    pub fn halt(&mut self) {
        self.inst(Instruction::Halt);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.inst(Instruction::Nop);
    }

    /// Standard prologue: push `ra` and `fp`, set up a `frame`-byte frame.
    pub fn prologue(&mut self, frame: i32) {
        let total = frame + 8;
        self.addi(Reg::SP, Reg::SP, -total);
        self.sw(Reg::RA, Reg::SP, frame);
        self.sw(Reg::FP, Reg::SP, frame + 4);
        self.addi(Reg::FP, Reg::SP, 0);
    }

    /// Matching epilogue for [`ProgramBuilder::prologue`] followed by `ret`.
    pub fn epilogue(&mut self, frame: i32) {
        let total = frame + 8;
        self.lw(Reg::RA, Reg::SP, frame);
        self.lw(Reg::FP, Reg::SP, frame + 4);
        self.addi(Reg::SP, Reg::SP, total);
        self.ret();
    }

    // ---- data -----------------------------------------------------------

    fn add_data_sym(&mut self, name: String, offset: u32, size: u32) -> DataRef {
        self.data_syms.push(DataSym { name, offset, size });
        DataRef { sym: self.data_syms.len() - 1 }
    }

    /// Adds initialized bytes to the data segment.
    pub fn data_bytes(&mut self, name: impl Into<String>, bytes: &[u8]) -> DataRef {
        self.align_data(4);
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.add_data_sym(name.into(), offset, bytes.len() as u32)
    }

    /// Adds initialized 32-bit words to the data segment.
    pub fn data_words(&mut self, name: impl Into<String>, words: &[u32]) -> DataRef {
        self.align_data(4);
        let offset = self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self.add_data_sym(name.into(), offset, words.len() as u32 * 4)
    }

    /// Adds a zero-initialized region of `size` bytes to the data segment.
    pub fn data_zeroed(&mut self, name: impl Into<String>, size: u32) -> DataRef {
        self.align_data(4);
        let offset = self.data.len() as u32;
        self.data.resize(self.data.len() + size as usize, 0);
        self.add_data_sym(name.into(), offset, size)
    }

    /// Adds a table of function pointers (absolute code-label addresses) —
    /// the classic target of function-pointer-overwrite exploits.
    pub fn data_fn_table(&mut self, name: impl Into<String>, entries: &[Label]) -> DataRef {
        self.align_data(4);
        let offset = self.data.len() as u32;
        for (i, &label) in entries.iter().enumerate() {
            self.data_patches.push(DataPatch::LabelAddr { offset: offset + i as u32 * 4, label });
            self.data.extend_from_slice(&0u32.to_le_bytes());
        }
        self.add_data_sym(name.into(), offset, entries.len() as u32 * 4)
    }

    fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Pads the data segment to an `align`-byte boundary (`.align`).
    ///
    /// # Panics
    ///
    /// Panics unless `align` is a power of two.
    pub fn align_data_to(&mut self, align: u32) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.align_data(align as usize);
    }

    // ---- finalization ----------------------------------------------------

    fn label_addr(&self, label: Label, at_inst: usize) -> Result<u32, BuildError> {
        let idx = self.labels[label.0].ok_or(BuildError::UnboundLabel { at_inst })?;
        Ok(self.text_base + idx as u32 * 4)
    }

    fn data_addr(&self, d: DataRef, offset: u32) -> u32 {
        self.data_base + self.data_syms[d.sym].offset + offset
    }

    /// Resolves all fixups, encodes the text, lays out segments and produces
    /// the final [`Image`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on unbound labels, unencodable instructions,
    /// or an unclosed function.
    pub fn finish(mut self) -> Result<Image, BuildError> {
        if let Some(f) = &self.open_func {
            return Err(BuildError::UnclosedFunction { name: f.name.clone() });
        }

        // Resolve text fixups.
        let mut resolved = Vec::with_capacity(self.text.len());
        for i in 0..self.text.len() {
            let here = self.text_base + i as u32 * 4;
            let slot = self.text[i].clone();
            let inst = match slot.fixup {
                None => slot.inst,
                Some(Fixup::Branch(l)) => {
                    let target = self.label_addr(l, i)?;
                    match slot.inst {
                        Instruction::Branch { cond, rs1, rs2, .. } => Instruction::Branch {
                            cond,
                            rs1,
                            rs2,
                            offset: target.wrapping_sub(here) as i32,
                        },
                        other => unreachable!("branch fixup on {other}"),
                    }
                }
                Some(Fixup::Jal(l)) => {
                    let target = self.label_addr(l, i)?;
                    match slot.inst {
                        Instruction::Jal { rd, .. } => {
                            Instruction::Jal { rd, offset: target.wrapping_sub(here) as i32 }
                        }
                        other => unreachable!("jal fixup on {other}"),
                    }
                }
                Some(Fixup::HiLabel(l)) => {
                    let addr = self.label_addr(l, i)?;
                    match slot.inst {
                        Instruction::Lui { rd, .. } => Instruction::Lui { rd, imm: addr >> 16 },
                        other => unreachable!("hi fixup on {other}"),
                    }
                }
                Some(Fixup::LoLabel(l)) => {
                    let addr = self.label_addr(l, i)?;
                    match slot.inst {
                        Instruction::AluImm { op, rd, rs1, .. } => {
                            Instruction::AluImm { op, rd, rs1, imm: (addr & 0xFFFF) as i32 }
                        }
                        other => unreachable!("lo fixup on {other}"),
                    }
                }
                Some(Fixup::HiData(d, off)) => {
                    let addr = self.data_addr(d, off);
                    match slot.inst {
                        Instruction::Lui { rd, .. } => Instruction::Lui { rd, imm: addr >> 16 },
                        other => unreachable!("hi fixup on {other}"),
                    }
                }
                Some(Fixup::LoData(d, off)) => {
                    let addr = self.data_addr(d, off);
                    match slot.inst {
                        Instruction::AluImm { op, rd, rs1, .. } => {
                            Instruction::AluImm { op, rd, rs1, imm: (addr & 0xFFFF) as i32 }
                        }
                        other => unreachable!("lo fixup on {other}"),
                    }
                }
            };
            resolved.push(inst);
        }

        // Encode.
        let mut text_bytes = Vec::with_capacity(resolved.len() * 4);
        for inst in &resolved {
            text_bytes.extend_from_slice(&inst.encode()?.to_le_bytes());
        }

        // Apply data patches (function-pointer tables).
        for patch in &self.data_patches {
            match *patch {
                DataPatch::LabelAddr { offset, label } => {
                    let addr = self.label_addr(label, 0)?;
                    self.data[offset as usize..offset as usize + 4]
                        .copy_from_slice(&addr.to_le_bytes());
                }
            }
        }

        let page = 4096u32;
        let round = |n: u32| n.div_ceil(page) * page;

        let text_size = round((text_bytes.len() as u32).max(4));
        let data_size = round((self.data.len() as u32).max(4));
        let heap_base = self.data_base + data_size + page; // one guard page
        let dyn_base = heap_base;
        let dyn_size = self.dynamic_regions_pages * page;

        let mut image = Image::new(self.name.clone());
        image.segments.push(Segment {
            name: ".text".into(),
            vaddr: self.text_base,
            data: text_bytes,
            size: text_size,
            perms: Perms::RX,
        });
        image.segments.push(Segment {
            name: ".data".into(),
            vaddr: self.data_base,
            data: std::mem::take(&mut self.data),
            size: data_size,
            perms: Perms::RW,
        });
        if dyn_size > 0 {
            image.segments.push(Segment {
                name: ".dyncode".into(),
                vaddr: dyn_base,
                data: Vec::new(),
                size: dyn_size,
                perms: Perms::RWX,
            });
            image.dynamic_code_regions.push((dyn_base, dyn_size));
        }
        image.segments.push(Segment {
            name: ".stack".into(),
            vaddr: STACK_TOP - STACK_SIZE,
            data: Vec::new(),
            size: STACK_SIZE,
            perms: Perms::RW,
        });

        // Patch function symbol addresses from instruction indices.
        for mut sym in std::mem::take(&mut self.funcs) {
            sym.addr = self.text_base + sym.addr * 4;
            image.symbols.push(sym);
        }
        for (label, name, exported) in std::mem::take(&mut self.label_funcs) {
            image.symbols.push(Symbol {
                name,
                addr: self.label_addr(label, 0)?,
                size: 0,
                kind: SymbolKind::Function,
                exported,
            });
        }
        for ds in &self.data_syms {
            image.symbols.push(Symbol {
                name: ds.name.clone(),
                addr: self.data_base + ds.offset,
                size: ds.size,
                kind: SymbolKind::Object,
                exported: false,
            });
        }

        let mut targets = BTreeSet::new();
        for &l in &self.extra_indirect_targets {
            targets.insert(self.label_addr(l, 0)?);
        }
        image.indirect_targets = targets;

        image.entry = match self.entry_label {
            Some(l) => self.label_addr(l, 0)?,
            None => self.text_base,
        };
        image.initial_sp = STACK_TOP - 16;
        image.heap_base = heap_base + dyn_size;

        debug_assert_eq!(image.validate(), Ok(()));
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction;

    #[test]
    fn minimal_program_builds() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        b.li(Reg::A0, 5);
        b.halt();
        b.end_func();
        let img = b.finish().unwrap();
        assert_eq!(img.entry, TEXT_BASE);
        assert_eq!(img.validate(), Ok(()));
        // decode first instruction back
        let word = u32::from_le_bytes(img.segments[0].data[0..4].try_into().unwrap());
        let inst = Instruction::decode(word).unwrap();
        assert_eq!(
            inst,
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 5 }
        );
    }

    #[test]
    fn forward_branch_resolves() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        let skip = b.new_label();
        b.beqz(Reg::A0, skip);
        b.li(Reg::A1, 1);
        b.bind(skip);
        b.halt();
        b.end_func();
        let img = b.finish().unwrap();
        let word = u32::from_le_bytes(img.segments[0].data[0..4].try_into().unwrap());
        match Instruction::decode(word).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn backward_jump_resolves() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        let top = b.here();
        b.nop();
        b.jump(top);
        b.halt();
        b.end_func();
        let img = b.finish().unwrap();
        let word = u32::from_le_bytes(img.segments[0].data[4..8].try_into().unwrap());
        match Instruction::decode(word).unwrap() {
            Instruction::Jal { rd, offset } => {
                assert!(rd.is_zero());
                assert_eq!(offset, -4);
            }
            other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        let dangling = b.new_label();
        b.jump(dangling);
        b.end_func();
        assert!(matches!(b.finish(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn unclosed_function_is_error() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        b.halt();
        assert!(matches!(b.finish(), Err(BuildError::UnclosedFunction { .. })));
    }

    #[test]
    fn data_and_fn_table() {
        let mut b = ProgramBuilder::new("t");
        let f1 = b.begin_func("handler_a", false);
        b.ret();
        b.end_func();
        let f2 = b.begin_func("handler_b", false);
        b.ret();
        b.end_func();
        let main = b.begin_func("main", true);
        b.halt();
        b.end_func();
        b.set_entry(main);
        let buf = b.data_zeroed("buf", 128);
        let table = b.data_fn_table("handlers", &[f1, f2]);
        let msg = b.data_bytes("msg", b"hello");
        let words = b.data_words("nums", &[1, 2, 3]);
        let img = b.finish().unwrap();

        assert_eq!(img.symbol("buf").unwrap().size, 128);
        assert_eq!(img.symbol("msg").unwrap().size, 5);
        assert_eq!(img.symbol("nums").unwrap().size, 12);
        let _ = (buf, msg, words);

        // the fn table holds the real addresses of the handlers
        let tbl_sym = img.symbol("handlers").unwrap();
        let seg = img.segment_at(tbl_sym.addr).unwrap();
        let off = (tbl_sym.addr - seg.vaddr) as usize;
        let e0 = u32::from_le_bytes(seg.data[off..off + 4].try_into().unwrap());
        let e1 = u32::from_le_bytes(seg.data[off + 4..off + 8].try_into().unwrap());
        assert_eq!(e0, img.addr_of("handler_a").unwrap());
        assert_eq!(e1, img.addr_of("handler_b").unwrap());
        let _ = table;

        // handler entries are valid indirect targets
        assert!(img.indirect_targets.contains(&e0));
        assert!(img.indirect_targets.contains(&e1));
        // entry override respected
        assert_eq!(img.entry, img.addr_of("main").unwrap());
    }

    #[test]
    fn li_expansion_widths() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        b.li(Reg::T0, 5); // 1 inst
        b.li(Reg::T1, 0x7FFF_0000u32 as i32); // 1 inst (lui)
        b.li(Reg::T2, 0x1234_5678); // 2 insts
        b.halt();
        b.end_func();
        assert_eq!(b.len(), 5);
        let img = b.finish().unwrap();
        assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn dynamic_code_region_declared() {
        let mut b = ProgramBuilder::new("t");
        b.begin_func("main", true);
        b.halt();
        b.end_func();
        b.declare_dynamic_code_pages(2);
        let img = b.finish().unwrap();
        assert_eq!(img.dynamic_code_regions.len(), 1);
        assert_eq!(img.dynamic_code_regions[0].1, 8192);
        assert_eq!(img.validate(), Ok(()));
    }
}
