//! Disassembly helpers.
//!
//! Turns raw memory back into readable listings — used by diagnostics,
//! monitor violation reports, and the examples when they show what an
//! injected payload actually contained.

use crate::{Image, Instruction};

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Virtual address of the instruction.
    pub addr: u32,
    /// The raw word.
    pub word: u32,
    /// The decoded instruction, or `None` for illegal words.
    pub inst: Option<Instruction>,
    /// A symbol that starts at this address, if any.
    pub symbol: Option<String>,
}

impl std::fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(sym) = &self.symbol {
            writeln!(f, "{sym}:")?;
        }
        match &self.inst {
            Some(i) => write!(f, "  {:#010x}:  {:08x}  {i}", self.addr, self.word),
            None => write!(f, "  {:#010x}:  {:08x}  <illegal>", self.addr, self.word),
        }
    }
}

/// Disassembles `words.len()` instructions starting at `base`.
#[must_use]
pub fn disassemble(base: u32, words: &[u32]) -> Vec<DisasmLine> {
    words
        .iter()
        .enumerate()
        .map(|(i, &word)| DisasmLine {
            addr: base + i as u32 * 4,
            word,
            inst: Instruction::decode(word).ok(),
            symbol: None,
        })
        .collect()
}

/// Disassembles an image's executable segments, annotating function starts.
#[must_use]
pub fn disassemble_image(image: &Image) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    for seg in image.segments.iter().filter(|s| s.perms.execute) {
        let words: Vec<u32> = seg
            .data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
            .collect();
        for mut line in disassemble(seg.vaddr, &words) {
            line.symbol = image
                .symbols
                .iter()
                .find(|s| s.addr == line.addr && s.kind == crate::SymbolKind::Function)
                .map(|s| s.name.clone());
            out.push(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn listing_round_trips_mnemonics() {
        let img = assemble("d", "main:\n    addi a0, zero, 7\n    halt\n").unwrap();
        let lines = disassemble_image(&img);
        assert_eq!(lines[0].symbol.as_deref(), Some("main"));
        assert_eq!(lines[0].inst.unwrap().to_string(), "addi a0, zero, 7");
        assert_eq!(lines[1].inst.unwrap(), Instruction::Halt);
    }

    #[test]
    fn illegal_words_render_as_illegal() {
        let lines = disassemble(0x1000, &[0, u32::MAX]);
        assert!(lines[0].inst.is_none());
        assert!(lines[0].to_string().contains("illegal"));
        assert!(lines[1].inst.is_none());
    }
}
