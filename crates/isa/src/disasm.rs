//! Disassembly helpers.
//!
//! Turns raw memory back into readable listings — used by diagnostics,
//! monitor violation reports, and the examples when they show what an
//! injected payload actually contained.

use std::fmt;

use crate::{AluOp, Cond, Image, Instruction, Reg, Segment, Width};

/// One line of a disassembly listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Virtual address of the instruction.
    pub addr: u32,
    /// The raw word.
    pub word: u32,
    /// The decoded instruction, or `None` for illegal words.
    pub inst: Option<Instruction>,
    /// A symbol that starts at this address, if any.
    pub symbol: Option<String>,
}

impl std::fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(sym) = &self.symbol {
            writeln!(f, "{sym}:")?;
        }
        match &self.inst {
            Some(i) => write!(f, "  {:#010x}:  {:08x}  {i}", self.addr, self.word),
            None => write!(f, "  {:#010x}:  {:08x}  <illegal>", self.addr, self.word),
        }
    }
}

/// Disassembles `words.len()` instructions starting at `base`.
///
/// Total for any input: addresses wrap rather than overflow, so even a
/// hostile `base` near the top of the address space cannot panic.
#[must_use]
pub fn disassemble(base: u32, words: &[u32]) -> Vec<DisasmLine> {
    words
        .iter()
        .enumerate()
        .map(|(i, &word)| DisasmLine {
            addr: base.wrapping_add((i as u32).wrapping_mul(4)),
            word,
            inst: Instruction::decode(word).ok(),
            symbol: None,
        })
        .collect()
}

/// Disassembles one segment's *initialized* bytes (the encoded words the
/// loader maps, not the zero-filled tail). Trailing bytes that do not fill
/// a whole word are dropped — they can never execute as an instruction.
///
/// This is the iteration primitive the static analyzer builds on; it makes
/// no assumption that the bytes came from the assembler.
#[must_use]
pub fn disassemble_segment(seg: &Segment) -> Vec<DisasmLine> {
    let words: Vec<u32> =
        seg.data.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    disassemble(seg.vaddr, &words)
}

/// Disassembles an image's executable segments, annotating function starts.
#[must_use]
pub fn disassemble_image(image: &Image) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    for seg in image.segments.iter().filter(|s| s.perms.execute) {
        for mut line in disassemble_segment(seg) {
            line.symbol = image
                .symbols
                .iter()
                .find(|s| s.addr == line.addr && s.kind == crate::SymbolKind::Function)
                .map(|s| s.name.clone());
            out.push(line);
        }
    }
    out
}

/// Error from [`parse_instruction`]: the text is not a recognizable
/// rendering of one IR32 instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstError {
    /// The offending text.
    pub text: String,
}

impl fmt::Display for ParseInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unparsable instruction `{}`", self.text)
    }
}

impl std::error::Error for ParseInstError {}

/// Parses the textual form produced by [`Instruction`]'s `Display` impl
/// back into an instruction — numeric branch/jump offsets and all.
///
/// This is the inverse the disassembler round-trip property locks:
/// `encode(parse(disasm(w))) == w` for every valid word `w`. (The full
/// assembler is *not* this inverse: it takes labels, not offsets.)
///
/// # Errors
///
/// Returns [`ParseInstError`] when the text is not a rendering this
/// parser recognizes.
pub fn parse_instruction(text: &str) -> Result<Instruction, ParseInstError> {
    let err = || ParseInstError { text: text.to_owned() };
    let line = text.trim();
    let (mn, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i + 1..].trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let reg = |s: &str| s.parse::<Reg>().map_err(|_| err());
    let imm = |s: &str| -> Result<i32, ParseInstError> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(d) => (true, d),
            None => (false, s),
        };
        let v = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
            i64::from_str_radix(hex, 16).map_err(|_| err())?
        } else {
            digits.parse::<i64>().map_err(|_| err())?
        };
        let v = if neg { -v } else { v };
        i32::try_from(v).map_err(|_| err())
    };
    // `offset(base)` memory operands.
    let mem = |s: &str| -> Result<(i32, Reg), ParseInstError> {
        let open = s.find('(').ok_or_else(err)?;
        let close = s.rfind(')').ok_or_else(err)?;
        Ok((imm(&s[..open])?, reg(&s[open + 1..close])?))
    };
    let nops = |n: usize| if ops.len() == n { Ok(()) } else { Err(err()) };

    match mn {
        "halt" => nops(0).map(|()| Instruction::Halt),
        "nop" => nops(0).map(|()| Instruction::Nop),
        "syscall" => {
            nops(1)?;
            Ok(Instruction::Syscall { code: u16::try_from(imm(ops[0])?).map_err(|_| err())? })
        }
        "lui" => {
            nops(2)?;
            Ok(Instruction::Lui { rd: reg(ops[0])?, imm: imm(ops[1])? as u32 })
        }
        "jal" => {
            nops(2)?;
            Ok(Instruction::Jal { rd: reg(ops[0])?, offset: imm(ops[1])? })
        }
        "jalr" => {
            nops(2)?;
            let (offset, rs1) = mem(ops[1])?;
            Ok(Instruction::Jalr { rd: reg(ops[0])?, rs1, offset })
        }
        "lb" | "lbu" | "lh" | "lhu" | "lw" => {
            nops(2)?;
            let (width, signed) = match mn {
                "lb" => (Width::Byte, true),
                "lbu" => (Width::Byte, false),
                "lh" => (Width::Half, true),
                "lhu" => (Width::Half, false),
                _ => (Width::Word, true),
            };
            let (offset, rs1) = mem(ops[1])?;
            Ok(Instruction::Load { width, signed, rd: reg(ops[0])?, rs1, offset })
        }
        "sb" | "sh" | "sw" => {
            nops(2)?;
            let width = match mn {
                "sb" => Width::Byte,
                "sh" => Width::Half,
                _ => Width::Word,
            };
            let (offset, rs1) = mem(ops[1])?;
            Ok(Instruction::Store { width, rs2: reg(ops[0])?, rs1, offset })
        }
        _ => {
            if let Some(cond) = parse_cond(mn) {
                nops(3)?;
                return Ok(Instruction::Branch {
                    cond,
                    rs1: reg(ops[0])?,
                    rs2: reg(ops[1])?,
                    offset: imm(ops[2])?,
                });
            }
            if let Some(op) = parse_alu(mn) {
                nops(3)?;
                return Ok(Instruction::Alu {
                    op,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    rs2: reg(ops[2])?,
                });
            }
            if let Some(op) = mn.strip_suffix('i').and_then(parse_alu) {
                nops(3)?;
                return Ok(Instruction::AluImm {
                    op,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: imm(ops[2])?,
                });
            }
            Err(err())
        }
    }
}

fn parse_cond(mn: &str) -> Option<Cond> {
    let suffix = mn.strip_prefix('b')?;
    [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu]
        .into_iter()
        .find(|c| c.mnemonic() == suffix)
}

fn parse_alu(mn: &str) -> Option<AluOp> {
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ]
    .into_iter()
    .find(|op| op.mnemonic() == mn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn listing_round_trips_mnemonics() {
        let img = assemble("d", "main:\n    addi a0, zero, 7\n    halt\n").unwrap();
        let lines = disassemble_image(&img);
        assert_eq!(lines[0].symbol.as_deref(), Some("main"));
        assert_eq!(lines[0].inst.unwrap().to_string(), "addi a0, zero, 7");
        assert_eq!(lines[1].inst.unwrap(), Instruction::Halt);
    }

    #[test]
    fn illegal_words_render_as_illegal() {
        let lines = disassemble(0x1000, &[0, u32::MAX]);
        assert!(lines[0].inst.is_none());
        assert!(lines[0].to_string().contains("illegal"));
        assert!(lines[1].inst.is_none());
    }
}
