//! Binary encoding of IR32 instructions.
//!
//! Every instruction is one little-endian 32-bit word:
//!
//! ```text
//! [31:26] opcode
//! R-type : [25:21] rd   [20:16] rs1  [15:11] rs2  [5:0] funct
//! I-type : [25:21] rd   [20:16] rs1  [15:0]  imm16
//! S-type : [25:21] rs2  [20:16] rs1  [15:0]  imm16      (stores)
//! B-type : [25:21] rs1  [20:16] rs2  [15:0]  imm16      (branches, word offset)
//! J-type : [25:21] rd   [20:0]  imm21                   (jal, word offset)
//! ```
//!
//! The all-zero word is deliberately **not** a valid instruction: executing
//! zero-initialized memory raises an illegal-instruction fault, as on most
//! real machines. This matters to INDRA's evaluation — a clumsy exploit
//! that diverts control into zeroed heap faults immediately.

use std::fmt;

use crate::{AluOp, Cond, Instruction, Reg, Width};

/// Error returned when an instruction's fields do not fit its encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Immediate out of the representable range for this format.
    ImmediateRange {
        /// Rendered instruction text.
        inst: String,
        /// The offending immediate.
        imm: i64,
        /// Smallest representable value.
        min: i64,
        /// Largest representable value.
        max: i64,
    },
    /// Branch/jump offsets must be multiples of 4.
    MisalignedOffset {
        /// Rendered instruction text.
        inst: String,
        /// The offending byte offset.
        offset: i32,
    },
    /// The ALU operation has no immediate form.
    NoImmediateForm {
        /// The operation in question.
        op: AluOp,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateRange { inst, imm, min, max } => {
                write!(f, "immediate {imm} out of range [{min}, {max}] in `{inst}`")
            }
            EncodeError::MisalignedOffset { inst, offset } => {
                write!(f, "control-transfer offset {offset} not word-aligned in `{inst}`")
            }
            EncodeError::NoImmediateForm { op } => {
                write!(f, "ALU op `{}` has no immediate form", op.mnemonic())
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned when a 32-bit word does not decode to an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const ALU: u32 = 0x01;
    pub const LUI: u32 = 0x03;
    pub const ADDI: u32 = 0x04;
    pub const ANDI: u32 = 0x05;
    pub const ORI: u32 = 0x06;
    pub const XORI: u32 = 0x07;
    pub const SLTI: u32 = 0x08;
    pub const SLTIU: u32 = 0x09;
    pub const SLLI: u32 = 0x0A;
    pub const SRLI: u32 = 0x0B;
    pub const SRAI: u32 = 0x0C;
    pub const MULI: u32 = 0x0D;
    pub const LB: u32 = 0x10;
    pub const LBU: u32 = 0x11;
    pub const LH: u32 = 0x12;
    pub const LHU: u32 = 0x13;
    pub const LW: u32 = 0x14;
    pub const SB: u32 = 0x15;
    pub const SH: u32 = 0x16;
    pub const SW: u32 = 0x17;
    pub const BEQ: u32 = 0x18;
    pub const BNE: u32 = 0x19;
    pub const BLT: u32 = 0x1A;
    pub const BGE: u32 = 0x1B;
    pub const BLTU: u32 = 0x1C;
    pub const BGEU: u32 = 0x1D;
    pub const JAL: u32 = 0x20;
    pub const JALR: u32 = 0x21;
    pub const SYSCALL: u32 = 0x22;
    pub const HALT: u32 = 0x23;
    pub const NOP: u32 = 0x24;
}

fn funct_of(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Sra => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_of_funct(f: u32) -> Option<AluOp> {
    Some(match f {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Sra,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        _ => return None,
    })
}

/// Whether an ALU immediate op zero-extends (logical) or sign-extends
/// (arithmetic) its 16-bit immediate, MIPS-style.
fn imm_is_unsigned(op: AluOp) -> bool {
    matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu)
}

fn check_imm16s(inst: &Instruction, imm: i32) -> Result<u32, EncodeError> {
    if (-(1 << 15)..(1 << 15)).contains(&imm) {
        Ok((imm as u32) & 0xFFFF)
    } else {
        Err(EncodeError::ImmediateRange {
            inst: inst.to_string(),
            imm: imm.into(),
            min: -(1 << 15),
            max: (1 << 15) - 1,
        })
    }
}

fn check_imm16u(inst: &Instruction, imm: i32) -> Result<u32, EncodeError> {
    if (0..(1 << 16)).contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmediateRange {
            inst: inst.to_string(),
            imm: imm.into(),
            min: 0,
            max: (1 << 16) - 1,
        })
    }
}

fn check_word_offset(inst: &Instruction, offset: i32, bits: u32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { inst: inst.to_string(), offset });
    }
    let words = offset / 4;
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if i64::from(words) < min || i64::from(words) > max {
        return Err(EncodeError::ImmediateRange {
            inst: inst.to_string(),
            imm: offset.into(),
            min: min * 4,
            max: max * 4,
        });
    }
    Ok((words as u32) & ((1 << bits) - 1))
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

impl Instruction {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an immediate or offset does not fit the
    /// instruction format, or when the ALU op has no immediate form.
    pub fn encode(&self) -> Result<u32, EncodeError> {
        let r = |reg: Reg| u32::from(reg.index());
        Ok(match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                (op::ALU << 26) | (r(rd) << 21) | (r(rs1) << 16) | (r(rs2) << 11) | funct_of(op)
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let opcode = match op {
                    AluOp::Add => op::ADDI,
                    AluOp::And => op::ANDI,
                    AluOp::Or => op::ORI,
                    AluOp::Xor => op::XORI,
                    AluOp::Slt => op::SLTI,
                    AluOp::Sltu => op::SLTIU,
                    AluOp::Sll => op::SLLI,
                    AluOp::Srl => op::SRLI,
                    AluOp::Sra => op::SRAI,
                    AluOp::Mul => op::MULI,
                    AluOp::Sub | AluOp::Div | AluOp::Rem => {
                        return Err(EncodeError::NoImmediateForm { op })
                    }
                };
                let imm16 = if imm_is_unsigned(op) {
                    check_imm16u(self, imm)?
                } else {
                    check_imm16s(self, imm)?
                };
                (opcode << 26) | (r(rd) << 21) | (r(rs1) << 16) | imm16
            }
            Instruction::Lui { rd, imm } => {
                let imm = i32::try_from(imm).map_err(|_| EncodeError::ImmediateRange {
                    inst: self.to_string(),
                    imm: i64::from(imm),
                    min: 0,
                    max: (1 << 16) - 1,
                })?;
                (op::LUI << 26) | (r(rd) << 21) | check_imm16u(self, imm)?
            }
            Instruction::Load { width, signed, rd, rs1, offset } => {
                let opcode = match (width, signed) {
                    (Width::Byte, true) => op::LB,
                    (Width::Byte, false) => op::LBU,
                    (Width::Half, true) => op::LH,
                    (Width::Half, false) => op::LHU,
                    (Width::Word, _) => op::LW,
                };
                (opcode << 26) | (r(rd) << 21) | (r(rs1) << 16) | check_imm16s(self, offset)?
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                let opcode = match width {
                    Width::Byte => op::SB,
                    Width::Half => op::SH,
                    Width::Word => op::SW,
                };
                (opcode << 26) | (r(rs2) << 21) | (r(rs1) << 16) | check_imm16s(self, offset)?
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                let opcode = match cond {
                    Cond::Eq => op::BEQ,
                    Cond::Ne => op::BNE,
                    Cond::Lt => op::BLT,
                    Cond::Ge => op::BGE,
                    Cond::Ltu => op::BLTU,
                    Cond::Geu => op::BGEU,
                };
                (opcode << 26)
                    | (r(rs1) << 21)
                    | (r(rs2) << 16)
                    | check_word_offset(self, offset, 16)?
            }
            Instruction::Jal { rd, offset } => {
                (op::JAL << 26) | (r(rd) << 21) | check_word_offset(self, offset, 21)?
            }
            Instruction::Jalr { rd, rs1, offset } => {
                (op::JALR << 26) | (r(rd) << 21) | (r(rs1) << 16) | check_imm16s(self, offset)?
            }
            Instruction::Syscall { code } => (op::SYSCALL << 26) | u32::from(code),
            Instruction::Halt => op::HALT << 26,
            Instruction::Nop => op::NOP << 26,
        })
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for illegal opcodes or malformed fields; the
    /// simulator turns that into an illegal-instruction fault.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opcode = word >> 26;
        let rd = Reg::new(((word >> 21) & 31) as u8);
        let rs1 = Reg::new(((word >> 16) & 31) as u8);
        let rs2 = Reg::new(((word >> 11) & 31) as u8);
        let imm16 = word & 0xFFFF;
        let err = DecodeError { word };

        let imm_alu = |op: AluOp| -> Instruction {
            let imm = if imm_is_unsigned(op) { imm16 as i32 } else { sext(imm16, 16) };
            Instruction::AluImm { op, rd, rs1, imm }
        };
        let load = |width: Width, signed: bool| Instruction::Load {
            width,
            signed,
            rd,
            rs1,
            offset: sext(imm16, 16),
        };
        let store = |width: Width| Instruction::Store {
            width,
            rs2: rd, // S-type reuses the rd field slot for the data register
            rs1,
            offset: sext(imm16, 16),
        };
        let branch = |cond: Cond| Instruction::Branch {
            cond,
            rs1: rd, // B-type: [25:21] is rs1
            rs2: rs1,
            offset: sext(imm16, 16).wrapping_mul(4),
        };

        Ok(match opcode {
            // Reserved fields must be zero so decode(encode(x)) == x and
            // encode(decode(w)) == w both hold.
            op::ALU if word & 0x07C0 == 0 => {
                let op = alu_of_funct(word & 0x3F).ok_or(err)?;
                Instruction::Alu { op, rd, rs1, rs2 }
            }
            op::LUI if word & 0x001F_0000 == 0 => Instruction::Lui { rd, imm: imm16 },
            op::ADDI => imm_alu(AluOp::Add),
            op::ANDI => imm_alu(AluOp::And),
            op::ORI => imm_alu(AluOp::Or),
            op::XORI => imm_alu(AluOp::Xor),
            op::SLTI => imm_alu(AluOp::Slt),
            op::SLTIU => imm_alu(AluOp::Sltu),
            op::SLLI => imm_alu(AluOp::Sll),
            op::SRLI => imm_alu(AluOp::Srl),
            op::SRAI => imm_alu(AluOp::Sra),
            op::MULI => imm_alu(AluOp::Mul),
            op::LB => load(Width::Byte, true),
            op::LBU => load(Width::Byte, false),
            op::LH => load(Width::Half, true),
            op::LHU => load(Width::Half, false),
            op::LW => load(Width::Word, true),
            op::SB => store(Width::Byte),
            op::SH => store(Width::Half),
            op::SW => store(Width::Word),
            op::BEQ => branch(Cond::Eq),
            op::BNE => branch(Cond::Ne),
            op::BLT => branch(Cond::Lt),
            op::BGE => branch(Cond::Ge),
            op::BLTU => branch(Cond::Ltu),
            op::BGEU => branch(Cond::Geu),
            op::JAL => Instruction::Jal { rd, offset: sext(word & 0x1F_FFFF, 21).wrapping_mul(4) },
            op::JALR => Instruction::Jalr { rd, rs1, offset: sext(imm16, 16) },
            op::SYSCALL if word & 0x03FF_0000 == 0 => {
                Instruction::Syscall { code: (word & 0xFFFF) as u16 }
            }
            op::HALT if word == op::HALT << 26 => Instruction::Halt,
            op::NOP if word == op::NOP << 26 => Instruction::Nop,
            _ => return Err(err),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        let w = i.encode().unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let back = Instruction::decode(w).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i, "roundtrip failed for {i} (word {w:#010x})");
    }

    #[test]
    fn zero_word_is_illegal() {
        assert!(Instruction::decode(0).is_err());
    }

    #[test]
    fn all_ones_is_illegal() {
        assert!(Instruction::decode(u32::MAX).is_err());
    }

    #[test]
    fn alu_roundtrip() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
        ] {
            roundtrip(Instruction::Alu { op, rd: Reg::T0, rs1: Reg::A0, rs2: Reg::S3 });
        }
    }

    #[test]
    fn imm_roundtrip() {
        roundtrip(Instruction::AluImm { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: -64 });
        roundtrip(Instruction::AluImm { op: AluOp::Or, rd: Reg::T1, rs1: Reg::T1, imm: 0xBEEF });
        roundtrip(Instruction::AluImm { op: AluOp::Sll, rd: Reg::T1, rs1: Reg::T1, imm: 12 });
        roundtrip(Instruction::Lui { rd: Reg::GP, imm: 0xDEAD });
    }

    #[test]
    fn imm_range_checked() {
        let too_big = Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: 40000 };
        assert!(too_big.encode().is_err());
        let neg_logical = Instruction::AluImm { op: AluOp::Or, rd: Reg::T0, rs1: Reg::T0, imm: -1 };
        assert!(neg_logical.encode().is_err());
    }

    #[test]
    fn sub_has_no_imm_form() {
        let i = Instruction::AluImm { op: AluOp::Sub, rd: Reg::T0, rs1: Reg::T0, imm: 1 };
        assert!(matches!(i.encode(), Err(EncodeError::NoImmediateForm { .. })));
    }

    #[test]
    fn mem_roundtrip() {
        for width in [Width::Byte, Width::Half, Width::Word] {
            roundtrip(Instruction::Load {
                width,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: -8,
            });
            roundtrip(Instruction::Store { width, rs2: Reg::A1, rs1: Reg::GP, offset: 1024 });
        }
        roundtrip(Instruction::Load {
            width: Width::Byte,
            signed: false,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 3,
        });
    }

    #[test]
    fn control_roundtrip() {
        for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            roundtrip(Instruction::Branch { cond, rs1: Reg::A0, rs2: Reg::A1, offset: -128 });
        }
        roundtrip(Instruction::Jal { rd: Reg::RA, offset: 2048 });
        roundtrip(Instruction::Jal { rd: Reg::ZERO, offset: -4 });
        roundtrip(Instruction::Jalr { rd: Reg::RA, rs1: Reg::T9, offset: 16 });
        roundtrip(Instruction::ret());
        roundtrip(Instruction::Syscall { code: 7 });
        roundtrip(Instruction::Halt);
        roundtrip(Instruction::Nop);
    }

    #[test]
    fn misaligned_offset_rejected() {
        let i = Instruction::Jal { rd: Reg::RA, offset: 6 };
        assert!(matches!(i.encode(), Err(EncodeError::MisalignedOffset { .. })));
        let b = Instruction::Branch { cond: Cond::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: 2 };
        assert!(b.encode().is_err());
    }

    #[test]
    fn jal_long_range() {
        roundtrip(Instruction::Jal { rd: Reg::RA, offset: (1 << 20) * 4 - 4 });
        roundtrip(Instruction::Jal { rd: Reg::RA, offset: -(1 << 20) * 4 });
        let too_far = Instruction::Jal { rd: Reg::RA, offset: (1 << 21) * 4 };
        assert!(too_far.encode().is_err());
    }
}
