//! Loadable program images.
//!
//! An [`Image`] is the IR32 analogue of a linked ELF binary: code/data
//! segments with page attributes, an entry point, and — crucially for
//! INDRA — the *security metadata* the resurrector's monitor checks
//! against: the symbol table, the set of valid indirect control-transfer
//! targets, the function export/import lists, and any explicitly declared
//! dynamic-code regions (§3.2.2–3.2.3 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Page/segment access permissions.
///
/// IR32 images follow a strict W^X discipline: the toolchain never emits a
/// segment that is both writable and executable. (The attack surface INDRA
/// defends is precisely software that *violates* this at runtime.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl Perms {
    /// Read + execute: a text segment.
    pub const RX: Perms = Perms { read: true, write: false, execute: true };
    /// Read + write: a data/stack/heap segment.
    pub const RW: Perms = Perms { read: true, write: true, execute: false };
    /// Read-only data.
    pub const R: Perms = Perms { read: true, write: false, execute: false };
    /// Read + write + execute — only for declared dynamic-code regions.
    pub const RWX: Perms = Perms { read: true, write: true, execute: true };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// A contiguous region of the image mapped at a fixed virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name (".text", ".data", ".bss", …).
    pub name: String,
    /// Base virtual address.
    pub vaddr: u32,
    /// Initial contents; the mapped size may exceed this (zero-filled).
    pub data: Vec<u8>,
    /// Total mapped size in bytes (≥ `data.len()`).
    pub size: u32,
    /// Access permissions.
    pub perms: Perms,
}

impl Segment {
    /// End virtual address (exclusive), saturating at the top of the
    /// address space. Well-formed images never saturate —
    /// [`Image::validate`] rejects segments that would overflow — but
    /// hostile hand-built images reach this from the analyzer, which must
    /// never panic.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.vaddr.saturating_add(self.size)
    }

    /// Whether `addr` falls inside the segment.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.vaddr && addr < self.end()
    }
}

/// Kind of symbol in the image's symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point.
    Function,
    /// A data object.
    Object,
}

/// One symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Virtual address.
    pub addr: u32,
    /// Size in bytes (0 when unknown).
    pub size: u32,
    /// Function or object.
    pub kind: SymbolKind,
    /// Whether the symbol is exported (callable across "modules"; the
    /// monitor's control-transfer policy uses export/import lists to vet
    /// cross-segment calls, §3.2.3).
    pub exported: bool,
}

/// A linked, loadable IR32 program plus the monitor-facing metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Image {
    /// Program name (for diagnostics).
    pub name: String,
    /// Entry-point virtual address.
    pub entry: u32,
    /// Segments, sorted by base address.
    pub segments: Vec<Segment>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Addresses that are legitimate targets of *indirect* calls/jumps:
    /// function entries plus any compiler-emitted jump-table targets.
    pub indirect_targets: BTreeSet<u32>,
    /// Explicitly declared self-modifying / dynamic code regions
    /// `(base, size)`. Execution of dynamic code is restricted to these.
    pub dynamic_code_regions: Vec<(u32, u32)>,
    /// Initial stack pointer.
    pub initial_sp: u32,
    /// Base of the heap (for `sbrk`).
    pub heap_base: u32,
}

impl Image {
    /// Creates an empty image with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Image {
        Image { name: name.into(), ..Image::default() }
    }

    /// Looks up a symbol by name.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Address of a named symbol.
    #[must_use]
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.symbol(name).map(|s| s.addr)
    }

    /// The segment containing `addr`, if any.
    #[must_use]
    pub fn segment_at(&self, addr: u32) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr))
    }

    /// Whether `addr` lies in a segment the image marks executable.
    #[must_use]
    pub fn is_executable(&self, addr: u32) -> bool {
        self.segment_at(addr).is_some_and(|s| s.perms.execute)
    }

    /// Names the function containing `addr` (best-effort, for diagnostics).
    #[must_use]
    pub fn function_containing(&self, addr: u32) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
            .filter(|s| addr >= s.addr && (s.size == 0 || addr < s.addr + s.size))
            .max_by_key(|s| s.addr)
    }

    /// All exported function addresses — the "export list" handed to the
    /// monitor when the service starts.
    #[must_use]
    pub fn export_list(&self) -> BTreeMap<String, u32> {
        self.symbols
            .iter()
            .filter(|s| s.exported && s.kind == SymbolKind::Function)
            .map(|s| (s.name.clone(), s.addr))
            .collect()
    }

    /// Total bytes of mapped memory across all segments.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.size)).sum()
    }

    /// Validates structural invariants: sorted non-overlapping segments,
    /// `data.len() <= size`, entry point in executable memory, W^X except
    /// for declared dynamic regions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_end = 0u32;
        for seg in &self.segments {
            if seg.vaddr.checked_add(seg.size).is_none() {
                return Err(format!("segment {} extends past the address space", seg.name));
            }
            if seg.data.len() as u32 > seg.size {
                return Err(format!("segment {} data exceeds its mapped size", seg.name));
            }
            if seg.vaddr < last_end {
                return Err(format!("segment {} overlaps its predecessor", seg.name));
            }
            if seg.perms.write && seg.perms.execute {
                let declared = self
                    .dynamic_code_regions
                    .iter()
                    .any(|&(base, size)| seg.vaddr >= base && seg.end() <= base + size);
                if !declared {
                    return Err(format!(
                        "segment {} is W+X but not a declared dynamic region",
                        seg.name
                    ));
                }
            }
            last_end = seg.end();
        }
        if !self.is_executable(self.entry) {
            return Err(format!("entry point {:#x} is not executable", self.entry));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        let mut img = Image::new("sample");
        img.segments.push(Segment {
            name: ".text".into(),
            vaddr: 0x1000,
            data: vec![0xAA; 64],
            size: 4096,
            perms: Perms::RX,
        });
        img.segments.push(Segment {
            name: ".data".into(),
            vaddr: 0x2000,
            data: vec![1, 2, 3],
            size: 4096,
            perms: Perms::RW,
        });
        img.entry = 0x1000;
        img.symbols.push(Symbol {
            name: "main".into(),
            addr: 0x1000,
            size: 32,
            kind: SymbolKind::Function,
            exported: true,
        });
        img.symbols.push(Symbol {
            name: "helper".into(),
            addr: 0x1020,
            size: 0,
            kind: SymbolKind::Function,
            exported: false,
        });
        img
    }

    #[test]
    fn validate_ok() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn entry_must_be_executable() {
        let mut img = sample();
        img.entry = 0x2000;
        assert!(img.validate().is_err());
    }

    #[test]
    fn wx_rejected_unless_declared() {
        let mut img = sample();
        img.segments[1].perms = Perms::RWX;
        assert!(img.validate().is_err());
        img.dynamic_code_regions.push((0x2000, 4096));
        assert_eq!(img.validate(), Ok(()));
    }

    #[test]
    fn overlap_rejected() {
        let mut img = sample();
        img.segments[1].vaddr = 0x1800;
        assert!(img.validate().is_err());
    }

    #[test]
    fn symbol_lookup() {
        let img = sample();
        assert_eq!(img.addr_of("main"), Some(0x1000));
        assert_eq!(img.addr_of("nope"), None);
        assert_eq!(img.function_containing(0x1010).unwrap().name, "main");
        // helper has unknown size: containing matches any addr >= its start
        assert_eq!(img.function_containing(0x1040).unwrap().name, "helper");
        let exports = img.export_list();
        assert!(exports.contains_key("main"));
        assert!(!exports.contains_key("helper"));
    }

    #[test]
    fn executability() {
        let img = sample();
        assert!(img.is_executable(0x1234));
        assert!(!img.is_executable(0x2100));
        assert!(!img.is_executable(0x9999_0000));
    }
}
