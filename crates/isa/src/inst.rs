//! The IR32 instruction set.
//!
//! IR32 is a 32-bit fixed-width RISC ISA, deliberately small but *real*:
//! instructions have a binary encoding ([`Instruction::encode`]) and live in
//! simulated memory, so a buffer overflow can genuinely inject executable
//! bytes into a data page — the attack class INDRA's code-origin inspection
//! exists to stop.

use std::fmt;

use crate::Reg;

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two register values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// Assembly mnemonic suffix (`beq` → `"eq"`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        }
    }
}

/// Register–register ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division; division by zero yields all-ones (no trap).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical (amount masked to 5 bits).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set-if-less-than, signed (result 0 or 1).
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 32-bit operands.
    #[must_use]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
        }
    }

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Memory access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte.
    Byte,
    /// Two bytes (halfword).
    Half,
    /// Four bytes (word).
    Word,
}

impl Width {
    /// Size of the access in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// A decoded IR32 instruction.
///
/// All immediates are stored sign-extended; branch and jump offsets are in
/// *bytes* relative to the address of the instruction itself (the encoder
/// converts to word offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `rd = rs1 <op> rs2`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm` (immediate forms exist for a subset of ops).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Immediate operand (sign- or zero-extended per op).
        imm: i32,
    },
    /// `rd = imm << 16` — load upper immediate.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper 16 bits.
        imm: u32,
    },
    /// `rd = sign/zero-extend(mem[rs1 + offset])`.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend narrow loads.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// `mem[rs1 + offset] = rs2` (low `width` bytes).
    Store {
        /// Access width.
        width: Width,
        /// Data register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte displacement.
        offset: i32,
    },
    /// Conditional branch: `if cond(rs1, rs2) pc += offset`.
    Branch {
        /// Comparison.
        cond: Cond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Byte offset from the branch itself (word-aligned).
        offset: i32,
    },
    /// Direct jump-and-link: `rd = pc + 4; pc += offset`.
    ///
    /// `rd == RA` is a *call*, `rd == ZERO` a plain jump.
    Jal {
        /// Link register.
        rd: Reg,
        /// Byte offset from the jump itself (word-aligned).
        offset: i32,
    },
    /// Indirect jump-and-link: `rd = pc + 4; pc = (rs1 + offset) & !3`.
    ///
    /// `rd == ZERO, rs1 == RA` is a *return*; `rd == RA` an indirect call.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target base register.
        rs1: Reg,
        /// Byte displacement added to the base.
        offset: i32,
    },
    /// System call; `code` selects the service, arguments in `a0`–`a3`.
    Syscall {
        /// Service code.
        code: u16,
    },
    /// Stops the core.
    Halt,
    /// No operation.
    Nop,
}

/// Control-flow classification of an instruction, as observed by the INDRA
/// trace unit when it decides what to stream to the resurrector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlClass {
    /// Not a control-transfer instruction.
    None,
    /// Direct call (`jal ra, target`).
    Call,
    /// Direct jump (`jal zero, target`).
    Jump,
    /// Function return (`jalr zero, ra, 0`).
    Return,
    /// Indirect call (`jalr ra, rs, off`).
    IndirectCall,
    /// Computed jump through a non-`ra` register (`jalr zero, rs, off`).
    IndirectJump,
    /// Conditional branch.
    Branch,
    /// System call (a synchronization point in INDRA).
    Syscall,
}

impl Instruction {
    /// Classifies the instruction for trace generation.
    ///
    /// The classification depends only on static fields (opcode and register
    /// names), exactly what real trace hardware at the commit stage can see.
    #[must_use]
    pub fn control_class(&self) -> ControlClass {
        match *self {
            Instruction::Branch { .. } => ControlClass::Branch,
            Instruction::Jal { rd, .. } => {
                if rd == Reg::RA {
                    ControlClass::Call
                } else {
                    ControlClass::Jump
                }
            }
            Instruction::Jalr { rd, rs1, .. } => {
                if rd == Reg::RA {
                    ControlClass::IndirectCall
                } else if rd.is_zero() && rs1 == Reg::RA {
                    ControlClass::Return
                } else {
                    ControlClass::IndirectJump
                }
            }
            Instruction::Syscall { .. } => ControlClass::Syscall,
            _ => ControlClass::None,
        }
    }

    /// `true` if the instruction may write memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instruction::Store { .. })
    }

    /// `true` if the instruction reads memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load { .. })
    }

    /// `true` for any control transfer (branch, jump, call, return, syscall).
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.control_class() != ControlClass::None
    }

    /// Convenience constructor: `mv rd, rs` (encoded as `add rd, rs, zero`).
    #[must_use]
    pub fn mv(rd: Reg, rs: Reg) -> Instruction {
        Instruction::Alu { op: AluOp::Add, rd, rs1: rs, rs2: Reg::ZERO }
    }

    /// Convenience constructor: a direct call (`jal ra, offset`).
    #[must_use]
    pub fn call(offset: i32) -> Instruction {
        Instruction::Jal { rd: Reg::RA, offset }
    }

    /// Convenience constructor: a function return (`jalr zero, ra, 0`).
    #[must_use]
    pub fn ret() -> Instruction {
        Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instruction::Load { width, signed, rd, rs1, offset } => {
                let m = match (width, signed) {
                    (Width::Byte, true) => "lb",
                    (Width::Byte, false) => "lbu",
                    (Width::Half, true) => "lh",
                    (Width::Half, false) => "lhu",
                    (Width::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                let m = match width {
                    Width::Byte => "sb",
                    Width::Half => "sh",
                    Width::Word => "sw",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                write!(f, "b{} {rs1}, {rs2}, {offset}", cond.mnemonic())
            }
            Instruction::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instruction::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instruction::Syscall { code } => write!(f, "syscall {code}"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_classification() {
        assert_eq!(Instruction::call(8).control_class(), ControlClass::Call);
        assert_eq!(Instruction::ret().control_class(), ControlClass::Return);
        assert_eq!(
            Instruction::Jal { rd: Reg::ZERO, offset: -4 }.control_class(),
            ControlClass::Jump
        );
        assert_eq!(
            Instruction::Jalr { rd: Reg::RA, rs1: Reg::T0, offset: 0 }.control_class(),
            ControlClass::IndirectCall
        );
        assert_eq!(
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 }.control_class(),
            ControlClass::IndirectJump
        );
        assert_eq!(Instruction::Nop.control_class(), ControlClass::None);
        assert_eq!(Instruction::Syscall { code: 1 }.control_class(), ControlClass::Syscall);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u32::MAX); // wrapping
        assert_eq!(AluOp::Div.apply(7, 0), u32::MAX); // div-by-zero convention
        assert_eq!(AluOp::Rem.apply(7, 0), 7);
        assert_eq!(AluOp::Div.apply((-6i32) as u32, 3), (-2i32) as u32);
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 4), 0xF800_0000);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 4), 0x0800_0000);
        assert_eq!(AluOp::Slt.apply((-1i32) as u32, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i32) as u32, 0), 0);
        assert_eq!(AluOp::Sll.apply(1, 33), 2); // shift amount masked
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval((-1i32) as u32, 0));
        assert!(!Cond::Ltu.eval((-1i32) as u32, 0));
        assert!(Cond::Ge.eval(0, (-1i32) as u32));
        assert!(Cond::Geu.eval((-1i32) as u32, 0));
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Instruction::mv(Reg::A0, Reg::T1),
            Instruction::Lui { rd: Reg::T0, imm: 0x1234 },
            Instruction::Halt,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
