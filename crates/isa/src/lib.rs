#![warn(missing_docs)]
//! # indra-isa — the IR32 instruction set and toolchain
//!
//! The execution substrate for the INDRA reproduction (ISCA 2006). The
//! paper ran real x86 binaries under Bochs/TAXI; this crate supplies the
//! equivalent raw material for a pure-Rust simulator: a small 32-bit RISC
//! ISA with a **real binary encoding**, an assembler, a disassembler, a
//! programmatic code generator, and a linked [`Image`] format carrying the
//! security metadata INDRA's monitor verifies against (symbol tables,
//! export lists, valid indirect-branch targets, declared dynamic-code
//! regions).
//!
//! The encoding being real matters: exploit payloads in the evaluation
//! write actual instruction bytes into simulated data pages and redirect
//! control into them, exactly the attack class INDRA's code-origin
//! inspection defends against.
//!
//! ## Quick tour
//!
//! ```
//! use indra_isa::{assemble, Instruction};
//!
//! let image = assemble("demo", "
//! main:
//!     li   a0, 40
//!     addi a0, a0, 2
//!     halt
//! ").unwrap();
//!
//! // Machine code is genuinely encoded into the image:
//! let text = &image.segments[0].data;
//! let first = u32::from_le_bytes(text[0..4].try_into().unwrap());
//! assert!(Instruction::decode(first).is_ok());
//! ```

mod asm;
mod builder;
mod disasm;
mod encode;
mod image;
mod inst;
mod reg;

pub use asm::{assemble, AsmError};
pub use builder::{
    BuildError, DataRef, Label, ProgramBuilder, DATA_BASE, STACK_SIZE, STACK_TOP, TEXT_BASE,
};
pub use disasm::{
    disassemble, disassemble_image, disassemble_segment, parse_instruction, DisasmLine,
    ParseInstError,
};
pub use encode::{DecodeError, EncodeError};
pub use image::{Image, Perms, Segment, Symbol, SymbolKind};
pub use inst::{AluOp, Cond, ControlClass, Instruction, Width};
pub use reg::{ParseRegError, Reg};
