//! Architectural registers of the IR32 ISA.
//!
//! IR32 has 32 general-purpose 32-bit registers. `r0` is hard-wired to
//! zero, as in MIPS/RISC-V. The calling convention assigns conventional
//! roles (and assembly aliases) to the remaining registers; the roles are
//! conventions of the toolchain, not enforced by hardware — except that the
//! INDRA trace unit uses `RA` to classify `jalr` as a call or a return.

use std::fmt;
use std::str::FromStr;

/// A general-purpose register identifier (`r0`–`r31`).
///
/// # Examples
///
/// ```
/// use indra_isa::Reg;
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 2);
/// assert_eq!(sp.to_string(), "sp");
/// assert_eq!("a0".parse::<Reg>().unwrap(), Reg::A0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address, written by `jal`/`jalr` calls.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer (base of the static data segment).
    pub const GP: Reg = Reg(3);
    /// First argument / return value.
    pub const A0: Reg = Reg(4);
    /// Second argument.
    pub const A1: Reg = Reg(5);
    /// Third argument.
    pub const A2: Reg = Reg(6);
    /// Fourth argument.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries `t0`–`t7` are `r8`–`r15`.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary `t1`.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary `t2`.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary `t3`.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary `t4`.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary `t5`.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary `t6`.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary `t7`.
    pub const T7: Reg = Reg(15);
    /// Callee-saved `s0`–`s7` are `r16`–`r23`.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register `s1`.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register `s2`.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register `s3`.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register `s4`.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register `s5`.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register `s6`.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register `s7`.
    pub const S7: Reg = Reg(23);
    /// Kernel-reserved scratch registers (`k0`, `k1`).
    pub const K0: Reg = Reg(24);
    /// Second kernel-reserved scratch register.
    pub const K1: Reg = Reg(25);
    /// Additional temporaries.
    pub const T8: Reg = Reg(26);
    /// Additional temporary `t9`.
    pub const T9: Reg = Reg(27);
    /// Additional temporary `t10`.
    pub const T10: Reg = Reg(28);
    /// Frame pointer.
    pub const FP: Reg = Reg(29);
    /// Thread/context pointer (used by the OS for the per-process block).
    pub const TP: Reg = Reg(30);
    /// Assembler temporary, clobbered by pseudo-instruction expansion.
    pub const AT: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register's index, `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// `true` for the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The canonical assembly alias (`zero`, `ra`, `sp`, …).
    #[must_use]
    pub fn alias(self) -> &'static str {
        ALIASES[self.0 as usize]
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

const ALIASES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "k0", "k1", "t8", "t9", "t10", "fp",
    "tp", "at",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.alias())
    }
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

/// Error produced when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                if let Some(r) = Reg::try_new(n) {
                    return Ok(r);
                }
            }
        }
        ALIASES
            .iter()
            .position(|&a| a == s)
            .map(|i| Reg(i as u8))
            .ok_or_else(|| ParseRegError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_names_parse() {
        for i in 0..32u8 {
            let r: Reg = format!("r{i}").parse().unwrap();
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn aliases_round_trip() {
        for r in Reg::all() {
            let back: Reg = r.alias().parse().unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(99);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
