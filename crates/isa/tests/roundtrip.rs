//! Property tests for the IR32 encoding and toolchain.

use proptest::prelude::*;

use indra_isa::{disassemble, AluOp, Cond, Instruction, Reg, Width};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn imm_op() -> impl Strategy<Value = AluOp> {
    // Sub/Div/Rem have no immediate form.
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Ge),
        Just(Cond::Ltu),
        Just(Cond::Geu),
    ]
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::Byte), Just(Width::Half), Just(Width::Word)]
}

/// Any encodable instruction.
fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (alu_op(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (imm_op(), reg_strategy(), reg_strategy()).prop_flat_map(|(op, rd, rs1)| {
            let range = if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu) {
                0i32..65536
            } else {
                -32768i32..32768
            };
            range.prop_map(move |imm| Instruction::AluImm { op, rd, rs1, imm })
        }),
        (reg_strategy(), 0u32..65536).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (width(), any::<bool>(), reg_strategy(), reg_strategy(), -32768i32..32768).prop_map(
            |(width, signed, rd, rs1, offset)| Instruction::Load { width, signed, rd, rs1, offset }
        ),
        (width(), reg_strategy(), reg_strategy(), -32768i32..32768)
            .prop_map(|(width, rs2, rs1, offset)| Instruction::Store { width, rs2, rs1, offset }),
        (cond(), reg_strategy(), reg_strategy(), -32768i32..32768).prop_map(
            |(cond, rs1, rs2, w)| Instruction::Branch { cond, rs1, rs2, offset: w * 4 }
        ),
        (reg_strategy(), -(1i32 << 20)..(1 << 20))
            .prop_map(|(rd, w)| Instruction::Jal { rd, offset: w * 4 }),
        (reg_strategy(), reg_strategy(), -32768i32..32768)
            .prop_map(|(rd, rs1, offset)| Instruction::Jalr { rd, rs1, offset }),
        any::<u16>().prop_map(|code| Instruction::Syscall { code }),
        Just(Instruction::Halt),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// encode → decode is the identity on every well-formed instruction.
    #[test]
    fn encode_decode_roundtrip(inst in instruction()) {
        let normalized = normalize_load(inst);
        let word = normalized.encode().expect("strategy only builds encodable instructions");
        let back = Instruction::decode(word).expect("encoded words decode");
        prop_assert_eq!(back, normalized);
    }

    /// decode never panics on arbitrary words, and whatever decodes
    /// re-encodes to the same word (decode is a partial inverse).
    #[test]
    fn decode_total_and_reencodable(word in any::<u32>()) {
        if let Ok(inst) = Instruction::decode(word) {
            let re = inst.encode().expect("decoded instructions are encodable");
            prop_assert_eq!(re, word);
        }
    }

    /// The disassembler renders every decodable word without panicking.
    #[test]
    fn disassembly_total(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let listing = disassemble(0x40_0000, &words);
        prop_assert_eq!(listing.len(), words.len());
        for line in listing {
            prop_assert!(!line.to_string().is_empty());
        }
    }
}

/// Word-width loads carry no signedness in the encoding; normalize the
/// flag the same way decode does.
fn normalize_load(inst: Instruction) -> Instruction {
    match inst {
        Instruction::Load { width: Width::Word, rd, rs1, offset, .. } => {
            Instruction::Load { width: Width::Word, signed: true, rd, rs1, offset }
        }
        other => other,
    }
}
