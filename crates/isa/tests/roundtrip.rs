//! Property tests for the IR32 encoding and toolchain (driven by the
//! in-tree `indra_rng::forall` loop).

use indra_isa::{disassemble, AluOp, Cond, Instruction, Reg, Width};
use indra_rng::{forall, Rng};

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

/// Ops with an immediate form (Sub/Div/Rem have none).
const IMM_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
const WIDTHS: [Width; 3] = [Width::Byte, Width::Half, Width::Word];

fn gen_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 32) as u8)
}

/// Immediate range for an immediate-form op: logical ops take the raw
/// 16-bit field; arithmetic ops take it sign-extended.
fn gen_imm(rng: &mut Rng, op: AluOp) -> i32 {
    if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu) {
        rng.range_i32(0, 65536)
    } else {
        rng.range_i32(-32768, 32768)
    }
}

/// Any encodable instruction.
fn gen_instruction(rng: &mut Rng) -> Instruction {
    match rng.range_u32(0, 11) {
        0 => Instruction::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            rs2: gen_reg(rng),
        },
        1 => {
            let op = *rng.pick(&IMM_OPS);
            Instruction::AluImm { op, rd: gen_reg(rng), rs1: gen_reg(rng), imm: gen_imm(rng, op) }
        }
        2 => Instruction::Lui { rd: gen_reg(rng), imm: rng.range_u32(0, 65536) },
        3 => Instruction::Load {
            width: *rng.pick(&WIDTHS),
            signed: rng.gen_bool(),
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        4 => Instruction::Store {
            width: *rng.pick(&WIDTHS),
            rs2: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        5 => Instruction::Branch {
            cond: *rng.pick(&CONDS),
            rs1: gen_reg(rng),
            rs2: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768) * 4,
        },
        6 => Instruction::Jal { rd: gen_reg(rng), offset: rng.range_i32(-(1 << 20), 1 << 20) * 4 },
        7 => Instruction::Jalr {
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        8 => Instruction::Syscall { code: rng.gen_u16() },
        9 => Instruction::Halt,
        _ => Instruction::Nop,
    }
}

/// encode → decode is the identity on every well-formed instruction.
#[test]
fn encode_decode_roundtrip() {
    forall("encode_decode_roundtrip", 2000, |rng| {
        let normalized = normalize_load(gen_instruction(rng));
        let word = normalized.encode().expect("generator only builds encodable instructions");
        let back = Instruction::decode(word).expect("encoded words decode");
        assert_eq!(back, normalized);
    });
}

/// decode never panics on arbitrary words, and whatever decodes
/// re-encodes to the same word (decode is a partial inverse).
#[test]
fn decode_total_and_reencodable() {
    forall("decode_total_and_reencodable", 2000, |rng| {
        let word = rng.next_u32();
        if let Ok(inst) = Instruction::decode(word) {
            let re = inst.encode().expect("decoded instructions are encodable");
            assert_eq!(re, word);
        }
    });
}

/// The disassembler renders every decodable word without panicking.
#[test]
fn disassembly_total() {
    forall("disassembly_total", 200, |rng| {
        let words: Vec<u32> = (0..rng.range_usize(1, 64)).map(|_| rng.next_u32()).collect();
        let listing = disassemble(0x40_0000, &words);
        assert_eq!(listing.len(), words.len());
        for line in listing {
            assert!(!line.to_string().is_empty());
        }
    });
}

/// Word-width loads carry no signedness in the encoding; normalize the
/// flag the same way decode does.
fn normalize_load(inst: Instruction) -> Instruction {
    match inst {
        Instruction::Load { width: Width::Word, rd, rs1, offset, .. } => {
            Instruction::Load { width: Width::Word, signed: true, rd, rs1, offset }
        }
        other => other,
    }
}
