//! Property tests for the IR32 encoding and toolchain (driven by the
//! in-tree `indra_rng::forall` loop).

use indra_isa::{assemble, disassemble, parse_instruction, AluOp, Cond, Instruction, Reg, Width};
use indra_rng::{forall, Rng};

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

/// Ops with an immediate form (Sub/Div/Rem have none).
const IMM_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
const WIDTHS: [Width; 3] = [Width::Byte, Width::Half, Width::Word];

fn gen_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 32) as u8)
}

/// Immediate range for an immediate-form op: logical ops take the raw
/// 16-bit field; arithmetic ops take it sign-extended.
fn gen_imm(rng: &mut Rng, op: AluOp) -> i32 {
    if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu) {
        rng.range_i32(0, 65536)
    } else {
        rng.range_i32(-32768, 32768)
    }
}

/// Any encodable instruction.
fn gen_instruction(rng: &mut Rng) -> Instruction {
    match rng.range_u32(0, 11) {
        0 => Instruction::Alu {
            op: *rng.pick(&ALU_OPS),
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            rs2: gen_reg(rng),
        },
        1 => {
            let op = *rng.pick(&IMM_OPS);
            Instruction::AluImm { op, rd: gen_reg(rng), rs1: gen_reg(rng), imm: gen_imm(rng, op) }
        }
        2 => Instruction::Lui { rd: gen_reg(rng), imm: rng.range_u32(0, 65536) },
        3 => Instruction::Load {
            width: *rng.pick(&WIDTHS),
            signed: rng.gen_bool(),
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        4 => Instruction::Store {
            width: *rng.pick(&WIDTHS),
            rs2: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        5 => Instruction::Branch {
            cond: *rng.pick(&CONDS),
            rs1: gen_reg(rng),
            rs2: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768) * 4,
        },
        6 => Instruction::Jal { rd: gen_reg(rng), offset: rng.range_i32(-(1 << 20), 1 << 20) * 4 },
        7 => Instruction::Jalr {
            rd: gen_reg(rng),
            rs1: gen_reg(rng),
            offset: rng.range_i32(-32768, 32768),
        },
        8 => Instruction::Syscall { code: rng.gen_u16() },
        9 => Instruction::Halt,
        _ => Instruction::Nop,
    }
}

/// encode → decode is the identity on every well-formed instruction.
#[test]
fn encode_decode_roundtrip() {
    forall("encode_decode_roundtrip", 2000, |rng| {
        let normalized = normalize_load(gen_instruction(rng));
        let word = normalized.encode().expect("generator only builds encodable instructions");
        let back = Instruction::decode(word).expect("encoded words decode");
        assert_eq!(back, normalized);
    });
}

/// decode never panics on arbitrary words, and whatever decodes
/// re-encodes to the same word (decode is a partial inverse).
#[test]
fn decode_total_and_reencodable() {
    forall("decode_total_and_reencodable", 2000, |rng| {
        let word = rng.next_u32();
        if let Ok(inst) = Instruction::decode(word) {
            let re = inst.encode().expect("decoded instructions are encodable");
            assert_eq!(re, word);
        }
    });
}

/// The disassembler renders every decodable word without panicking.
#[test]
fn disassembly_total() {
    forall("disassembly_total", 200, |rng| {
        let words: Vec<u32> = (0..rng.range_usize(1, 64)).map(|_| rng.next_u32()).collect();
        let listing = disassemble(0x40_0000, &words);
        assert_eq!(listing.len(), words.len());
        for line in listing {
            assert!(!line.to_string().is_empty());
        }
    });
}

/// Disassembler text round-trip: for every valid instruction word,
/// rendering it as text and parsing the text back re-encodes to the same
/// word — `encode(parse(disasm(w))) == w`. Locks the `Display`,
/// `parse_instruction`, `encode` and `decode` quartet against drift.
#[test]
fn disasm_text_roundtrip() {
    forall("disasm_text_roundtrip", 2000, |rng| {
        let word = normalize_load(gen_instruction(rng)).encode().expect("generator output encodes");
        let inst = Instruction::decode(word).expect("valid words decode");
        let text = inst.to_string();
        let parsed = parse_instruction(&text)
            .unwrap_or_else(|e| panic!("disassembly `{text}` must re-parse: {e}"));
        let re = parsed.encode().unwrap_or_else(|e| panic!("`{text}` must re-encode: {e}"));
        assert_eq!(re, word, "text round-trip drifted for `{text}`");
    });
}

/// Every opcode the assembler can emit is decodable: a kitchen-sink
/// program covering the full mnemonic surface (real and pseudo) must
/// produce only words `decode` accepts. Locks the assembler and decoder
/// against encode/disasm drift when either grows a new instruction.
#[test]
fn every_assembler_opcode_decodes() {
    let src = "
    .data
v:  .word 1, 2
tab:
    .target main, fn2
    .text
main:
    add t0, t1, t2
    sub t0, t1, t2
    mul t0, t1, t2
    div t0, t1, t2
    rem t0, t1, t2
    and t0, t1, t2
    or t0, t1, t2
    xor t0, t1, t2
    sll t0, t1, t2
    srl t0, t1, t2
    sra t0, t1, t2
    slt t0, t1, t2
    sltu t0, t1, t2
    addi t0, t1, -7
    andi t0, t1, 255
    ori t0, t1, 128
    xori t0, t1, 64
    slti t0, t1, 3
    sltiu t0, t1, 3
    slli t0, t1, 2
    srli t0, t1, 2
    srai t0, t1, 2
    muli t0, t1, 3
    subi t0, t1, 5
    not t0, t1
    neg t0, t1
    seqz t0, t1
    snez t0, t1
    li t0, 0x12345678
    la t0, v
    la t0, fn2
    mv t0, t1
    lui t0, 0x1234
    lb t0, 0(t1)
    lbu t0, 1(t1)
    lh t0, 2(t1)
    lhu t0, 4(t1)
    lw t0, 8(t1)
    sb t0, 0(t1)
    sh t0, 2(t1)
    sw t0, 4(t1)
    beq t0, t1, main
    bne t0, t1, main
    blt t0, t1, main
    bge t0, t1, main
    bltu t0, t1, main
    bgeu t0, t1, main
    ble t0, t1, main
    bgt t0, t1, main
    beqz t0, main
    bnez t0, main
    j main
    jal fn2
    call fn2
    jalr t0
    jr t0
    syscall 3
    halt
fn2:
    nop
    ret
";
    let img = assemble("kitchen_sink", src).expect("kitchen-sink program assembles");
    let text = img.segments.iter().find(|s| s.perms.execute).expect("text segment");
    for (i, chunk) in text.data.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let addr = text.vaddr + (i as u32) * 4;
        let inst = Instruction::decode(word).unwrap_or_else(|_| {
            panic!("assembler emitted undecodable word {word:#010x} at {addr:#010x}")
        });
        // And the decoded form must survive the text round-trip too.
        let reparsed = parse_instruction(&inst.to_string()).expect("listing re-parses");
        assert_eq!(reparsed.encode().expect("re-encodes"), word);
    }
}

/// Hostile sources fail with typed errors, never panics or absurd
/// allocations (the PR 4 `PhysRange` audit, applied to the assembler).
#[test]
fn hostile_sources_fail_typed() {
    let cases = [
        "main:\n    halt\n    .data\nx:  .space -1\n",
        "main:\n    halt\n    .data\nx:  .space 999999999999\n",
        "main:\n    halt\n    .dyncode -3\n",
        "main:\n    halt\n    .dyncode 4294967295\n",
        "main:\n    addi t0, t1, 99999999\n",
    ];
    for src in cases {
        assert!(assemble("hostile", src).is_err(), "must reject: {src}");
    }
}

/// Word-width loads carry no signedness in the encoding; normalize the
/// flag the same way decode does.
fn normalize_load(inst: Instruction) -> Instruction {
    match inst {
        Instruction::Load { width: Width::Word, rd, rs1, offset, .. } => {
            Instruction::Load { width: Width::Word, signed: true, rd, rs1, offset }
        }
        other => other,
    }
}
