//! Generic set-associative cache timing model.
//!
//! The cache tracks tags, validity, dirtiness and true-LRU order but not
//! data (data lives in [`PhysicalMemory`](crate::PhysicalMemory); this is
//! the SimpleScalar/TAXI modeling style the paper used). A single
//! [`Cache`] type instantiates the IL1, DL1 and per-core unified L2 of
//! Table 4.
//!
//! The IL1 instance matters doubly for INDRA: every IL1 *fill* — a line
//! moving from L2 into the instruction cache — is the paper's natural
//! code-origin inspection point (§3.2.2), so [`AccessOutcome::fill`]
//! reports it to the caller.

use std::fmt;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Associativity; `1` = direct-mapped.
    pub ways: u32,
    /// Hit latency in core cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Table 4: direct-mapped 16 KiB, 32 B lines, 1-cycle L1.
    #[must_use]
    pub fn l1() -> CacheConfig {
        CacheConfig { size: 16 * 1024, line: 32, ways: 1, hit_latency: 1 }
    }

    /// Table 4: 4-way 512 KiB unified L2, 64 B lines, 8-cycle latency.
    #[must_use]
    pub fn l2() -> CacheConfig {
        CacheConfig { size: 512 * 1024, line: 64, ways: 4, hit_latency: 8 }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.size / (self.line * self.ways)
    }

    fn validate(&self) {
        assert!(self.line.is_power_of_two(), "line size must be a power of two");
        assert!(self.size.is_multiple_of(self.line * self.ways), "size not divisible by way size");
        assert!(self.sets().is_power_of_two(), "set count must be a power of two");
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (fills).
    pub misses: u64,
    /// Dirty evictions (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when no accesses occurred.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Base address of the line brought in on a miss.
    pub fill: Option<u32>,
    /// Base address of a dirty line evicted to make room.
    pub writeback: Option<u32>,
}

/// A set-associative, write-back, write-allocate cache (timing only).
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
    // Precomputed geometry (line/sets are powers of two, validated in
    // `new`): index math on the access path is shift/mask, not div/mod.
    line_shift: u32,
    set_mask: u32,
    tag_shift: u32,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache").field("cfg", &self.cfg).field("stats", &self.stats).finish()
    }
}

impl Cache {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size
    /// or set count).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let n = (cfg.sets() * cfg.ways) as usize;
        let line_shift = cfg.line.trailing_zeros();
        let sets_shift = cfg.sets().trailing_zeros();
        Cache {
            cfg,
            lines: vec![Line::default(); n],
            stamp: 0,
            stats: CacheStats::default(),
            line_shift,
            set_mask: cfg.sets() - 1,
            tag_shift: line_shift + sets_shift,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents) — used between measurement phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: u32) -> u32 {
        (addr >> self.line_shift) & self.set_mask
    }

    fn tag(&self, addr: u32) -> u32 {
        addr >> self.tag_shift
    }

    fn line_base(&self, set: u32, tag: u32) -> u32 {
        (tag << self.tag_shift) | (set << self.line_shift)
    }

    /// Applies the accounting of `n` consecutive read hits on the line
    /// holding `addr` — bit-identical to calling
    /// [`Cache::access`]`(addr, false)` `n` times when the line is
    /// resident and nothing else touches this cache in between (each
    /// call would bump the stamp and access count and leave the line's
    /// LRU at the final stamp). Returns `false` without touching
    /// anything when the line is *not* resident, so callers can fall
    /// back to per-access calls.
    pub fn note_read_hits(&mut self, addr: u32, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                self.stamp += n;
                self.stats.accesses += n;
                line.lru = self.stamp;
                return true;
            }
        }
        false
    }

    /// Performs one access; `write` marks the line dirty.
    pub fn access(&mut self, addr: u32, write: bool) -> AccessOutcome {
        self.stamp += 1;
        self.stats.accesses += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;

        // Hit?
        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                line.dirty |= write;
                return AccessOutcome { hit: true, fill: None, writeback: None };
            }
        }

        // Miss: pick victim (invalid first, then true LRU).
        self.stats.misses += 1;
        let victim = (base..base + ways)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid {
                    (1, l.lru)
                } else {
                    (0, 0)
                }
            })
            .expect("cache set is never empty");

        let evicted = self.lines[victim];
        let writeback = (evicted.valid && evicted.dirty).then(|| {
            self.stats.writebacks += 1;
            self.line_base(set, evicted.tag)
        });

        self.lines[victim] = Line { tag, valid: true, dirty: write, lru: self.stamp };
        let fill_base = addr & !(self.cfg.line - 1);
        AccessOutcome { hit: false, fill: Some(fill_base), writeback }
    }

    /// Whether `addr`'s line is currently resident (no LRU update).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        self.lines[base..base + ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr`, returning `true` if it was
    /// resident and dirty (caller must write it back).
    pub fn invalidate(&mut self, addr: u32) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                *line = Line::default();
                return was_dirty;
            }
        }
        false
    }

    /// Invalidates everything (pipeline-flush on rollback, §2.3.3).
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
    }

    /// Captures the cache's full mutable state (contents, LRU order and
    /// statistics) so a frozen machine thaws with identical warmth.
    #[must_use]
    pub fn save_state(&self) -> CacheState {
        CacheState {
            lines: self
                .lines
                .iter()
                .map(|l| CacheLineState { tag: l.tag, valid: l.valid, dirty: l.dirty, lru: l.lru })
                .collect(),
            stamp: self.stamp,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Cache::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when the saved line count does not match this cache's
    /// geometry (state from a differently configured machine).
    pub fn restore_state(&mut self, state: &CacheState) {
        assert_eq!(state.lines.len(), self.lines.len(), "cache state geometry mismatch");
        for (line, s) in self.lines.iter_mut().zip(&state.lines) {
            *line = Line { tag: s.tag, valid: s.valid, dirty: s.dirty, lru: s.lru };
        }
        self.stamp = state.stamp;
        self.stats = state.stats;
    }
}

/// Serializable state of one cache line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLineState {
    /// Tag bits.
    pub tag: u32,
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit.
    pub dirty: bool,
    /// Last-use stamp (true-LRU order).
    pub lru: u64,
}

/// Complete mutable state of a [`Cache`], captured by
/// [`Cache::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheState {
    /// Every line, in set-major order.
    pub lines: Vec<CacheLineState>,
    /// LRU stamp counter.
    pub stamp: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B
        Cache::new(CacheConfig { size: 128, line: 16, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::l1();
        assert_eq!(c.sets(), 512);
        assert_eq!(CacheConfig::l2().sets(), 2048);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        let a = c.access(0x100, false);
        assert!(!a.hit);
        assert_eq!(a.fill, Some(0x100));
        assert!(c.access(0x10F, false).hit, "same line hits");
        assert!(!c.access(0x110, false).hit, "next line misses");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // set 0 holds lines with addr % (16*4) == 0
        let stride = 16 * 4; // one set apart
        c.access(0, false);
        c.access(stride, false); // both ways of set 0 filled (0 and 64 map to set 0? )
                                 // lines 0 and 64: set = (addr/16) & 3 -> 0 and 0. Good.
        c.access(0, false); // touch 0: now `stride` is LRU
        let out = c.access(2 * stride, false); // evicts `stride`
        assert!(!out.hit);
        assert!(c.probe(0), "recently used line survives");
        assert!(!c.probe(stride), "LRU line evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        let stride = 16 * 4;
        c.access(0, true); // dirty
        c.access(stride, false);
        c.access(0, false); // keep 0 MRU
        let out = c.access(2 * stride, false); // evicts clean `stride`
        assert_eq!(out.writeback, None);
        let out = c.access(3 * stride, false); // evicts dirty 0
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x40, false);
        c.access(0x40, true); // hit, becomes dirty
        assert!(c.invalidate(0x40), "invalidate reports dirtiness");
        assert!(!c.invalidate(0x40), "second invalidate is a no-op");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, false);
        c.access(16, false);
        c.flush();
        assert!(!c.probe(0));
        assert!(!c.probe(16));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig { size: 64, line: 16, ways: 1, hit_latency: 1 });
        c.access(0, false);
        c.access(64, false); // same set, evicts 0
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        for _ in 0..3 {
            c.access(0, false);
        }
        c.access(0x1000, false);
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-9);
    }
}
