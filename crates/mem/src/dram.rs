//! Banked SDRAM timing model.
//!
//! Models the PC SDRAM of Table 4 (following Gries & Romer's DRAM model
//! the paper integrated): a 200 MHz, 8-byte-wide memory bus feeding
//! open-row banks. Each access classifies as a **row hit** (row already
//! open), **row closed** (bank idle: activate + CAS) or **row conflict**
//! (another row open: precharge + activate + CAS); the resulting bus
//! clocks are scaled to core clocks.
//!
//! Table 4 latencies (memory-bus clocks):
//! * CAS: 20
//! * precharge (RP): 7
//! * RAS-to-CAS (RCD): 7

/// SDRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: u32,
    /// Row (DRAM page) size in bytes.
    pub row_bytes: u32,
    /// CAS latency in bus clocks.
    pub cas: u32,
    /// Precharge latency (tRP) in bus clocks.
    pub precharge: u32,
    /// RAS-to-CAS latency (tRCD) in bus clocks.
    pub ras_to_cas: u32,
    /// Bytes transferred per bus clock (Table 4: 8-byte-wide, 200 MHz bus).
    pub bus_bytes_per_clock: u32,
    /// Core clocks per memory-bus clock.
    pub core_clock_ratio: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 4,
            row_bytes: 4096,
            cas: 20,
            precharge: 7,
            ras_to_cas: 7,
            bus_bytes_per_clock: 8,
            core_clock_ratio: 5, // 1 GHz core over the 200 MHz bus
        }
    }
}

/// Outcome classification of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle; the row had to be activated.
    Closed,
    /// A different row was open; precharge then activate.
    Conflict,
}

/// DRAM traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to idle banks.
    pub row_closed: u64,
    /// Row conflicts.
    pub row_conflicts: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

/// Open-row banked SDRAM with Table 4 timing.
#[derive(Debug)]
pub struct Sdram {
    cfg: DramConfig,
    open_rows: Vec<Option<u32>>,
    stats: DramStats,
}

impl Sdram {
    /// Creates SDRAM with all banks idle.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_bytes` is zero or `row_bytes` is not a
    /// power of two.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Sdram {
        assert!(cfg.banks > 0, "need at least one bank");
        assert!(cfg.row_bytes.is_power_of_two(), "row size must be a power of two");
        Sdram { cfg, open_rows: vec![None; cfg.banks as usize], stats: DramStats::default() }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (not open-row state).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn bank_and_row(&self, paddr: u32) -> (usize, u32) {
        let row = paddr / self.cfg.row_bytes;
        // Interleave consecutive rows across banks.
        ((row % self.cfg.banks) as usize, row / self.cfg.banks)
    }

    /// Performs a burst transfer of `bytes` at `paddr`, returning the cost
    /// in **core clocks** and the row-buffer outcome.
    pub fn access(&mut self, paddr: u32, bytes: u32) -> (u32, RowOutcome) {
        let (bank, row) = self.bank_and_row(paddr);
        let outcome = match self.open_rows[bank] {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        };
        self.open_rows[bank] = Some(row);

        let bus_clocks = match outcome {
            RowOutcome::Hit => self.cfg.cas,
            RowOutcome::Closed => self.cfg.ras_to_cas + self.cfg.cas,
            RowOutcome::Conflict => self.cfg.precharge + self.cfg.ras_to_cas + self.cfg.cas,
        } + bytes.div_ceil(self.cfg.bus_bytes_per_clock);

        self.stats.accesses += 1;
        self.stats.bytes += u64::from(bytes);
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        (bus_clocks * self.cfg.core_clock_ratio, outcome)
    }

    /// Closes every row (e.g. after a long idle period).
    pub fn precharge_all(&mut self) {
        self.open_rows.fill(None);
    }

    /// Captures the DRAM's mutable state (open rows and statistics).
    #[must_use]
    pub fn save_state(&self) -> DramState {
        DramState { open_rows: self.open_rows.clone(), stats: self.stats }
    }

    /// Restores state captured by [`Sdram::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when the saved bank count does not match this SDRAM.
    pub fn restore_state(&mut self, state: &DramState) {
        assert_eq!(state.open_rows.len(), self.open_rows.len(), "DRAM state bank-count mismatch");
        self.open_rows.clone_from(&state.open_rows);
        self.stats = state.stats;
    }
}

/// Complete mutable state of an [`Sdram`], captured by
/// [`Sdram::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramState {
    /// Per-bank open row (`None` = precharged).
    pub open_rows: Vec<Option<u32>>,
    /// Accumulated statistics.
    pub stats: DramStats,
}

impl Default for Sdram {
    fn default() -> Self {
        Sdram::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_activates() {
        let mut d = Sdram::default();
        let (cost, out) = d.access(0, 64);
        assert_eq!(out, RowOutcome::Closed);
        // (RCD 7 + CAS 20 + 64/8 transfer) * ratio 5
        assert_eq!(cost, (7 + 20 + 8) * 5);
    }

    #[test]
    fn same_row_hits() {
        let mut d = Sdram::default();
        d.access(0, 64);
        let (cost, out) = d.access(128, 64);
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(cost, (20 + 8) * 5);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = Sdram::default();
        let row_stride = DramConfig::default().row_bytes * DramConfig::default().banks;
        d.access(0, 64);
        let (cost, out) = d.access(row_stride, 64);
        assert_eq!(out, RowOutcome::Conflict);
        assert_eq!(cost, (7 + 7 + 20 + 8) * 5);
    }

    #[test]
    fn adjacent_rows_use_different_banks() {
        let mut d = Sdram::default();
        d.access(0, 64);
        let (_, out) = d.access(DramConfig::default().row_bytes, 64);
        assert_eq!(out, RowOutcome::Closed, "row 1 interleaves to bank 1");
    }

    #[test]
    fn precharge_all_closes_rows() {
        let mut d = Sdram::default();
        d.access(0, 64);
        d.precharge_all();
        let (_, out) = d.access(0, 64);
        assert_eq!(out, RowOutcome::Closed);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Sdram::default();
        d.access(0, 64);
        d.access(64, 64);
        d.access(DramConfig::default().row_bytes * 4, 32);
        let s = d.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.bytes, 160);
    }
}
