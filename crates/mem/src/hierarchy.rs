//! Per-core memory hierarchy glue.
//!
//! Wires the split L1s, the unified per-core L2 (Table 4 gives each core
//! its own 512 KiB L2) and the TLBs into two operations the pipeline
//! model calls: instruction fetch and data access. DRAM is shared across
//! cores, so it is passed in by the machine each call.
//!
//! Instruction fetches additionally report **IL1 fills** — the L2→IL1
//! transfer the paper identifies as the natural code-origin inspection
//! point (hardware guarantees IL1 contents cannot be modified, so
//! checking each line once as it enters IL1 suffices, §2.3.2).

use crate::{Cache, CacheConfig, CacheState, Sdram, Tlb, TlbConfig, TlbState};

/// Configuration of one core's private hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMemConfig {
    /// Instruction L1.
    pub il1: CacheConfig,
    /// Data L1.
    pub dl1: CacheConfig,
    /// Unified private L2.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl Default for CoreMemConfig {
    /// The Table 4 processor model.
    fn default() -> Self {
        CoreMemConfig {
            il1: CacheConfig::l1(),
            dl1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            itlb: TlbConfig::itlb(),
            dtlb: TlbConfig::dtlb(),
        }
    }
}

/// Result of an instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchResult {
    /// Total latency in core cycles.
    pub cycles: u32,
    /// Physical base address of the line filled into IL1, when the fetch
    /// missed — the code-origin check point.
    pub il1_fill: Option<u32>,
}

/// One core's caches and TLBs.
#[derive(Debug)]
pub struct CoreMemory {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

impl CoreMemory {
    /// Creates a cold hierarchy.
    #[must_use]
    pub fn new(cfg: CoreMemConfig) -> CoreMemory {
        CoreMemory {
            il1: Cache::new(cfg.il1),
            dl1: Cache::new(cfg.dl1),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
        }
    }

    /// Immutable access to the IL1 (stats for Fig. 9).
    #[must_use]
    pub fn il1(&self) -> &Cache {
        &self.il1
    }

    /// Immutable access to the DL1.
    #[must_use]
    pub fn dl1(&self) -> &Cache {
        &self.dl1
    }

    /// Immutable access to the L2.
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Immutable access to the ITLB.
    #[must_use]
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// Immutable access to the DTLB.
    #[must_use]
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Resets all statistics (cache/TLB contents stay warm) — used at
    /// measurement-phase boundaries in the benches.
    pub fn reset_stats(&mut self) {
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    /// Cost of an L2 access at `paddr`, filling from DRAM on a miss.
    fn l2_access(&mut self, paddr: u32, write: bool, dram: &mut Sdram) -> u32 {
        let line = self.l2.config().line;
        let out = self.l2.access(paddr, write);
        let mut cycles = self.l2.config().hit_latency;
        if let Some(wb) = out.writeback {
            let (c, _) = dram.access(wb, line);
            cycles += c;
        }
        if let Some(fill) = out.fill {
            let (c, _) = dram.access(fill, line);
            cycles += c;
        }
        cycles
    }

    /// Fetches the instruction at virtual address `vaddr` / physical
    /// address `paddr` for address space `asid`.
    pub fn fetch(&mut self, asid: u16, vaddr: u32, paddr: u32, dram: &mut Sdram) -> FetchResult {
        let (tlb_cost, _) = self.itlb.access(asid, vaddr >> crate::PAGE_SHIFT);
        let out = self.il1.access(paddr, false);
        let mut cycles = tlb_cost + self.il1.config().hit_latency;
        if out.fill.is_some() {
            // IL1 is read-only; no writebacks from it.
            cycles += self.l2_access(paddr, false, dram);
        }
        FetchResult { cycles, il1_fill: out.fill }
    }

    /// Applies the accounting of `n` straight-line instruction fetches
    /// that are guaranteed ITLB + IL1 hits (same page and same line as
    /// an immediately preceding fetch, with no intervening instruction
    /// accesses) — bit-identical to `n` [`CoreMemory::fetch`] calls in
    /// that situation, at a fraction of the cost. Returns `false`
    /// without touching anything if either structure turns out not to
    /// hold the entry (callers then fall back to per-fetch calls).
    pub fn note_fetch_hits(&mut self, asid: u16, vaddr: u32, paddr: u32, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let vpn = vaddr >> crate::PAGE_SHIFT;
        // Probe first so a refused batch leaves both structures untouched.
        if !self.itlb.probe(asid, vpn) || !self.il1.note_read_hits(paddr, n) {
            return false;
        }
        let tlb_ok = self.itlb.note_hits(asid, vpn, n);
        debug_assert!(tlb_ok, "probed resident");
        true
    }

    /// Performs a data access (`write` = store) at `vaddr`/`paddr`.
    pub fn data_access(
        &mut self,
        asid: u16,
        vaddr: u32,
        paddr: u32,
        write: bool,
        dram: &mut Sdram,
    ) -> u32 {
        let (tlb_cost, _) = self.dtlb.access(asid, vaddr >> crate::PAGE_SHIFT);
        let out = self.dl1.access(paddr, write);
        let mut cycles = tlb_cost + self.dl1.config().hit_latency;
        if let Some(wb) = out.writeback {
            cycles += self.l2_access(wb, true, dram);
        }
        if out.fill.is_some() {
            cycles += self.l2_access(paddr, false, dram);
        }
        cycles
    }

    /// A raw uncached access (memory-mapped I/O, DMA): straight to DRAM.
    pub fn uncached_access(&mut self, paddr: u32, bytes: u32, dram: &mut Sdram) -> u32 {
        dram.access(paddr, bytes).0
    }

    /// Flushes only the L1s (rollback invalidates lines whose memory was
    /// rewritten underneath them; the far larger L2 is refreshed through
    /// normal misses — the paper's recovery flushes pipelines, not the
    /// whole hierarchy).
    pub fn flush_l1s(&mut self) {
        self.il1.flush();
        self.dl1.flush();
    }

    /// Flushes both L1s and the L2 (used when a resurrectee is rolled back).
    pub fn flush_all(&mut self) {
        self.il1.flush();
        self.dl1.flush();
        self.l2.flush();
        self.itlb.flush();
        self.dtlb.flush();
    }

    /// Captures the whole hierarchy's mutable state.
    #[must_use]
    pub fn save_state(&self) -> CoreMemState {
        CoreMemState {
            il1: self.il1.save_state(),
            dl1: self.dl1.save_state(),
            l2: self.l2.save_state(),
            itlb: self.itlb.save_state(),
            dtlb: self.dtlb.save_state(),
        }
    }

    /// Restores state captured by [`CoreMemory::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when any component's saved geometry does not match.
    pub fn restore_state(&mut self, state: &CoreMemState) {
        self.il1.restore_state(&state.il1);
        self.dl1.restore_state(&state.dl1);
        self.l2.restore_state(&state.l2);
        self.itlb.restore_state(&state.itlb);
        self.dtlb.restore_state(&state.dtlb);
    }
}

/// Complete mutable state of a [`CoreMemory`], captured by
/// [`CoreMemory::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreMemState {
    /// Instruction L1 state.
    pub il1: CacheState,
    /// Data L1 state.
    pub dl1: CacheState,
    /// Unified L2 state.
    pub l2: CacheState,
    /// Instruction TLB state.
    pub itlb: TlbState,
    /// Data TLB state.
    pub dtlb: TlbState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn warm() -> (CoreMemory, Sdram) {
        (CoreMemory::new(CoreMemConfig::default()), Sdram::new(DramConfig::default()))
    }

    #[test]
    fn fetch_hit_is_one_cycle_after_warmup() {
        let (mut m, mut dram) = warm();
        let first = m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        assert!(first.il1_fill.is_some());
        assert!(first.cycles > 1, "cold fetch pays TLB + L2 + DRAM");
        let second = m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        assert_eq!(second.cycles, 1);
        assert_eq!(second.il1_fill, None);
    }

    #[test]
    fn fetch_same_line_no_refill() {
        let (mut m, mut dram) = warm();
        m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        let r = m.fetch(1, 0x40_0010, 0x40_0010, &mut dram);
        assert_eq!(r.il1_fill, None, "same 32B line");
        let r = m.fetch(1, 0x40_0020, 0x40_0020, &mut dram);
        assert_eq!(r.il1_fill, Some(0x40_0020), "next line refills");
    }

    #[test]
    fn il1_miss_that_hits_l2_is_cheaper_than_dram() {
        let (mut m, mut dram) = warm();
        // Warm the L2 line via a data access, then fetch the same line:
        m.data_access(1, 0x40_0000, 0x40_0000, false, &mut dram);
        let r = m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        assert!(r.il1_fill.is_some());
        // L2 hit path: ITLB hit (after data access warmed DTLB, not ITLB —
        // pay the ITLB walk) + IL1 1 + L2 8; no DRAM traffic this time.
        let dram_before = dram.stats().accesses;
        let _ = r;
        assert_eq!(dram.stats().accesses, dram_before);
    }

    #[test]
    fn store_dirties_and_writes_back() {
        let (mut m, mut dram) = warm();
        m.data_access(1, 0x1000_0000, 0x1000_0000, true, &mut dram);
        // Evict via conflicting lines (DL1 direct-mapped 16KB): same index
        // needs addr + 16KB.
        m.data_access(1, 0x1000_4000, 0x1000_4000, false, &mut dram);
        assert_eq!(m.dl1().stats().writebacks, 1);
    }

    #[test]
    fn note_fetch_hits_matches_sequential_fetches() {
        let (mut a, mut dram_a) = warm();
        let (mut b, mut dram_b) = warm();
        // Warm the line + page in both.
        a.fetch(1, 0x40_0000, 0x40_0000, &mut dram_a);
        b.fetch(1, 0x40_0000, 0x40_0000, &mut dram_b);
        // a: 7 sequential same-line fetches; b: one batched note.
        for i in 1..8 {
            let r = a.fetch(1, 0x40_0000 + i * 4, 0x40_0000 + i * 4, &mut dram_a);
            assert_eq!(r.cycles, 1);
            assert_eq!(r.il1_fill, None);
        }
        assert!(b.note_fetch_hits(1, 0x40_0004, 0x40_0004, 7));
        assert_eq!(a.il1().stats(), b.il1().stats());
        assert_eq!(a.itlb().stats(), b.itlb().stats());
        // LRU parity: force an eviction decision in both and compare.
        assert_eq!(a.il1().save_state(), b.il1().save_state());
        assert_eq!(a.itlb().save_state(), b.itlb().save_state());
        // Cold line is refused untouched.
        let before = b.il1().save_state();
        assert!(!b.note_fetch_hits(1, 0x90_0000, 0x90_0000, 3));
        assert_eq!(b.il1().save_state(), before);
    }

    #[test]
    fn flush_all_clears_residency() {
        let (mut m, mut dram) = warm();
        m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        m.flush_all();
        let r = m.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
        assert!(r.il1_fill.is_some(), "flushed line must refill");
    }
}
