#![warn(missing_docs)]
//! # indra-mem — memory hierarchy substrate
//!
//! The cache/TLB/DRAM timing substrate for the INDRA reproduction,
//! modeled after the processor of Table 4 in the paper (SimpleScalar-style
//! timing-only caches plus the Gries & Romer PC-SDRAM model):
//!
//! * [`PhysicalMemory`] — sparse byte-addressable RAM holding real data
//!   (program text, stacks, backup pages).
//! * [`Cache`] — generic set-associative write-back cache used for the
//!   direct-mapped 16 KiB L1s and the 4-way 512 KiB per-core L2.
//! * [`Tlb`] — the 4-way ITLB/DTLB, extended by INDRA to carry
//!   backup-page records.
//! * [`Sdram`] — banked open-row SDRAM with CAS/RCD/RP timing.
//! * [`CoreMemory`] — one core's hierarchy, reporting the IL1 fills that
//!   drive INDRA's code-origin inspection.
//!
//! ```
//! use indra_mem::{CoreMemConfig, CoreMemory, Sdram};
//!
//! let mut mem = CoreMemory::new(CoreMemConfig::default());
//! let mut dram = Sdram::default();
//! let cold = mem.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
//! assert!(cold.il1_fill.is_some());           // line entered IL1 → code-origin check
//! let warm = mem.fetch(1, 0x40_0000, 0x40_0000, &mut dram);
//! assert_eq!(warm.cycles, 1);                  // Table 4: 1-cycle L1
//! ```

mod cache;
mod dram;
mod hierarchy;
mod phys;
mod tlb;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheLineState, CacheState, CacheStats};
pub use dram::{DramConfig, DramState, DramStats, RowOutcome, Sdram};
pub use hierarchy::{CoreMemConfig, CoreMemState, CoreMemory, FetchResult};
pub use phys::{
    FrameAllocator, FrameAllocatorState, PhysMemState, PhysicalMemory, PAGE_SHIFT, PAGE_SIZE,
};
pub use tlb::{Tlb, TlbConfig, TlbEntryState, TlbState, TlbStats};
