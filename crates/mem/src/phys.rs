//! Physical memory and frame allocation.
//!
//! Physical memory is sparse: 4 KiB frames materialize on first touch.
//! The [`FrameAllocator`] hands out frames for process images, backup
//! pages (the delta-backup engine allocates backup frames on demand,
//! §3.3.1 of the paper) and kernel structures.

use std::collections::HashMap;

/// Size of a physical frame / virtual page in bytes.
pub const PAGE_SIZE: u32 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// One materialized frame: contents plus a host-side write epoch.
#[derive(Debug)]
struct Frame {
    data: Box<[u8; PAGE_SIZE as usize]>,
    /// Bumped on every mutable borrow of the frame. Host-visible
    /// cache-validation data (translation-trace pinning), never part of
    /// [`PhysMemState`].
    epoch: u64,
}

/// Byte-addressable sparse physical memory.
///
/// Reads from never-written frames return zeros, mirroring how the
/// simulator's RAM powers up.
#[derive(Debug, Default)]
pub struct PhysicalMemory {
    frames: HashMap<u32, Frame>,
    /// When set, every frame touched for writing is appended to `dirty`
    /// (with consecutive-duplicate suppression). Off by default so the
    /// hot write path costs one branch for non-replicated runs.
    track_dirty: bool,
    dirty: Vec<u32>,
    /// Bumped on wholesale replacement ([`PhysicalMemory::restore_state`])
    /// so incremental-digest caches know their per-frame entries are stale.
    generation: u64,
}

impl PhysicalMemory {
    /// Creates empty physical memory.
    #[must_use]
    pub fn new() -> PhysicalMemory {
        PhysicalMemory::default()
    }

    fn frame_mut(&mut self, ppn: u32) -> &mut [u8; PAGE_SIZE as usize] {
        if self.track_dirty && self.dirty.last() != Some(&ppn) {
            self.dirty.push(ppn);
        }
        let f = self
            .frames
            .entry(ppn)
            .or_insert_with(|| Frame { data: Box::new([0; PAGE_SIZE as usize]), epoch: 0 });
        f.epoch += 1;
        &mut f.data
    }

    /// Turns on dirty-frame tracking (used by the replica layer's
    /// incremental state digest). Tracking starts empty: frames written
    /// *after* this call show up in [`PhysicalMemory::take_dirty`].
    pub fn enable_dirty_tracking(&mut self) {
        self.track_dirty = true;
        self.dirty.clear();
    }

    /// Whether dirty-frame tracking is on.
    #[must_use]
    pub fn dirty_tracking(&self) -> bool {
        self.track_dirty
    }

    /// Drains the set of frames written since the last call (may contain
    /// non-consecutive duplicates; callers dedup as they fold).
    pub fn take_dirty(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty)
    }

    /// Restore generation: bumped whenever the whole memory image is
    /// replaced, invalidating any per-frame digest cache.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Write epoch of frame `ppn`: bumped by every write that touches
    /// the frame, `0` for never-materialized frames. Host-side
    /// cache-validation data (the superblock engine pins code frames by
    /// epoch), not simulated state. Epochs reset on
    /// [`PhysicalMemory::restore_state`], so always pair them with
    /// [`PhysicalMemory::generation`].
    #[must_use]
    pub fn frame_epoch(&self, ppn: u32) -> u64 {
        self.frames.get(&ppn).map_or(0, |f| f.epoch)
    }

    /// Sum of [`PhysicalMemory::frame_epoch`] over every frame the byte
    /// range `[paddr, paddr + len)` touches. Epochs are monotonic, so
    /// any write anywhere in the range changes the sum — a cheap
    /// range-dirty query for pinned code ranges.
    #[must_use]
    pub fn range_epoch(&self, paddr: u32, len: u32) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = paddr >> PAGE_SHIFT;
        let last = paddr.saturating_add(len - 1) >> PAGE_SHIFT;
        (first..=last).map(|ppn| self.frame_epoch(ppn)).sum()
    }

    /// Borrows one resident frame's contents, if materialized.
    #[must_use]
    pub fn frame(&self, ppn: u32) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.frames.get(&ppn).map(|f| &*f.data)
    }

    /// All resident physical page numbers in ascending order.
    #[must_use]
    pub fn resident_ppns(&self) -> Vec<u32> {
        let mut ppns: Vec<u32> = self.frames.keys().copied().collect();
        ppns.sort_unstable();
        ppns
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, paddr: u32) -> u8 {
        match self.frames.get(&(paddr >> PAGE_SHIFT)) {
            Some(f) => f.data[(paddr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, paddr: u32, value: u8) {
        self.frame_mut(paddr >> PAGE_SHIFT)[(paddr & (PAGE_SIZE - 1)) as usize] = value;
    }

    /// Reads a little-endian `u32` (no alignment requirement; may span frames).
    #[must_use]
    pub fn read_u32(&self, paddr: u32) -> u32 {
        let off = (paddr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            // Single frame: one map lookup instead of four.
            match self.frames.get(&(paddr >> PAGE_SHIFT)) {
                Some(f) => {
                    u32::from_le_bytes(f.data[off..off + 4].try_into().expect("4-byte slice"))
                }
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            self.read_bytes(paddr, &mut b);
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, paddr: u32, value: u32) {
        let off = (paddr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            self.frame_mut(paddr >> PAGE_SHIFT)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_bytes(paddr, &value.to_le_bytes());
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, paddr: u32) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(paddr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, paddr: u32, value: u16) {
        self.write_bytes(paddr, &value.to_le_bytes());
    }

    /// Copies `data` into memory starting at `paddr`, one frame-sized
    /// chunk at a time.
    pub fn write_bytes(&mut self, paddr: u32, data: &[u8]) {
        let mut addr = paddr;
        let mut data = data;
        while !data.is_empty() {
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let room = (PAGE_SIZE as usize - off).min(data.len());
            self.frame_mut(addr >> PAGE_SHIFT)[off..off + room].copy_from_slice(&data[..room]);
            data = &data[room..];
            addr = addr.wrapping_add(room as u32);
        }
    }

    /// Copies `out.len()` bytes out of memory starting at `paddr`, one
    /// frame-sized chunk at a time (absent frames read as zeros).
    pub fn read_bytes(&self, paddr: u32, out: &mut [u8]) {
        let mut addr = paddr;
        let mut out = out;
        while !out.is_empty() {
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let room = (PAGE_SIZE as usize - off).min(out.len());
            match self.frames.get(&(addr >> PAGE_SHIFT)) {
                Some(f) => out[..room].copy_from_slice(&f.data[off..off + room]),
                None => out[..room].fill(0),
            }
            out = &mut out[room..];
            addr = addr.wrapping_add(room as u32);
        }
    }

    /// Copies `len` bytes from frame-to-frame (used by the page-copy
    /// checkpointing baselines, which the paper's Fig. 14 shows is the
    /// expensive part).
    pub fn copy(&mut self, dst: u32, src: u32, len: u32) {
        let (dst64, src64, len64) = (u64::from(dst), u64::from(src), u64::from(len));
        let in_bounds = dst64 + len64 <= 1 << 32 && src64 + len64 <= 1 << 32;
        let disjoint = dst64 + len64 <= src64 || src64 + len64 <= dst64;
        if in_bounds && disjoint && len > 0 {
            let mut buf = vec![0u8; len as usize];
            self.read_bytes(src, &mut buf);
            self.write_bytes(dst, &buf);
        } else {
            // Overlapping or wrapping ranges keep the sequential
            // byte-copy semantics (forward propagation on overlap).
            for i in 0..len {
                let b = self.read_u8(src.wrapping_add(i));
                self.write_u8(dst.wrapping_add(i), b);
            }
        }
    }

    /// Number of frames actually materialized.
    #[must_use]
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Captures every resident frame, sorted by PPN (a deterministic
    /// image regardless of hash-map layout).
    #[must_use]
    pub fn save_state(&self) -> PhysMemState {
        let mut frames: Vec<(u32, Box<[u8; PAGE_SIZE as usize]>)> =
            self.frames.iter().map(|(&ppn, f)| (ppn, f.data.clone())).collect();
        frames.sort_unstable_by_key(|&(ppn, _)| ppn);
        PhysMemState { frames }
    }

    /// Replaces all contents with the frames captured by
    /// [`PhysicalMemory::save_state`]. Frame write epochs restart from
    /// zero; the generation bump keeps (generation, epoch) pairs unique.
    pub fn restore_state(&mut self, state: &PhysMemState) {
        self.frames.clear();
        for (ppn, data) in &state.frames {
            self.frames.insert(*ppn, Frame { data: data.clone(), epoch: 0 });
        }
        self.dirty.clear();
        self.generation += 1;
    }
}

/// Snapshot of sparse physical memory: every resident frame, sorted by
/// physical page number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysMemState {
    /// `(ppn, contents)` pairs in ascending PPN order.
    pub frames: Vec<(u32, Box<[u8; PAGE_SIZE as usize]>)>,
}

/// A bump-plus-freelist physical frame allocator.
#[derive(Debug)]
pub struct FrameAllocator {
    base: u32,
    next: u32,
    limit: u32,
    free: Vec<u32>,
    allocated: u64,
}

impl FrameAllocator {
    /// Creates an allocator handing out frames `[base_ppn, limit_ppn)`.
    #[must_use]
    pub fn new(base_ppn: u32, limit_ppn: u32) -> FrameAllocator {
        assert!(base_ppn < limit_ppn, "empty frame range");
        FrameAllocator {
            base: base_ppn,
            next: base_ppn,
            limit: limit_ppn,
            free: Vec::new(),
            allocated: 0,
        }
    }

    /// Allocates one frame, returning its physical page number.
    ///
    /// Returns `None` when physical memory is exhausted.
    pub fn alloc(&mut self) -> Option<u32> {
        let ppn = if let Some(ppn) = self.free.pop() {
            ppn
        } else if self.next < self.limit {
            let p = self.next;
            self.next += 1;
            p
        } else {
            return None;
        };
        self.allocated += 1;
        Some(ppn)
    }

    /// Returns a frame to the allocator.
    pub fn release(&mut self, ppn: u32) {
        debug_assert!(ppn < self.limit, "releasing frame outside the pool");
        self.free.push(ppn);
    }

    /// Frames currently live (allocated minus released).
    #[must_use]
    pub fn live_frames(&self) -> u32 {
        (self.next - self.base) - self.free.len() as u32
    }

    /// Total allocations performed (monotonic).
    #[must_use]
    pub fn total_allocations(&self) -> u64 {
        self.allocated
    }

    /// Captures the allocator's full state (bump pointer, free list,
    /// counters).
    #[must_use]
    pub fn save_state(&self) -> FrameAllocatorState {
        FrameAllocatorState {
            base: self.base,
            next: self.next,
            limit: self.limit,
            free: self.free.clone(),
            allocated: self.allocated,
        }
    }

    /// Restores state captured by [`FrameAllocator::save_state`],
    /// including the pool bounds.
    pub fn restore_state(&mut self, state: &FrameAllocatorState) {
        self.base = state.base;
        self.next = state.next;
        self.limit = state.limit;
        self.free.clone_from(&state.free);
        self.allocated = state.allocated;
    }
}

/// Complete state of a [`FrameAllocator`], captured by
/// [`FrameAllocator::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameAllocatorState {
    /// First PPN of the pool.
    pub base: u32,
    /// Next never-allocated PPN.
    pub next: u32,
    /// One past the last PPN of the pool.
    pub limit: u32,
    /// Released frames awaiting reuse (stack order matters: the allocator
    /// pops from the end).
    pub free: Vec<u32>,
    /// Monotonic allocation counter.
    pub allocated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_power_up() {
        let m = PhysicalMemory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u32(0xFFFF_FFF0), 0);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = PhysicalMemory::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u16(0x1002), 0xDEAD);
    }

    #[test]
    fn cross_frame_access() {
        let mut m = PhysicalMemory::new();
        m.write_u32(PAGE_SIZE - 2, 0x1122_3344);
        assert_eq!(m.read_u32(PAGE_SIZE - 2), 0x1122_3344);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn bulk_copy() {
        let mut m = PhysicalMemory::new();
        m.write_bytes(0x100, b"hello world");
        m.copy(0x2000, 0x100, 11);
        let mut out = [0u8; 11];
        m.read_bytes(0x2000, &mut out);
        assert_eq!(&out, b"hello world");
    }

    #[test]
    fn dirty_tracking_records_written_frames_only() {
        let mut m = PhysicalMemory::new();
        m.write_u32(0x1000, 1); // before enabling: not tracked
        m.enable_dirty_tracking();
        assert!(m.take_dirty().is_empty());
        m.write_u8(0x2000, 7);
        m.write_u8(0x2001, 8); // same frame, consecutive: deduped
        m.write_u32(PAGE_SIZE * 5, 9);
        let _ = m.read_u32(0x9000); // reads never dirty
        assert_eq!(m.take_dirty(), vec![2, 5]);
        assert!(m.take_dirty().is_empty(), "take drains");
    }

    #[test]
    fn restore_bumps_generation_and_clears_dirty() {
        let mut m = PhysicalMemory::new();
        m.enable_dirty_tracking();
        m.write_u8(0x3000, 1);
        let snap = m.save_state();
        let g0 = m.generation();
        m.write_u8(0x4000, 2);
        m.restore_state(&snap);
        assert_eq!(m.generation(), g0 + 1);
        assert!(m.take_dirty().is_empty());
        assert!(m.dirty_tracking(), "restore keeps tracking enabled");
    }

    #[test]
    fn frame_epochs_observe_every_write_path() {
        let mut m = PhysicalMemory::new();
        assert_eq!(m.frame_epoch(1), 0, "never-materialized frame");
        m.write_u8(0x1000, 1);
        let e1 = m.frame_epoch(1);
        assert!(e1 > 0);
        m.write_u32(0x1004, 2);
        assert!(m.frame_epoch(1) > e1, "write_u32 bumps");
        let before = m.range_epoch(0x0FF0, 0x20); // spans frames 0 and 1
        m.write_u16(0x0FFE, 3); // straddles the frame boundary
        assert!(m.range_epoch(0x0FF0, 0x20) > before, "straddling write bumps range");
        let r = m.range_epoch(0x1000, PAGE_SIZE);
        m.copy(0x1800, 0x0F00, 8);
        assert!(m.range_epoch(0x1000, PAGE_SIZE) > r, "copy dst bumps");
        assert_eq!(m.range_epoch(0x1000, 0), 0, "empty range");
        let _ = m.read_u32(0x1000);
        let snap = m.save_state();
        let g = m.generation();
        m.restore_state(&snap);
        assert_eq!(m.frame_epoch(1), 0, "restore resets epochs");
        assert_eq!(m.generation(), g + 1, "…but bumps the generation");
    }

    #[test]
    fn frame_and_resident_ppns_expose_sorted_residents() {
        let mut m = PhysicalMemory::new();
        m.write_u8(PAGE_SIZE * 9, 0xAA);
        m.write_u8(PAGE_SIZE * 3, 0xBB);
        assert_eq!(m.resident_ppns(), vec![3, 9]);
        assert_eq!(m.frame(3).unwrap()[0], 0xBB);
        assert!(m.frame(4).is_none());
    }

    #[test]
    fn allocator_reuses_released_frames() {
        let mut a = FrameAllocator::new(10, 13);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        a.release(f1);
        let f3 = a.alloc().unwrap();
        assert_eq!(f3, f1);
        let _ = a.alloc().unwrap();
        assert!(a.alloc().is_none(), "pool exhausted");
        assert_eq!(a.total_allocations(), 4);
    }
}
