//! Translation lookaside buffers.
//!
//! Timing-capacity model of the ITLB/DTLB of Table 4 (4-way, 128/256
//! entries). Translation itself is performed by the page table in
//! `indra-sim`; the TLB decides whether a page-walk penalty applies and —
//! for INDRA — models the *TLB extension* of §3.3.1: each resident entry
//! can carry the backup-page record handle for its page, so the
//! delta-backup engine's common case costs no extra memory traffic.

/// Configuration of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Page-walk penalty in cycles applied on a miss.
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// Table 4 ITLB: 4-way, 128 entries.
    #[must_use]
    pub fn itlb() -> TlbConfig {
        TlbConfig { entries: 128, ways: 4, miss_penalty: 30 }
    }

    /// Table 4 DTLB: 4-way, 256 entries.
    #[must_use]
    pub fn dtlb() -> TlbConfig {
        TlbConfig { entries: 256, ways: 4, miss_penalty: 30 }
    }

    fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    vpn: u32,
    asid: u16,
    valid: bool,
    lru: u64,
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Misses (page walks).
    pub misses: u64,
}

/// A set-associative TLB keyed by `(asid, vpn)`.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<Entry>,
    stamp: u64,
    stats: TlbStats,
    // Precomputed `sets() - 1` (set count is a power of two, validated
    // in `new`): set selection is a mask, not a division.
    set_mask: u32,
}

impl Tlb {
    /// Creates a cold TLB.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is not divisible by `ways` or the set count is
    /// not a power of two.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries.is_multiple_of(cfg.ways), "entries not divisible by ways");
        assert!(cfg.sets().is_power_of_two(), "set count must be a power of two");
        Tlb {
            cfg,
            entries: vec![Entry::default(); cfg.entries as usize],
            stamp: 0,
            stats: TlbStats::default(),
            set_mask: cfg.sets() - 1,
        }
    }

    /// The TLB's configuration.
    #[must_use]
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn set_range(&self, vpn: u32) -> std::ops::Range<usize> {
        let set = (vpn & self.set_mask) as usize;
        let ways = self.cfg.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Applies the accounting of `n` consecutive hits on `(asid, vpn)` —
    /// bit-identical to calling [`Tlb::access`] `n` times when the entry
    /// is resident and nothing else touches this TLB in between. Returns
    /// `false` without touching anything when the entry is not resident,
    /// so callers can fall back to per-access calls.
    pub fn note_hits(&mut self, asid: u16, vpn: u32, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        for i in self.set_range(vpn) {
            let e = &mut self.entries[i];
            if e.valid && e.vpn == vpn && e.asid == asid {
                self.stamp += n;
                self.stats.accesses += n;
                e.lru = self.stamp;
                return true;
            }
        }
        false
    }

    /// Looks up `(asid, vpn)`, inserting it on a miss; returns the cycle
    /// cost (`0` on hit, `miss_penalty` on miss) and whether it missed.
    pub fn access(&mut self, asid: u16, vpn: u32) -> (u32, bool) {
        self.stamp += 1;
        self.stats.accesses += 1;
        let range = self.set_range(vpn);
        for i in range.clone() {
            let e = &mut self.entries[i];
            if e.valid && e.vpn == vpn && e.asid == asid {
                e.lru = self.stamp;
                return (0, false);
            }
        }
        self.stats.misses += 1;
        let victim = range
            .min_by_key(|&i| {
                let e = &self.entries[i];
                if e.valid {
                    (1, e.lru)
                } else {
                    (0, 0)
                }
            })
            .expect("TLB set is never empty");
        self.entries[victim] = Entry { vpn, asid, valid: true, lru: self.stamp };
        (self.cfg.miss_penalty, true)
    }

    /// Whether `(asid, vpn)` is resident, without perturbing LRU/stats.
    #[must_use]
    pub fn probe(&self, asid: u16, vpn: u32) -> bool {
        self.set_range(vpn)
            .map(|i| &self.entries[i])
            .any(|e| e.valid && e.vpn == vpn && e.asid == asid)
    }

    /// Drops every entry belonging to `asid` (context-destroy / rollback).
    pub fn flush_asid(&mut self, asid: u16) {
        for e in &mut self.entries {
            if e.asid == asid {
                e.valid = false;
            }
        }
    }

    /// Drops everything.
    pub fn flush(&mut self) {
        self.entries.fill(Entry::default());
    }

    /// Captures the TLB's full mutable state (entries, LRU order, stats).
    #[must_use]
    pub fn save_state(&self) -> TlbState {
        TlbState {
            entries: self
                .entries
                .iter()
                .map(|e| TlbEntryState { vpn: e.vpn, asid: e.asid, valid: e.valid, lru: e.lru })
                .collect(),
            stamp: self.stamp,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Tlb::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when the saved entry count does not match this TLB's
    /// geometry.
    pub fn restore_state(&mut self, state: &TlbState) {
        assert_eq!(state.entries.len(), self.entries.len(), "TLB state geometry mismatch");
        for (entry, s) in self.entries.iter_mut().zip(&state.entries) {
            *entry = Entry { vpn: s.vpn, asid: s.asid, valid: s.valid, lru: s.lru };
        }
        self.stamp = state.stamp;
        self.stats = state.stats;
    }
}

/// Serializable state of one TLB entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbEntryState {
    /// Virtual page number.
    pub vpn: u32,
    /// Owning address space.
    pub asid: u16,
    /// Valid bit.
    pub valid: bool,
    /// Last-use stamp.
    pub lru: u64,
}

/// Complete mutable state of a [`Tlb`], captured by [`Tlb::save_state`]
/// for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TlbState {
    /// Every entry, in set-major order.
    pub entries: Vec<TlbEntryState>,
    /// LRU stamp counter.
    pub stamp: u64,
    /// Accumulated statistics.
    pub stats: TlbStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig { entries: 8, ways: 2, miss_penalty: 30 })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        let (cost, missed) = t.access(1, 0x40);
        assert!(missed);
        assert_eq!(cost, 30);
        let (cost, missed) = t.access(1, 0x40);
        assert!(!missed);
        assert_eq!(cost, 0);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn asid_isolation() {
        let mut t = tiny();
        t.access(1, 0x40);
        let (_, missed) = t.access(2, 0x40);
        assert!(missed, "same VPN in a different address space misses");
    }

    #[test]
    fn flush_asid_spares_others() {
        let mut t = tiny();
        t.access(1, 0x40);
        t.access(2, 0x41);
        t.flush_asid(1);
        assert!(!t.probe(1, 0x40));
        assert!(t.probe(2, 0x41));
    }

    #[test]
    fn lru_within_set() {
        let mut t = tiny(); // 4 sets, 2 ways
                            // VPNs 0, 4, 8 all map to set 0.
        t.access(1, 0);
        t.access(1, 4);
        t.access(1, 0); // 4 becomes LRU
        t.access(1, 8); // evicts 4
        assert!(t.probe(1, 0));
        assert!(!t.probe(1, 4));
        assert!(t.probe(1, 8));
    }

    #[test]
    fn table4_shapes() {
        assert_eq!(TlbConfig::itlb().sets(), 32);
        assert_eq!(TlbConfig::dtlb().sets(), 64);
    }
}
