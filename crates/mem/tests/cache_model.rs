//! Property tests: the set-associative cache against an executable
//! reference model (per-set LRU lists), and structural invariants of the
//! TLB and DRAM models.

use std::collections::VecDeque;

use indra_mem::{Cache, CacheConfig, DramConfig, RowOutcome, Sdram, Tlb, TlbConfig};
use indra_rng::forall;

/// An obviously-correct cache model: one LRU `VecDeque` of (tag, dirty)
/// per set, most-recent at the front.
struct ModelCache {
    cfg: CacheConfig,
    sets: Vec<VecDeque<(u32, bool)>>,
}

impl ModelCache {
    fn new(cfg: CacheConfig) -> ModelCache {
        ModelCache { cfg, sets: vec![VecDeque::new(); cfg.sets() as usize] }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.cfg.line;
        ((line & (self.cfg.sets() - 1)) as usize, line / self.cfg.sets())
    }

    /// Returns (hit, writeback_occurred).
    fn access(&mut self, addr: u32, write: bool) -> (bool, bool) {
        let ways = self.cfg.ways as usize;
        let (set, tag) = self.index(addr);
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, d) = set.remove(pos).expect("found");
            set.push_front((t, d || write));
            return (true, false);
        }
        let mut wb = false;
        if set.len() == ways {
            let (_, dirty) = set.pop_back().expect("full set");
            wb = dirty;
        }
        set.push_front((tag, write));
        (false, wb)
    }
}

/// The cache agrees with the reference model on every hit/miss and
/// writeback decision across arbitrary access traces.
#[test]
fn cache_matches_lru_model() {
    forall("cache_matches_lru_model", 128, |rng| {
        let ways = rng.range_u32(1, 5);
        let accesses: Vec<(u32, bool)> = (0..rng.range_usize(1, 400))
            .map(|_| (rng.range_u32(0, 0x8000), rng.gen_bool()))
            .collect();
        let cfg = CacheConfig { size: 64 * 16 * ways, line: 16, ways, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut model = ModelCache::new(cfg);
        let mut hits = 0u64;
        let mut wbs = 0u64;
        for &(addr, write) in &accesses {
            let out = cache.access(addr, write);
            let (model_hit, model_wb) = model.access(addr, write);
            assert_eq!(out.hit, model_hit, "hit/miss divergence at {addr:#x}");
            assert_eq!(out.writeback.is_some(), model_wb, "writeback divergence at {addr:#x}");
            if out.hit {
                hits += 1;
            }
            if out.writeback.is_some() {
                wbs += 1;
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.accesses, accesses.len() as u64);
        assert_eq!(stats.misses, accesses.len() as u64 - hits);
        assert_eq!(stats.writebacks, wbs);
    });
}

/// A probe never lies: after an access, the line is resident until an
/// eviction from its set.
#[test]
fn probe_reflects_residency() {
    forall("probe_reflects_residency", 128, |rng| {
        let cfg = CacheConfig { size: 1024, line: 32, ways: 2, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        for _ in 0..rng.range_usize(1, 100) {
            let addr = rng.range_u32(0, 0x4000);
            cache.access(addr, false);
            assert!(cache.probe(addr), "just-accessed line must be resident");
        }
    });
}

/// TLB: a lookup immediately after an insert hits; flushing the ASID
/// clears exactly that ASID.
#[test]
fn tlb_insert_then_hit() {
    forall("tlb_insert_then_hit", 128, |rng| {
        let vpns: Vec<u32> = (0..rng.range_usize(1, 200)).map(|_| rng.range_u32(0, 4096)).collect();
        let mut tlb = Tlb::new(TlbConfig { entries: 64, ways: 4, miss_penalty: 30 });
        for &vpn in &vpns {
            tlb.access(1, vpn);
            let (cost, missed) = tlb.access(1, vpn);
            assert!(!missed);
            assert_eq!(cost, 0);
        }
        tlb.flush_asid(1);
        assert!(!tlb.probe(1, vpns[0]));
    });
}

/// DRAM: back-to-back accesses to the same row always hit; the cost of
/// any access is bounded by the conflict case.
#[test]
fn dram_row_behaviour() {
    forall("dram_row_behaviour", 128, |rng| {
        let cfg = DramConfig::default();
        let mut dram = Sdram::new(cfg);
        let worst = (cfg.precharge + cfg.ras_to_cas + cfg.cas + 64 / cfg.bus_bytes_per_clock)
            * cfg.core_clock_ratio;
        let addrs: Vec<u32> =
            (0..rng.range_usize(1, 200)).map(|_| rng.range_u32(0, 0x100_0000)).collect();
        for &addr in &addrs {
            let (cost, _) = dram.access(addr, 64);
            assert!(cost <= worst, "cost {cost} above conflict bound {worst}");
            let (cost2, outcome2) = dram.access(addr, 64);
            assert_eq!(outcome2, RowOutcome::Hit, "immediate revisit must row-hit");
            assert!(cost2 <= cost);
        }
        let s = dram.stats();
        assert_eq!(s.accesses, addrs.len() as u64 * 2);
        assert!(s.row_hits >= addrs.len() as u64);
    });
}
