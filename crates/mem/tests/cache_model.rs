//! Property tests: the set-associative cache against an executable
//! reference model (per-set LRU lists), and structural invariants of the
//! TLB and DRAM models.

use std::collections::VecDeque;

use proptest::prelude::*;

use indra_mem::{Cache, CacheConfig, DramConfig, RowOutcome, Sdram, Tlb, TlbConfig};

/// An obviously-correct cache model: one LRU `VecDeque` of (tag, dirty)
/// per set, most-recent at the front.
struct ModelCache {
    cfg: CacheConfig,
    sets: Vec<VecDeque<(u32, bool)>>,
}

impl ModelCache {
    fn new(cfg: CacheConfig) -> ModelCache {
        ModelCache { cfg, sets: vec![VecDeque::new(); cfg.sets() as usize] }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.cfg.line;
        ((line & (self.cfg.sets() - 1)) as usize, line / self.cfg.sets())
    }

    /// Returns (hit, writeback_occurred).
    fn access(&mut self, addr: u32, write: bool) -> (bool, bool) {
        let ways = self.cfg.ways as usize;
        let (set, tag) = self.index(addr);
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, d) = set.remove(pos).expect("found");
            set.push_front((t, d || write));
            return (true, false);
        }
        let mut wb = false;
        if set.len() == ways {
            let (_, dirty) = set.pop_back().expect("full set");
            wb = dirty;
        }
        set.push_front((tag, write));
        (false, wb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache agrees with the reference model on every hit/miss and
    /// writeback decision across arbitrary access traces.
    #[test]
    fn cache_matches_lru_model(
        accesses in proptest::collection::vec((0u32..0x8000, any::<bool>()), 1..400),
        ways in 1u32..=4,
    ) {
        let cfg = CacheConfig { size: 64 * 16 * ways, line: 16, ways, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut model = ModelCache::new(cfg);
        let mut hits = 0u64;
        let mut wbs = 0u64;
        for &(addr, write) in &accesses {
            let out = cache.access(addr, write);
            let (model_hit, model_wb) = model.access(addr, write);
            prop_assert_eq!(out.hit, model_hit, "hit/miss divergence at {:#x}", addr);
            prop_assert_eq!(out.writeback.is_some(), model_wb, "writeback divergence at {:#x}", addr);
            if out.hit { hits += 1; }
            if out.writeback.is_some() { wbs += 1; }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, accesses.len() as u64);
        prop_assert_eq!(stats.misses, accesses.len() as u64 - hits);
        prop_assert_eq!(stats.writebacks, wbs);
    }

    /// A probe never lies: after an access, the line is resident until an
    /// eviction from its set.
    #[test]
    fn probe_reflects_residency(addrs in proptest::collection::vec(0u32..0x4000, 1..100)) {
        let cfg = CacheConfig { size: 1024, line: 32, ways: 2, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            cache.access(addr, false);
            prop_assert!(cache.probe(addr), "just-accessed line must be resident");
        }
    }

    /// TLB: a lookup immediately after an insert hits; flushing the ASID
    /// clears exactly that ASID.
    #[test]
    fn tlb_insert_then_hit(vpns in proptest::collection::vec(0u32..4096, 1..200)) {
        let mut tlb = Tlb::new(TlbConfig { entries: 64, ways: 4, miss_penalty: 30 });
        for &vpn in &vpns {
            tlb.access(1, vpn);
            let (cost, missed) = tlb.access(1, vpn);
            prop_assert!(!missed);
            prop_assert_eq!(cost, 0);
        }
        tlb.flush_asid(1);
        prop_assert!(!tlb.probe(1, vpns[0]));
    }

    /// DRAM: back-to-back accesses to the same row always hit; the cost of
    /// any access is bounded by the conflict case.
    #[test]
    fn dram_row_behaviour(addrs in proptest::collection::vec(0u32..0x100_0000, 1..200)) {
        let cfg = DramConfig::default();
        let mut dram = Sdram::new(cfg);
        let worst =
            (cfg.precharge + cfg.ras_to_cas + cfg.cas + 64 / cfg.bus_bytes_per_clock)
                * cfg.core_clock_ratio;
        for &addr in &addrs {
            let (cost, _) = dram.access(addr, 64);
            prop_assert!(cost <= worst, "cost {} above conflict bound {}", cost, worst);
            let (cost2, outcome2) = dram.access(addr, 64);
            prop_assert_eq!(outcome2, RowOutcome::Hit, "immediate revisit must row-hit");
            prop_assert!(cost2 <= cost);
        }
        let s = dram.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64 * 2);
        prop_assert!(s.row_hits >= addrs.len() as u64);
    }
}
