//! An in-memory filesystem.
//!
//! Deliberately simple: flat namespace, whole-file byte vectors, append
//! writes. It exists because INDRA's system-resource recovery (§3.3.3)
//! needs real file descriptors to close on rollback — and because the
//! paper's stated limitation ("the system does not rollback any changes
//! to the files") must be reproducible: file *contents* written by a
//! malicious request persist; only the descriptor table is repaired.

use std::collections::HashMap;

/// A flat in-memory filesystem.
#[derive(Debug, Default)]
pub struct InMemoryFs {
    files: HashMap<String, Vec<u8>>,
}

impl InMemoryFs {
    /// Creates an empty filesystem.
    #[must_use]
    pub fn new() -> InMemoryFs {
        InMemoryFs::default()
    }

    /// Creates (or truncates) a file with the given contents.
    pub fn create(&mut self, path: impl Into<String>, contents: Vec<u8>) {
        self.files.insert(path.into(), contents);
    }

    /// Whether `path` exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Opens `path`, creating it when absent; returns `false` only when the
    /// path is empty (invalid).
    pub fn open(&mut self, path: &str) -> bool {
        if path.is_empty() {
            return false;
        }
        self.files.entry(path.to_owned()).or_default();
        true
    }

    /// Reads up to `len` bytes starting at `offset`.
    #[must_use]
    pub fn read(&self, path: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        let f = self.files.get(path)?;
        if offset >= f.len() {
            return Some(Vec::new());
        }
        let end = (offset + len).min(f.len());
        Some(f[offset..end].to_vec())
    }

    /// Appends bytes; returns the number written or `None` for a missing
    /// file.
    pub fn append(&mut self, path: &str, data: &[u8]) -> Option<usize> {
        let f = self.files.get_mut(path)?;
        f.extend_from_slice(data);
        Some(data.len())
    }

    /// Full contents of a file.
    #[must_use]
    pub fn contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Number of files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Captures all files, sorted by path for deterministic serialization.
    #[must_use]
    pub fn save_state(&self) -> FsState {
        let mut files: Vec<(String, Vec<u8>)> =
            self.files.iter().map(|(p, c)| (p.clone(), c.clone())).collect();
        files.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        FsState { files }
    }

    /// Replaces all contents with state captured by
    /// [`InMemoryFs::save_state`].
    pub fn restore_state(&mut self, state: &FsState) {
        self.files.clear();
        for (path, contents) in &state.files {
            self.files.insert(path.clone(), contents.clone());
        }
    }
}

/// Complete contents of an [`InMemoryFs`], captured by
/// [`InMemoryFs::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsState {
    /// `(path, contents)` pairs sorted by path.
    pub files: Vec<(String, Vec<u8>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_creates() {
        let mut fs = InMemoryFs::new();
        assert!(!fs.exists("/var/log/httpd"));
        assert!(fs.open("/var/log/httpd"));
        assert!(fs.exists("/var/log/httpd"));
        assert!(!fs.open(""), "empty path rejected");
    }

    #[test]
    fn append_and_read() {
        let mut fs = InMemoryFs::new();
        fs.open("/f");
        assert_eq!(fs.append("/f", b"hello "), Some(6));
        assert_eq!(fs.append("/f", b"world"), Some(5));
        assert_eq!(fs.read("/f", 0, 64).unwrap(), b"hello world");
        assert_eq!(fs.read("/f", 6, 5).unwrap(), b"world");
        assert_eq!(fs.read("/f", 100, 5).unwrap(), b"");
        assert!(fs.read("/missing", 0, 1).is_none());
    }

    #[test]
    fn writes_persist_no_rollback() {
        // INDRA's stated limitation: file contents are not rolled back.
        let mut fs = InMemoryFs::new();
        fs.open("/audit");
        fs.append("/audit", b"malicious request seen");
        // ... service rolls back; nothing happens to the file ...
        assert_eq!(fs.contents("/audit").unwrap(), b"malicious request seen");
    }
}
