#![warn(missing_docs)]
//! # indra-os — the kernel-lite for INDRA's resurrectee cores
//!
//! The paper's testbed ran Red Hat Linux 6.0 and six real daemons; this
//! crate supplies the equivalent *surface* those daemons need, scoped to
//! the evaluation: process creation from IR32 images, a syscall layer
//! (network recv/send, files, fork/kill, sbrk, logging, checkpoint), an
//! in-memory filesystem, per-process network endpoints — and the piece
//! INDRA itself depends on: per-request **resource marks** whose rollback
//! closes post-request descriptors, kills post-request children and
//! reclaims post-request heap pages (§3.3.3) while restoring the saved
//! execution context so the service immediately fetches the next request.
//!
//! Syscalls are serviced host-side (the simulated cores run only user
//! code), the same division of labor Bochs uses for device models.

mod fs;
mod net;
mod os;
mod process;
pub mod syscall;

pub use fs::{FsState, InMemoryFs};
pub use net::{Endpoint, EndpointState, Request, Response};
pub use os::{Os, OsState, SyscallEffect, OS_PAGE_SIZE};
pub use process::{FileHandle, Pid, Process, ProcessState, ResourceMark, ARENA_BASE};
