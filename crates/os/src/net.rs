//! The network front-end model.
//!
//! The paper drives its servers with scripted clients (wget, ftp scripts,
//! mail senders). Here the "network" is a per-process inbox of
//! [`Request`]s and an outbox of [`Response`]s. Requests carry a
//! ground-truth `malicious` tag used only by the evaluation harness to
//! compute detection/recovery statistics — the simulated server and the
//! monitor never see it.
//!
//! A key INDRA property this module preserves: queued requests from
//! well-behaved clients survive service recovery (§2.2 — the request
//! queue lives in the OS, outside the rolled-back application state).

use std::collections::VecDeque;

/// A single inbound service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Monotonic id assigned by the harness.
    pub id: u64,
    /// Raw payload delivered to the server's receive buffer.
    pub data: Vec<u8>,
    /// Ground truth for the evaluation: was this request an exploit?
    pub malicious: bool,
}

/// A response the server sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Id of the request being answered.
    pub request_id: u64,
    /// Response payload.
    pub data: Vec<u8>,
}

/// Per-process network endpoint.
#[derive(Debug, Default)]
pub struct Endpoint {
    inbox: VecDeque<Request>,
    outbox: Vec<Response>,
    delivered: u64,
}

impl Endpoint {
    /// Creates an idle endpoint.
    #[must_use]
    pub fn new() -> Endpoint {
        Endpoint::default()
    }

    /// Queues a request for delivery.
    pub fn push_request(&mut self, req: Request) {
        self.inbox.push_back(req);
    }

    /// Requeues a request at the *front* of the inbox — used to retry a
    /// benign request that faulted on poisoned state after the poisoning
    /// compartment was discarded; it must run again before anything newer.
    pub fn push_front(&mut self, req: Request) {
        self.inbox.push_front(req);
    }

    /// Number of requests waiting.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }

    /// Takes the next request for delivery to the server.
    pub fn next_request(&mut self) -> Option<Request> {
        let r = self.inbox.pop_front();
        if r.is_some() {
            self.delivered += 1;
        }
        r
    }

    /// Records a response sent by the server. Responses to requests whose
    /// connection died (e.g. the malicious client after recovery) are kept
    /// anyway; the harness filters.
    pub fn push_response(&mut self, resp: Response) {
        self.outbox.push(resp);
    }

    /// All responses so far.
    #[must_use]
    pub fn responses(&self) -> &[Response] {
        &self.outbox
    }

    /// Total requests delivered to the server.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Drains responses (harness consumption).
    pub fn take_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.outbox)
    }

    /// Captures the endpoint's queues and delivery counter.
    #[must_use]
    pub fn save_state(&self) -> EndpointState {
        EndpointState {
            inbox: self.inbox.iter().cloned().collect(),
            outbox: self.outbox.clone(),
            delivered: self.delivered,
        }
    }

    /// Restores state captured by [`Endpoint::save_state`].
    pub fn restore_state(&mut self, state: &EndpointState) {
        self.inbox = state.inbox.iter().cloned().collect();
        self.outbox.clone_from(&state.outbox);
        self.delivered = state.delivered;
    }
}

/// Complete mutable state of an [`Endpoint`], captured by
/// [`Endpoint::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointState {
    /// Queued requests, oldest first.
    pub inbox: Vec<Request>,
    /// Responses sent but not yet drained.
    pub outbox: Vec<Response>,
    /// Total requests delivered to the server.
    pub delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery() {
        let mut e = Endpoint::new();
        e.push_request(Request { id: 1, data: b"a".to_vec(), malicious: false });
        e.push_request(Request { id: 2, data: b"b".to_vec(), malicious: true });
        assert_eq!(e.pending(), 2);
        assert_eq!(e.next_request().unwrap().id, 1);
        assert_eq!(e.next_request().unwrap().id, 2);
        assert!(e.next_request().is_none());
        assert_eq!(e.delivered(), 2);
    }

    #[test]
    fn responses_accumulate_and_drain() {
        let mut e = Endpoint::new();
        e.push_response(Response { request_id: 1, data: b"ok".to_vec() });
        assert_eq!(e.responses().len(), 1);
        let taken = e.take_responses();
        assert_eq!(taken.len(), 1);
        assert!(e.responses().is_empty());
    }

    #[test]
    fn queued_requests_survive_independently() {
        // The inbox is OS state: nothing about a service rollback touches it.
        let mut e = Endpoint::new();
        for i in 0..5 {
            e.push_request(Request { id: i, data: vec![], malicious: false });
        }
        let _first = e.next_request();
        // (a rollback happens here in real use)
        assert_eq!(e.pending(), 4, "remaining well-behaved clients still queued");
    }
}
