//! The kernel-lite orchestrator.
//!
//! [`Os`] plays the role of the "full blown Redhat Linux" on the
//! resurrectee side of the paper's testbed, scoped to what the evaluation
//! needs: process creation from an [`Image`], the syscall surface of
//! [`crate::syscall`], the network endpoint, the in-memory filesystem,
//! and — the INDRA-specific part — per-request [`ResourceMark`]s and
//! their rollback (§3.3.3).
//!
//! Syscalls are serviced host-side (the simulated core never runs kernel
//! code), mirroring how Bochs models devices outside the guest. Kernel
//! time is charged to the core as stall cycles.

use std::collections::HashMap;

use indra_analyze::{AppMetadata, PolicyReport};
use indra_isa::Image;
use indra_mem::{PAGE_SHIFT, PAGE_SIZE};
use indra_sim::{LoadError, Machine};

use crate::syscall::*;
use crate::{InMemoryFs, Pid, Process, Request, Response};

/// What a serviced syscall means to the outer INDRA control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallEffect {
    /// Handled; the core has been resumed.
    Continue,
    /// `net_recv` with an empty inbox: the core stays parked until a
    /// request arrives (deliver with [`Os::try_deliver`]).
    BlockedOnRecv {
        /// The blocked process.
        pid: Pid,
    },
    /// A new request was handed to the server — the INDRA request
    /// boundary: the caller must increment the GTS and let the backup
    /// engine know.
    RequestStarted {
        /// The serving process.
        pid: Pid,
        /// The request id.
        request_id: u64,
        /// Ground truth (harness accounting only).
        malicious: bool,
    },
    /// The server answered the current request.
    ResponseSent {
        /// The serving process.
        pid: Pid,
        /// The answered request.
        request_id: u64,
    },
    /// The application asked for a macro checkpoint (hybrid recovery).
    CheckpointRequested {
        /// The requesting process.
        pid: Pid,
    },
    /// The process exited; its core is halted.
    Exited {
        /// The exiting process.
        pid: Pid,
        /// Exit code.
        code: u32,
    },
}

/// The kernel-lite.
#[derive(Debug, Default)]
pub struct Os {
    procs: HashMap<Pid, Process>,
    core_to_pid: HashMap<usize, Pid>,
    next_pid: Pid,
    next_asid: u16,
    fs: InMemoryFs,
    audit: Vec<String>,
    next_request_id: u64,
}

impl Os {
    /// Creates an empty OS.
    #[must_use]
    pub fn new() -> Os {
        Os { next_pid: 1, next_asid: 1, ..Os::default() }
    }

    /// The in-memory filesystem.
    #[must_use]
    pub fn fs(&self) -> &InMemoryFs {
        &self.fs
    }

    /// Mutable filesystem (test/bench fixtures pre-populate files).
    pub fn fs_mut(&mut self) -> &mut InMemoryFs {
        &mut self.fs
    }

    /// The audit log (survives all rollbacks).
    #[must_use]
    pub fn audit_log(&self) -> &[String] {
        &self.audit
    }

    /// Looks up a process.
    #[must_use]
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable process access.
    pub fn process_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs.get_mut(&pid).expect("no such pid")
    }

    /// Pid of the service pinned to `core`.
    #[must_use]
    pub fn pid_on_core(&self, core: usize) -> Option<Pid> {
        self.core_to_pid.get(&core).copied()
    }

    /// Loads `image` as a new service process pinned to `core`, pointing
    /// the core at its entry.
    ///
    /// # Errors
    ///
    /// Propagates [`LoadError`] from the machine's loader.
    pub fn spawn_service(
        &mut self,
        m: &mut Machine,
        core: usize,
        image: &Image,
    ) -> Result<Pid, LoadError> {
        let pid = self.next_pid;
        let asid = self.next_asid;
        self.next_pid += 1;
        self.next_asid += 1;

        m.create_space(asid);
        m.load_image(asid, image)?;
        let c = m.core_mut(core);
        c.set_asid(asid);
        c.set_pc(image.entry);
        c.set_reg(indra_isa::Reg::SP, image.initial_sp);
        c.clear_halt();

        let proc = Process::new(pid, image.name.clone(), asid, core, image.heap_base);
        self.procs.insert(pid, proc);
        self.core_to_pid.insert(core, pid);
        Ok(pid)
    }

    /// Loads `image` like [`Os::spawn_service`], but first derives the
    /// monitor-facing metadata the way the paper's process manager does at
    /// load time (§3.2.2): run the static analyzer over the encoded
    /// binary and, when `strict` is set, keep only the intersection of
    /// the declared policy and what the analysis can justify. Permissive
    /// mode (`strict = false`) trusts the declarations verbatim — the
    /// escape hatch for attack images that must load so the monitor can
    /// catch them dynamically.
    ///
    /// Returns the pid, the metadata to register with the monitor, and
    /// the full static [`PolicyReport`] for the caller's bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates [`LoadError`] from the machine's loader. Static
    /// findings never fail the load: detection stays dynamic.
    pub fn spawn_service_checked(
        &mut self,
        m: &mut Machine,
        core: usize,
        image: &Image,
        strict: bool,
    ) -> Result<(Pid, AppMetadata, PolicyReport), LoadError> {
        let report = indra_analyze::analyze_image(image);
        let meta = if strict { report.tightened.clone() } else { AppMetadata::from_image(image) };
        let pid = self.spawn_service(m, core, image)?;
        Ok((pid, meta, report))
    }

    /// Queues a request for `pid`, returning its id.
    pub fn push_request(&mut self, pid: Pid, data: Vec<u8>, malicious: bool) -> u64 {
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.process_mut(pid).endpoint.push_request(Request { id, data, malicious });
        id
    }

    /// Responses collected for `pid` so far.
    pub fn take_responses(&mut self, pid: Pid) -> Vec<Response> {
        self.process_mut(pid).endpoint.take_responses()
    }

    /// Services the syscall `code` on which `core` is parked.
    ///
    /// # Panics
    ///
    /// Panics if no process is pinned to `core` (OS invariant).
    pub fn handle_syscall(&mut self, m: &mut Machine, core: usize, code: u16) -> SyscallEffect {
        let pid = self.pid_on_core(core).expect("syscall from a core with no process");
        m.core_mut(core).add_stall_cycles(SYSCALL_BASE_COST);
        let a0 = m.core(core).reg(indra_isa::Reg::A0);
        let a1 = m.core(core).reg(indra_isa::Reg::A1);
        let a2 = m.core(core).reg(indra_isa::Reg::A2);

        match code {
            SYS_NET_RECV => {
                if self.process(pid).expect("pid").endpoint.pending() == 0 {
                    self.process_mut(pid).waiting_recv = Some((a0, a1));
                    SyscallEffect::BlockedOnRecv { pid }
                } else {
                    self.process_mut(pid).waiting_recv = Some((a0, a1));
                    self.try_deliver(m, pid).expect("inbox non-empty")
                }
            }
            SYS_NET_SEND => {
                // NIC transmit path: DMA the response out of the service's
                // buffer, paying SDRAM burst time.
                let (data, dma_cycles) =
                    m.dma_read_virtual(self.asid_of(pid), a0, a1, None).unwrap_or_default();
                m.core_mut(core).add_stall_cycles(dma_cycles);
                let p = self.process_mut(pid);
                let request_id = p.current_request.take().unwrap_or(0);
                p.endpoint.push_response(Response { request_id, data });
                p.served += 1;
                m.core_mut(core).finish_syscall(Some(a1));
                SyscallEffect::ResponseSent { pid, request_id }
            }
            SYS_OPEN => {
                let path = self.read_cstring(m, pid, a0);
                let ret = match path {
                    Some(p) if self.fs.open(&p) => self.process_mut(pid).open_fd(p),
                    _ => SYS_ERR,
                };
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_CLOSE => {
                let ok = self.process_mut(pid).close_fd(a0);
                m.core_mut(core).finish_syscall(Some(if ok { 0 } else { SYS_ERR }));
                SyscallEffect::Continue
            }
            SYS_READ => {
                let asid = self.asid_of(pid);
                let ret = {
                    let p = self.process_mut(pid);
                    match p.fds.get_mut(&a0) {
                        Some(h) => {
                            let (path, offset) = (h.path.clone(), h.offset);
                            match self.fs.read(&path, offset, a2 as usize) {
                                Some(data) => {
                                    self.process_mut(pid)
                                        .fds
                                        .get_mut(&a0)
                                        .expect("checked")
                                        .offset += data.len();
                                    if m.write_virtual_bytes(asid, a1, &data) {
                                        data.len() as u32
                                    } else {
                                        SYS_ERR
                                    }
                                }
                                None => SYS_ERR,
                            }
                        }
                        None => SYS_ERR,
                    }
                };
                m.core_mut(core).add_stall_cycles(u64::from(a2) / 4);
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_WRITE => {
                let asid = self.asid_of(pid);
                let data = m.read_virtual_bytes(asid, a1, a2);
                let ret = match (data, self.process(pid).expect("pid").fds.get(&a0)) {
                    (Some(data), Some(h)) => {
                        let path = h.path.clone();
                        self.fs.append(&path, &data).map_or(SYS_ERR, |n| n as u32)
                    }
                    _ => SYS_ERR,
                };
                m.core_mut(core).add_stall_cycles(u64::from(a2) / 4);
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_SBRK => {
                let ret = self.sbrk(m, pid, a0);
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_ARENA => {
                let ret = self.arena_alloc(m, pid, a0);
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_FORK => {
                let child = self.next_pid;
                self.next_pid += 1;
                self.process_mut(pid).children.insert(child);
                m.core_mut(core).finish_syscall(Some(child));
                SyscallEffect::Continue
            }
            SYS_KILL => {
                let existed = self.process_mut(pid).children.remove(&a0);
                m.core_mut(core).finish_syscall(Some(if existed { 0 } else { SYS_ERR }));
                SyscallEffect::Continue
            }
            SYS_LOG => {
                let asid = self.asid_of(pid);
                if let Some(data) = m.read_virtual_bytes(asid, a0, a1.min(256)) {
                    let name = self.process(pid).expect("pid").name.clone();
                    self.audit.push(format!("[{name}] {}", String::from_utf8_lossy(&data)));
                }
                m.core_mut(core).finish_syscall(Some(0));
                SyscallEffect::Continue
            }
            SYS_CHECKPOINT => {
                m.core_mut(core).finish_syscall(Some(0));
                SyscallEffect::CheckpointRequested { pid }
            }
            SYS_CYCLES => {
                let cycles = m.core(core).cycles() as u32;
                m.core_mut(core).finish_syscall(Some(cycles));
                SyscallEffect::Continue
            }
            SYS_RAND => {
                let r = self.process_mut(pid).next_rand();
                m.core_mut(core).finish_syscall(Some(r));
                SyscallEffect::Continue
            }
            SYS_EXIT => {
                // Leave the core halted on the syscall.
                SyscallEffect::Exited { pid, code: a0 }
            }
            SYS_SEEK => {
                let ret = match self.process_mut(pid).fds.get_mut(&a0) {
                    Some(h) => {
                        h.offset = a1 as usize;
                        a1
                    }
                    None => SYS_ERR,
                };
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            SYS_FSIZE => {
                let ret = self
                    .process(pid)
                    .expect("pid")
                    .fds
                    .get(&a0)
                    .and_then(|h| self.fs.contents(&h.path))
                    .map_or(SYS_ERR, |c| c.len() as u32);
                m.core_mut(core).finish_syscall(Some(ret));
                SyscallEffect::Continue
            }
            other => {
                self.audit.push(format!("pid {pid}: unknown syscall {other}"));
                m.core_mut(core).finish_syscall(Some(SYS_ERR));
                SyscallEffect::Continue
            }
        }
    }

    /// Delivers the next queued request to a process blocked in
    /// `net_recv`. Returns the [`SyscallEffect::RequestStarted`] boundary
    /// event, or `None` when the process is not blocked or has no pending
    /// requests.
    pub fn try_deliver(&mut self, m: &mut Machine, pid: Pid) -> Option<SyscallEffect> {
        let (buf, cap) = self.process(pid)?.waiting_recv?;
        let asid = self.asid_of(pid);
        let core = self.process(pid)?.core;

        let req = self.process_mut(pid).endpoint.next_request()?;
        // Kept so the request can be requeued for a retry if it later
        // faults on another compartment's poisoned state.
        self.process_mut(pid).last_delivered = Some(req.clone());
        self.process_mut(pid).waiting_recv = None;

        // Snapshot context *before* completing the syscall: a rollback
        // re-executes `net_recv` and picks up the next request (§3.3).
        let ctx = m.core(core).context();
        self.process_mut(pid).take_mark(ctx, req.id);

        let len = (req.data.len() as u32).min(cap);
        // The NIC's DMA engine (privileged, commanded by the kernel)
        // lands the payload; its SDRAM burst time is the delivery cost.
        let dma_cycles =
            m.dma_write_virtual(asid, buf, &req.data[..len as usize], None).unwrap_or(0);
        m.core_mut(core).add_stall_cycles(dma_cycles);
        m.core_mut(core).finish_syscall(Some(len));
        self.process_mut(pid).current_request = Some(req.id);
        Some(SyscallEffect::RequestStarted { pid, request_id: req.id, malicious: req.malicious })
    }

    /// Rolls back the resource-allocation state of `pid` to its last mark
    /// and restores its execution context on its core (§3.3.3): closes
    /// post-mark descriptors, kills post-mark children, reclaims post-mark
    /// heap pages, resets the break, restores PC/registers.
    ///
    /// Memory *contents* are the backup engine's job, not ours. Returns
    /// `false` when the process has no mark yet.
    pub fn rollback_resources(&mut self, m: &mut Machine, pid: Pid) -> bool {
        let Some(mark) = self.process_mut(pid).mark.clone() else {
            return false;
        };
        let asid = self.asid_of(pid);
        let core = self.process(pid).expect("pid").core;

        let p = self.process_mut(pid);
        p.rollbacks += 1;
        p.current_request = None;
        p.waiting_recv = None;

        // Close descriptors opened after the mark; earlier ones stay open.
        let post: Vec<u32> = p.fds.keys().copied().filter(|fd| !mark.fds.contains(fd)).collect();
        for fd in post {
            p.fds.remove(&fd);
        }
        // Kill children spawned after the mark.
        p.children.retain(|c| mark.children.contains(c));
        // Reclaim heap pages mapped after the mark.
        let reclaim: Vec<(u32, u32)> = p.heap_pages.split_off(mark.heap_pages_len);
        p.brk = mark.brk;
        for (vpn, ppn) in reclaim {
            if let Some(space) = m.space_mut(asid) {
                space.unmap(vpn);
            }
            m.release_service_frame(ppn);
        }

        // Restore the execution context: PC parks on `net_recv` again.
        let ctx = mark.context;
        m.core_mut(core).set_context(ctx);
        m.core_mut(core).clear_halt();
        self.process_mut(pid).waiting_recv = None;
        true
    }

    /// Requeues the most recently delivered request at the *front* of
    /// `pid`'s inbox, so the next `net_recv` picks it up again. Used after
    /// a compartment discard healed the state a benign request faulted
    /// on. Returns `false` when there is nothing to requeue.
    pub fn requeue_front(&mut self, pid: Pid) -> bool {
        let p = self.process_mut(pid);
        match p.last_delivered.take() {
            Some(req) => {
                p.endpoint.push_front(req);
                true
            }
            None => false,
        }
    }

    /// Tears down `pid`'s per-request arena: unmaps every arena page,
    /// returns its frame to the pool and resets the bump cursor. Returns
    /// the released `(vpn, ppn)` pairs so the caller can drop any backup
    /// state keyed by those pages. Called at every request end — response
    /// sent or rollback — because the arena never outlives its request.
    pub fn release_arena(&mut self, m: &mut Machine, pid: Pid) -> Vec<(u32, u32)> {
        let asid = self.asid_of(pid);
        let p = self.process_mut(pid);
        let released = std::mem::take(&mut p.arena_pages);
        p.arena_brk = crate::ARENA_BASE;
        for &(vpn, ppn) in &released {
            if let Some(space) = m.space_mut(asid) {
                space.unmap(vpn);
            }
            m.release_service_frame(ppn);
        }
        released
    }

    /// ASID of `pid`.
    #[must_use]
    pub fn asid_of(&self, pid: Pid) -> u16 {
        self.procs.get(&pid).map(|p| p.asid).expect("no such pid")
    }

    fn arena_alloc(&mut self, m: &mut Machine, pid: Pid, bytes: u32) -> u32 {
        let base = self.process(pid).expect("pid").arena_brk;
        if bytes == 0 {
            return base;
        }
        let asid = self.asid_of(pid);
        let pages = bytes.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let vpn = (base >> PAGE_SHIFT) + i;
            match m.map_fresh_page(asid, vpn, true, true, false) {
                Ok(ppn) => self.process_mut(pid).arena_pages.push((vpn, ppn)),
                Err(_) => return SYS_ERR,
            }
        }
        self.process_mut(pid).arena_brk = base + pages * PAGE_SIZE;
        base
    }

    fn sbrk(&mut self, m: &mut Machine, pid: Pid, bytes: u32) -> u32 {
        let old = self.process(pid).expect("pid").brk;
        if bytes == 0 {
            return old;
        }
        let asid = self.asid_of(pid);
        let new = old.saturating_add(bytes);
        // Map every page in [old, new) not yet mapped.
        let first = old >> PAGE_SHIFT;
        let last = (new - 1) >> PAGE_SHIFT;
        for vpn in first..=last {
            let already = m.space(asid).is_some_and(|s| s.pte(vpn).is_some());
            if already {
                continue;
            }
            match m.map_fresh_page(asid, vpn, true, true, false) {
                Ok(ppn) => self.process_mut(pid).heap_pages.push((vpn, ppn)),
                Err(_) => return SYS_ERR,
            }
        }
        self.process_mut(pid).brk = new;
        old
    }

    fn read_cstring(&self, m: &Machine, pid: Pid, mut addr: u32) -> Option<String> {
        let asid = self.asid_of(pid);
        let mut out = Vec::new();
        for _ in 0..256 {
            let b = m.read_virtual_bytes(asid, addr, 1)?[0];
            if b == 0 {
                return String::from_utf8(out).ok();
            }
            out.push(b);
            addr += 1;
        }
        None
    }

    /// Captures the OS's complete mutable state — every process (including
    /// endpoints and resource marks), core pinning, id counters, the
    /// filesystem and the audit log.
    #[must_use]
    pub fn save_state(&self) -> OsState {
        let mut procs: Vec<_> = self.procs.values().map(Process::save_state).collect();
        procs.sort_unstable_by_key(|p| p.pid);
        let mut core_to_pid: Vec<(usize, Pid)> =
            self.core_to_pid.iter().map(|(c, p)| (*c, *p)).collect();
        core_to_pid.sort_unstable();
        OsState {
            procs,
            core_to_pid,
            next_pid: self.next_pid,
            next_asid: self.next_asid,
            fs: self.fs.save_state(),
            audit: self.audit.clone(),
            next_request_id: self.next_request_id,
        }
    }

    /// Restores state captured by [`Os::save_state`], replacing everything.
    pub fn restore_state(&mut self, state: &OsState) {
        self.procs = state.procs.iter().map(|p| (p.pid, Process::from_state(p))).collect();
        self.core_to_pid = state.core_to_pid.iter().copied().collect();
        self.next_pid = state.next_pid;
        self.next_asid = state.next_asid;
        self.fs.restore_state(&state.fs);
        self.audit.clone_from(&state.audit);
        self.next_request_id = state.next_request_id;
    }
}

/// Complete mutable state of an [`Os`], captured by [`Os::save_state`]
/// for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OsState {
    /// Processes, sorted by pid.
    pub procs: Vec<crate::ProcessState>,
    /// `(core, pid)` pinnings, sorted by core.
    pub core_to_pid: Vec<(usize, Pid)>,
    /// Next pid to assign.
    pub next_pid: Pid,
    /// Next ASID to assign.
    pub next_asid: u16,
    /// Filesystem contents.
    pub fs: crate::FsState,
    /// Audit log lines.
    pub audit: Vec<String>,
    /// Next request id.
    pub next_request_id: u64,
}

/// Bytes-per-page convenience re-export for callers sizing sbrk requests.
pub const OS_PAGE_SIZE: u32 = PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use indra_isa::assemble;
    use indra_sim::{CoreStep, MachineConfig};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        m
    }

    /// Run core 1 until it parks on a syscall / halts, servicing nothing.
    fn run_to_syscall(m: &mut Machine) -> Option<u16> {
        for _ in 0..200_000 {
            match m.step_core_simple(1) {
                CoreStep::Executed => continue,
                CoreStep::Syscall { code } => return Some(code),
                CoreStep::Halted => return None,
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("never reached a syscall");
    }

    /// An echo server: recv into buf, send the same bytes back, repeat.
    const ECHO: &str = "
    main:
        la  s0, buf
    loop:
        mv  a0, s0
        li  a1, 64
        syscall 1        # net_recv
        mv  a2, a0       # len
        mv  a0, s0
        mv  a1, a2
        syscall 2        # net_send
        j loop
    .data
    buf: .space 64
    ";

    #[test]
    fn echo_serves_requests() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble("echo", ECHO).unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();

        // First recv blocks (empty inbox).
        let code = run_to_syscall(&mut m).unwrap();
        assert_eq!(code, SYS_NET_RECV);
        let eff = os.handle_syscall(&mut m, 1, code);
        assert_eq!(eff, SyscallEffect::BlockedOnRecv { pid });

        // Push a request and deliver.
        let rid = os.push_request(pid, b"ping".to_vec(), false);
        let eff = os.try_deliver(&mut m, pid).unwrap();
        assert_eq!(eff, SyscallEffect::RequestStarted { pid, request_id: rid, malicious: false });

        // Server processes and answers.
        let code = run_to_syscall(&mut m).unwrap();
        assert_eq!(code, SYS_NET_SEND);
        let eff = os.handle_syscall(&mut m, 1, code);
        assert_eq!(eff, SyscallEffect::ResponseSent { pid, request_id: rid });
        let resp = os.take_responses(pid);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].data, b"ping");
    }

    #[test]
    fn open_write_read_roundtrip() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "f",
            r#"
        main:
            la a0, path
            syscall 3          # open -> fd
            mv s0, a0
            mv a0, s0
            la a1, msg
            li a2, 5
            syscall 6          # write
            mv a0, s0
            la a1, buf
            li a2, 5
            syscall 5          # read
            mv a0, s0
            syscall 4          # close
            halt
        .data
        path: .asciz "/tmp/x"
        msg:  .ascii "hello"
        buf:  .space 8
        "#,
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        while let Some(code) = run_to_syscall(&mut m) {
            os.handle_syscall(&mut m, 1, code);
        }
        assert_eq!(os.fs().contents("/tmp/x").unwrap(), b"hello");
        let buf = indra_isa::DATA_BASE + 12; // path(7->8 aligned? check via read)
        let _ = buf;
        assert!(os.process(pid).unwrap().fds.is_empty(), "fd closed");
    }

    #[test]
    fn sbrk_maps_and_rollback_reclaims() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "s",
            "
        main:
            la a0, buf
            li a1, 16
            syscall 1          # net_recv (mark boundary)
            li a0, 8192
            syscall 7          # sbrk 2 pages
            syscall 8          # fork a child
            la a0, path
            syscall 3          # open
        spin:
            j spin
        .data
        path: .asciz \"/post\"
        buf: .space 16
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        let code = run_to_syscall(&mut m).unwrap();
        os.handle_syscall(&mut m, 1, code);
        os.push_request(pid, b"x".to_vec(), true);
        os.try_deliver(&mut m, pid).unwrap();

        // run the three resource-acquiring syscalls
        for _ in 0..3 {
            let code = run_to_syscall(&mut m).unwrap();
            os.handle_syscall(&mut m, 1, code);
        }
        {
            let p = os.process(pid).unwrap();
            assert_eq!(p.heap_pages.len(), 2);
            assert_eq!(p.children.len(), 1);
            assert_eq!(p.fds.len(), 1);
        }

        assert!(os.rollback_resources(&mut m, pid));
        let p = os.process(pid).unwrap();
        assert!(p.heap_pages.is_empty(), "post-mark heap reclaimed");
        assert!(p.children.is_empty(), "post-mark child killed");
        assert!(p.fds.is_empty(), "post-mark fd closed");
        assert_eq!(p.rollbacks, 1);

        // The restored PC re-executes net_recv.
        let code = run_to_syscall(&mut m).unwrap();
        assert_eq!(code, SYS_NET_RECV);
    }

    #[test]
    fn arena_is_usable_and_torn_down_per_request() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "arena",
            "
        main:
            la a0, buf
            li a1, 16
            syscall 1          # net_recv (request boundary)
            li a0, 100
            syscall 17         # arena(100) -> page-aligned base
            mv s0, a0
            li t0, 0x77
            sb t0, 0(s0)       # the arena is real memory
            lbu s1, 0(s0)
            li a0, 0
            syscall 17         # arena(0): query cursor = base + 4096
            sub a0, a0, s0
            add a0, a0, s1     # 4096 + 0x77
        spin:
            j spin
        .data
        buf: .space 16
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        let code = run_to_syscall(&mut m).unwrap();
        os.handle_syscall(&mut m, 1, code); // blocks on recv
        os.push_request(pid, b"x".to_vec(), false);
        os.try_deliver(&mut m, pid).unwrap();
        for _ in 0..2 {
            let code = run_to_syscall(&mut m).unwrap();
            assert_eq!(code, SYS_ARENA);
            os.handle_syscall(&mut m, 1, code);
        }
        // Let the arithmetic run; the program then spins.
        for _ in 0..64 {
            m.step_core_simple(1);
        }
        assert_eq!(
            m.core(1).reg(indra_isa::Reg::A0),
            4096 + 0x77,
            "arena block is mapped, writable and page-granular"
        );
        assert_eq!(os.process(pid).unwrap().arena_pages.len(), 1);

        let released = os.release_arena(&mut m, pid);
        assert_eq!(released.len(), 1);
        let p = os.process(pid).unwrap();
        assert!(p.arena_pages.is_empty(), "arena dies with the request");
        assert_eq!(p.arena_brk, crate::ARENA_BASE, "cursor reset");
        let (vpn, _) = released[0];
        assert!(
            m.read_virtual_bytes(p.asid, vpn << PAGE_SHIFT, 1).is_none(),
            "released arena page unmapped"
        );
    }

    #[test]
    fn requeue_front_retries_the_last_delivered_request() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble("echo", ECHO).unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        let code = run_to_syscall(&mut m).unwrap();
        os.handle_syscall(&mut m, 1, code);
        let first = os.push_request(pid, b"one".to_vec(), false);
        os.push_request(pid, b"two".to_vec(), false);
        os.try_deliver(&mut m, pid).unwrap();

        assert!(os.requeue_front(pid), "delivered request requeued");
        assert!(!os.requeue_front(pid), "only once per delivery");
        // The requeued request is first in line again, ahead of "two".
        let p = os.process_mut(pid);
        let next = p.endpoint.next_request().unwrap();
        assert_eq!(next.id, first);
        assert_eq!(next.data, b"one");
    }

    #[test]
    fn pre_mark_fds_survive_rollback() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "s",
            "
        main:
            la a0, path
            syscall 3          # open BEFORE the request boundary
            la a0, buf
            li a1, 16
            syscall 1          # net_recv
            la a0, path2
            syscall 3          # open AFTER the boundary
        spin:
            j spin
        .data
        path:  .asciz \"/pre\"
        path2: .asciz \"/post\"
        buf: .space 16
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        let code = run_to_syscall(&mut m).unwrap(); // open /pre
        os.handle_syscall(&mut m, 1, code);
        let code = run_to_syscall(&mut m).unwrap(); // net_recv
        os.handle_syscall(&mut m, 1, code);
        os.push_request(pid, b"x".to_vec(), true);
        os.try_deliver(&mut m, pid).unwrap();
        let code = run_to_syscall(&mut m).unwrap(); // open /post
        os.handle_syscall(&mut m, 1, code);
        assert_eq!(os.process(pid).unwrap().fds.len(), 2);

        os.rollback_resources(&mut m, pid);
        let p = os.process(pid).unwrap();
        assert_eq!(p.fds.len(), 1, "pre-mark fd stays open");
        assert_eq!(p.fds.values().next().unwrap().path, "/pre");
    }

    #[test]
    fn audit_log_and_rand() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "l",
            "
        main:
            la a0, msg
            li a1, 3
            syscall 10         # log
            syscall 13         # rand
            mv s0, a0
            syscall 13
            bne a0, s0, ok
            halt
        ok:
            li a0, 0
            syscall 14         # exit
        .data
        msg: .ascii \"hey\"
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        let mut exited = false;
        while let Some(code) = run_to_syscall(&mut m) {
            if let SyscallEffect::Exited { pid: p, code: c } = os.handle_syscall(&mut m, 1, code) {
                assert_eq!((p, c), (pid, 0));
                exited = true;
                break;
            }
        }
        assert!(exited, "two rand() calls must differ");
        assert_eq!(os.audit_log().len(), 1);
        assert!(os.audit_log()[0].contains("hey"));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use indra_isa::assemble;
    use indra_sim::{CoreStep, MachineConfig};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        m
    }

    fn drive(m: &mut Machine, os: &mut Os, max: usize) -> Option<u32> {
        for _ in 0..max {
            match m.step_core_simple(1) {
                CoreStep::Executed => continue,
                CoreStep::Syscall { code } => {
                    if let SyscallEffect::Exited { code, .. } = os.handle_syscall(m, 1, code) {
                        return Some(code);
                    }
                }
                CoreStep::Halted => return None,
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("did not settle");
    }

    #[test]
    fn bad_descriptors_return_err() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "fd",
            "
        main:
            li a0, 42          # never-opened fd
            syscall 4          # close -> ERR
            mv s0, a0
            li a0, 42
            la a1, buf
            li a2, 4
            syscall 5          # read -> ERR
            mv s1, a0
            li a0, 42
            la a1, buf
            li a2, 4
            syscall 6          # write -> ERR
            add a0, s0, s1     # both must be ERR (-1): sum = -2
            add a0, a0, a0
            li a0, 0
            syscall 14
        .data
        buf: .space 8
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 100_000), Some(0));
        assert!(os.process(pid).unwrap().fds.is_empty());
    }

    #[test]
    fn read_past_eof_returns_zero_len() {
        let mut m = machine();
        let mut os = Os::new();
        os.fs_mut().create("/short", b"ab".to_vec());
        let img = assemble(
            "eof",
            "
        main:
            la a0, path
            syscall 3          # open
            mv s0, a0
            mv a0, s0
            la a1, buf
            li a2, 16
            syscall 5          # read -> 2
            mv s1, a0
            mv a0, s0
            la a1, buf
            li a2, 16
            syscall 5          # read at EOF -> 0
            add a0, a0, s1     # 2 + 0
            syscall 14
        .data
        path: .asciz \"/short\"
        buf: .space 16
        ",
        )
        .unwrap();
        os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 100_000), Some(2));
    }

    #[test]
    fn sbrk_grows_incrementally_and_zero_queries() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "brk",
            "
        main:
            li a0, 0
            syscall 7          # sbrk(0): query
            mv s0, a0
            li a0, 100
            syscall 7          # grow by 100
            li a0, 0
            syscall 7          # query again
            sub a0, a0, s0     # must be exactly 100
            syscall 14
        ",
        )
        .unwrap();
        let pid = os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 100_000), Some(100));
        // 100 bytes within one fresh page:
        assert_eq!(os.process(pid).unwrap().heap_pages.len(), 1);
    }

    #[test]
    fn heap_is_usable_after_sbrk() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble(
            "heapuse",
            "
        main:
            li a0, 0
            syscall 7
            mv s0, a0          # old break
            li a0, 64
            syscall 7
            li t0, 0x5A
            sb t0, 0(s0)       # store into the new heap
            lbu a0, 0(s0)
            syscall 14
        ",
        )
        .unwrap();
        os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 100_000), Some(0x5A));
    }

    #[test]
    fn unknown_syscall_is_logged_and_survivable() {
        let mut m = machine();
        let mut os = Os::new();
        let img = assemble("u", "main:\n syscall 999\n li a0, 7\n syscall 14\n").unwrap();
        os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 10_000), Some(7));
        assert!(os.audit_log().iter().any(|l| l.contains("unknown syscall")));
    }

    #[test]
    fn open_with_unterminated_path_fails() {
        let mut m = machine();
        let mut os = Os::new();
        // `path` fills a region with no NUL within 256 bytes.
        let img = assemble(
            "p",
            "
        main:
            la a0, path
            syscall 3
            syscall 14
        .data
        path: .byte 65
        big: .space 512
        ",
        )
        .unwrap();
        // Overwrite the data so there is no terminator for 256+ bytes.
        let mut img = img;
        let seg = img.segments.iter_mut().find(|s| s.name == ".data").unwrap();
        for b in seg.data.iter_mut() {
            *b = b'A';
        }
        os.spawn_service(&mut m, 1, &img).unwrap();
        assert_eq!(drive(&mut m, &mut os, 10_000), Some(SYS_ERR));
    }
}

#[cfg(test)]
mod seek_tests {
    use super::*;
    use indra_isa::assemble;
    use indra_sim::{CoreStep, MachineConfig};

    #[test]
    fn seek_and_fsize() {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        let mut os = Os::new();
        os.fs_mut().create("/data", b"abcdefgh".to_vec());
        let img = assemble(
            "sk",
            "
        main:
            la a0, path
            syscall 3           # open
            mv s0, a0
            mv a0, s0
            syscall 16          # fsize -> 8
            mv s1, a0
            mv a0, s0
            li a1, 6
            syscall 15          # seek to 6
            mv a0, s0
            la a1, buf
            li a2, 8
            syscall 5           # read -> 2 ('gh')
            add a0, a0, s1      # 2 + 8
            syscall 14
        .data
        path: .asciz \"/data\"
        buf: .space 8
        ",
        )
        .unwrap();
        os.spawn_service(&mut m, 1, &img).unwrap();
        let mut exit = None;
        for _ in 0..100_000 {
            match m.step_core_simple(1) {
                CoreStep::Executed => {}
                CoreStep::Syscall { code } => {
                    if let SyscallEffect::Exited { code, .. } = os.handle_syscall(&mut m, 1, code) {
                        exit = Some(code);
                        break;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(exit, Some(10));
        // Bad fd paths:
        assert_eq!(os.process_mut(1).fds.len(), 1);
    }

    #[test]
    fn seek_bad_fd_errors() {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        let mut os = Os::new();
        let img =
            assemble("skb", "main:\n li a0, 99\n li a1, 4\n syscall 15\n syscall 14\n").unwrap();
        os.spawn_service(&mut m, 1, &img).unwrap();
        let mut exit = None;
        for _ in 0..10_000 {
            match m.step_core_simple(1) {
                CoreStep::Executed => {}
                CoreStep::Syscall { code } => {
                    if let SyscallEffect::Exited { code, .. } = os.handle_syscall(&mut m, 1, code) {
                        exit = Some(code);
                        break;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(exit, Some(SYS_ERR));
    }
}
