//! Process objects and the per-request resource snapshot.
//!
//! INDRA's recovery restores three kinds of state (§3.3): memory (the
//! delta engine in `indra-core`), the execution context (PC + registers),
//! and the **system resource allocation state** — this module's job.
//! At each request boundary the OS records a [`ResourceMark`]; on
//! rollback, resources acquired after the mark are revoked: files opened
//! since are closed, children spawned since are killed, heap pages mapped
//! since are reclaimed. Files opened *before* the mark stay open.

use std::collections::{BTreeMap, BTreeSet};

use indra_sim::CpuContext;

use crate::{Endpoint, Request};

/// Process identifier.
pub type Pid = u32;

/// Base virtual address of the per-request arena — between the heap
/// (which grows up from the image's break) and the stack (which sits
/// just under [`indra_isa::STACK_TOP`]).
pub const ARENA_BASE: u32 = 0x5000_0000;

/// An open-file handle (flat offset cursor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileHandle {
    /// Filesystem path.
    pub path: String,
    /// Read cursor.
    pub offset: usize,
}

/// Snapshot of a process's resource allocation at a request boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceMark {
    /// Descriptors open at the mark.
    pub fds: BTreeSet<u32>,
    /// Children alive at the mark.
    pub children: BTreeSet<Pid>,
    /// Program break at the mark.
    pub brk: u32,
    /// How many heap pages were mapped at the mark.
    pub heap_pages_len: usize,
    /// Execution context to restore (PC parked on the `net_recv` syscall,
    /// so a restored process immediately fetches the next request).
    pub context: CpuContext,
    /// Request id the mark precedes (diagnostics).
    pub request_id: u64,
}

/// One service process.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Program name (diagnostics, audit log).
    pub name: String,
    /// Address-space id.
    pub asid: u16,
    /// The core this service is pinned to.
    pub core: usize,
    /// Current program break.
    pub brk: u32,
    /// Heap pages mapped via `sbrk`, in mapping order: `(vpn, ppn)`.
    pub heap_pages: Vec<(u32, u32)>,
    /// Open descriptors.
    pub fds: BTreeMap<u32, FileHandle>,
    /// Next descriptor number.
    pub next_fd: u32,
    /// Live child pids.
    pub children: BTreeSet<Pid>,
    /// Deterministic per-process RNG state (xorshift).
    pub rng: u64,
    /// Pending blocked `net_recv`: `(buf, cap)`.
    pub waiting_recv: Option<(u32, u32)>,
    /// The request currently being processed.
    pub current_request: Option<u64>,
    /// Resource snapshot at the last request boundary.
    pub mark: Option<ResourceMark>,
    /// This process's network endpoint.
    pub endpoint: Endpoint,
    /// Requests fully served (responses sent).
    pub served: u64,
    /// Times this process was rolled back.
    pub rollbacks: u64,
    /// Copy of the most recently delivered request, kept so a benign
    /// request that faulted on poisoned state can be requeued for a
    /// retry after the poisoning compartment is discarded.
    pub last_delivered: Option<Request>,
    /// Per-request arena pages mapped via `sys_arena`, in mapping order:
    /// `(vpn, ppn)`. Torn down at every request boundary.
    pub arena_pages: Vec<(u32, u32)>,
    /// Arena bump cursor (next allocation's base virtual address).
    pub arena_brk: u32,
}

impl Process {
    /// Creates a fresh process bound to `core` with address space `asid`.
    #[must_use]
    pub fn new(pid: Pid, name: impl Into<String>, asid: u16, core: usize, brk: u32) -> Process {
        Process {
            pid,
            name: name.into(),
            asid,
            core,
            brk,
            heap_pages: Vec::new(),
            fds: BTreeMap::new(),
            next_fd: 3, // 0/1/2 conventionally reserved
            children: BTreeSet::new(),
            rng: u64::from(pid).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            waiting_recv: None,
            current_request: None,
            mark: None,
            endpoint: Endpoint::new(),
            served: 0,
            rollbacks: 0,
            last_delivered: None,
            arena_pages: Vec::new(),
            arena_brk: ARENA_BASE,
        }
    }

    /// Allocates a descriptor for `path`.
    pub fn open_fd(&mut self, path: impl Into<String>) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, FileHandle { path: path.into(), offset: 0 });
        fd
    }

    /// Closes `fd`, returning whether it existed.
    pub fn close_fd(&mut self, fd: u32) -> bool {
        self.fds.remove(&fd).is_some()
    }

    /// Takes a resource snapshot ahead of processing `request_id`.
    pub fn take_mark(&mut self, context: CpuContext, request_id: u64) {
        self.mark = Some(ResourceMark {
            fds: self.fds.keys().copied().collect(),
            children: self.children.clone(),
            brk: self.brk,
            heap_pages_len: self.heap_pages.len(),
            context,
            request_id,
        });
    }

    /// Next deterministic pseudo-random value.
    pub fn next_rand(&mut self) -> u32 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 16) as u32
    }

    /// Captures the process's complete state.
    #[must_use]
    pub fn save_state(&self) -> ProcessState {
        ProcessState {
            pid: self.pid,
            name: self.name.clone(),
            asid: self.asid,
            core: self.core,
            brk: self.brk,
            heap_pages: self.heap_pages.clone(),
            fds: self.fds.iter().map(|(fd, h)| (*fd, h.clone())).collect(),
            next_fd: self.next_fd,
            children: self.children.iter().copied().collect(),
            rng: self.rng,
            waiting_recv: self.waiting_recv,
            current_request: self.current_request,
            mark: self.mark.clone(),
            endpoint: self.endpoint.save_state(),
            served: self.served,
            rollbacks: self.rollbacks,
            last_delivered: self.last_delivered.clone(),
            arena_pages: self.arena_pages.clone(),
            arena_brk: self.arena_brk,
        }
    }

    /// Rebuilds a process from state captured by [`Process::save_state`].
    #[must_use]
    pub fn from_state(state: &ProcessState) -> Process {
        let mut endpoint = Endpoint::new();
        endpoint.restore_state(&state.endpoint);
        Process {
            pid: state.pid,
            name: state.name.clone(),
            asid: state.asid,
            core: state.core,
            brk: state.brk,
            heap_pages: state.heap_pages.clone(),
            fds: state.fds.iter().map(|(fd, h)| (*fd, h.clone())).collect(),
            next_fd: state.next_fd,
            children: state.children.iter().copied().collect(),
            rng: state.rng,
            waiting_recv: state.waiting_recv,
            current_request: state.current_request,
            mark: state.mark.clone(),
            endpoint,
            served: state.served,
            rollbacks: state.rollbacks,
            last_delivered: state.last_delivered.clone(),
            arena_pages: state.arena_pages.clone(),
            arena_brk: state.arena_brk,
        }
    }
}

/// Complete state of a [`Process`], captured by [`Process::save_state`]
/// for the durable-checkpoint subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessState {
    /// Process id.
    pub pid: Pid,
    /// Program name.
    pub name: String,
    /// Address-space id.
    pub asid: u16,
    /// Pinned core.
    pub core: usize,
    /// Current program break.
    pub brk: u32,
    /// Heap pages in mapping order: `(vpn, ppn)`.
    pub heap_pages: Vec<(u32, u32)>,
    /// Open descriptors, sorted by descriptor number.
    pub fds: Vec<(u32, FileHandle)>,
    /// Next descriptor number.
    pub next_fd: u32,
    /// Live child pids, sorted.
    pub children: Vec<Pid>,
    /// Per-process RNG state.
    pub rng: u64,
    /// Pending blocked `net_recv`: `(buf, cap)`.
    pub waiting_recv: Option<(u32, u32)>,
    /// The request currently being processed.
    pub current_request: Option<u64>,
    /// Resource snapshot at the last request boundary.
    pub mark: Option<ResourceMark>,
    /// Network endpoint queues.
    pub endpoint: crate::EndpointState,
    /// Requests fully served.
    pub served: u64,
    /// Times this process was rolled back.
    pub rollbacks: u64,
    /// Copy of the most recently delivered request.
    pub last_delivered: Option<Request>,
    /// Per-request arena pages: `(vpn, ppn)` in mapping order.
    pub arena_pages: Vec<(u32, u32)>,
    /// Arena bump cursor.
    pub arena_brk: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fds_allocate_monotonically() {
        let mut p = Process::new(1, "t", 1, 0, 0x2000_0000);
        let a = p.open_fd("/a");
        let b = p.open_fd("/b");
        assert_eq!((a, b), (3, 4));
        assert!(p.close_fd(a));
        assert!(!p.close_fd(a));
        let c = p.open_fd("/c");
        assert_eq!(c, 5, "fds are not recycled");
    }

    #[test]
    fn mark_captures_resources() {
        let mut p = Process::new(1, "t", 1, 0, 0x2000_0000);
        p.open_fd("/pre");
        p.children.insert(9);
        p.take_mark(CpuContext::default(), 42);
        p.open_fd("/post");
        let m = p.mark.as_ref().unwrap();
        assert_eq!(m.fds.len(), 1);
        assert_eq!(m.request_id, 42);
        assert!(m.children.contains(&9));
        assert_eq!(p.fds.len(), 2);
    }

    #[test]
    fn rng_is_deterministic_per_pid() {
        let mut a = Process::new(7, "a", 1, 0, 0);
        let mut b = Process::new(7, "b", 2, 1, 0);
        assert_eq!(a.next_rand(), b.next_rand());
        let mut c = Process::new(8, "c", 3, 0, 0);
        assert_ne!(a.next_rand(), c.next_rand());
    }
}
