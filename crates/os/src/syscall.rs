//! The system-call ABI between IR32 service programs and the kernel-lite.
//!
//! The syscall code is the immediate of the `syscall` instruction;
//! arguments are taken from `a0`–`a3` and the result is returned in `a0`.
//! `net_recv` is special: it is INDRA's **request boundary** — the paper
//! has the server application issue a GTS-incrementing system call when a
//! new network request arrives (§3.3.1), and this is that call.

/// `a0 = net_recv(buf: a0, cap: a1)` → request length; blocks while the
/// inbox is empty. Marks the per-request checkpoint boundary.
pub const SYS_NET_RECV: u16 = 1;
/// `a0 = net_send(buf: a0, len: a1)` → bytes sent. Completes the current
/// request from the harness's point of view.
pub const SYS_NET_SEND: u16 = 2;
/// `a0 = open(path: a0 /* NUL-terminated */)` → fd, or `u32::MAX` on error.
pub const SYS_OPEN: u16 = 3;
/// `a0 = close(fd: a0)` → 0, or `u32::MAX` for a bad fd.
pub const SYS_CLOSE: u16 = 4;
/// `a0 = read(fd: a0, buf: a1, len: a2)` → bytes read.
pub const SYS_READ: u16 = 5;
/// `a0 = write(fd: a0, buf: a1, len: a2)` → bytes written (appends).
pub const SYS_WRITE: u16 = 6;
/// `a0 = sbrk(bytes: a0)` → previous break, or `u32::MAX` when out of
/// memory. New pages are tracked and reclaimed on rollback.
pub const SYS_SBRK: u16 = 7;
/// `a0 = fork()` → child pid. The child is a resource-tracking record
/// (INDRA kills post-checkpoint children on rollback, §3.3.3).
pub const SYS_FORK: u16 = 8;
/// `a0 = kill(pid: a0)` → 0 or `u32::MAX`.
pub const SYS_KILL: u16 = 9;
/// `a0 = log(buf: a0, len: a1)` → 0. Appends to the audit log, which
/// survives rollback (the paper keeps malicious-request logs for audit).
pub const SYS_LOG: u16 = 10;
/// `a0 = checkpoint()` → 0. Requests a macro application checkpoint
/// (hybrid recovery, Fig. 8).
pub const SYS_CHECKPOINT: u16 = 11;
/// `a0 = cycles()` → low 32 bits of this core's cycle counter.
pub const SYS_CYCLES: u16 = 12;
/// `a0 = rand()` → deterministic per-process pseudo-random u32.
pub const SYS_RAND: u16 = 13;
/// `exit(code: a0)` — terminates the process (halts the core).
pub const SYS_EXIT: u16 = 14;
/// `a0 = seek(fd: a0, offset: a1)` → new cursor, or `u32::MAX` for a bad
/// fd.
pub const SYS_SEEK: u16 = 15;
/// `a0 = fsize(fd: a0)` → file length in bytes, or `u32::MAX`.
pub const SYS_FSIZE: u16 = 16;
/// `a0 = arena(bytes: a0)` → base address of a fresh per-request arena
/// block (whole pages), `arena(0)` queries the cursor, `u32::MAX` when
/// out of memory. The whole arena is torn down at the end of the request
/// (response sent *or* rollback) — it is the compartment-private heap.
pub const SYS_ARENA: u16 = 17;

/// Fixed kernel-entry overhead charged to the core per syscall, in cycles
/// (mode switch, dispatch). Data-movement costs are charged separately.
pub const SYSCALL_BASE_COST: u64 = 150;

/// Returned by fallible syscalls on error.
pub const SYS_ERR: u32 = u32::MAX;

/// Human-readable name for a syscall code (diagnostics, audit log).
#[must_use]
pub fn syscall_name(code: u16) -> &'static str {
    match code {
        SYS_NET_RECV => "net_recv",
        SYS_NET_SEND => "net_send",
        SYS_OPEN => "open",
        SYS_CLOSE => "close",
        SYS_READ => "read",
        SYS_WRITE => "write",
        SYS_SBRK => "sbrk",
        SYS_FORK => "fork",
        SYS_KILL => "kill",
        SYS_LOG => "log",
        SYS_CHECKPOINT => "checkpoint",
        SYS_CYCLES => "cycles",
        SYS_RAND => "rand",
        SYS_EXIT => "exit",
        SYS_SEEK => "seek",
        SYS_FSIZE => "fsize",
        SYS_ARENA => "arena",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_all_codes() {
        for code in 1..=17 {
            assert_ne!(syscall_name(code), "unknown", "code {code} unnamed");
        }
        assert_eq!(syscall_name(999), "unknown");
    }
}
