//! Wire codec for [`SystemState`] — every field of the frozen system in
//! a fixed, versioned order.
//!
//! One deliberate split: the physical page frames
//! (`state.machine.phys.frames`) are **not** part of the blob this
//! module produces. They dominate the snapshot's size and are the only
//! part worth delta-journaling, so the snapshot and journal layers
//! handle them separately at page granularity; everything else — cores,
//! caches, TLBs, DRAM row state, OS tables, monitor shadow stacks,
//! scheme bitvectors, the run report — is small and travels as one
//! "small state" blob, rewritten in full by every journal record.
//!
//! Serialization is deterministic: the state structs already hold their
//! maps as sorted vectors, and this codec adds no iteration over
//! unordered containers. Equal states encode to identical bytes.

use indra_core::AppMetadata;
use indra_core::{
    DeltaPageState, DeltaProcState, DeltaState, Detection, FailureCause, HybridControllerState,
    HybridStats, InFlightState, MacroCheckpointState, MonitorAppState, MonitorState, MonitorStats,
    PageCkptProcState, PageCkptState, PolicyStats, RecoveryLevel, RequestSample, RunReport,
    SchemeState, SchemeStats, SealedCompartment, ShadowFrameState, SystemState, UndoEntryState,
    UndoLogState, Violation, ViolationKind,
};
use indra_mem::{
    CacheLineState, CacheState, CacheStats, CoreMemState, DramState, DramStats,
    FrameAllocatorState, PhysMemState, TlbEntryState, TlbState, TlbStats,
};
use indra_os::{
    EndpointState, FileHandle, FsState, OsState, ProcessState, Request, ResourceMark, Response,
};
use indra_sim::{
    CamState, CamStats, CoreState, CpuContext, FifoState, FifoStats, MachineState, PhysRange, Pte,
    SpaceState, StampedEvent, TraceEvent, WatchdogCoreState, WatchdogState, WatchdogStats,
};

use crate::{PersistError, WireReader, WireResult, WireWriter};

/// Encodes everything except the physical page frames.
#[must_use]
pub fn encode_small_state(state: &SystemState) -> Vec<u8> {
    let mut w = WireWriter::new();
    enc_machine(&mut w, &state.machine);
    enc_os(&mut w, &state.os);
    enc_monitor(&mut w, &state.monitor);
    enc_scheme(&mut w, &state.scheme);
    w.seq(state.hybrids.len());
    for (core, h) in &state.hybrids {
        w.usize(*core);
        enc_hybrid(&mut w, h);
    }
    w.seq(state.macro_ckpts.len());
    for (core, c) in &state.macro_ckpts {
        w.usize(*core);
        enc_macro_ckpt(&mut w, c);
    }
    w.seq(state.in_flight.len());
    for (core, i) in &state.in_flight {
        w.usize(*core);
        w.u64(i.request_id);
        w.bool(i.malicious);
        w.u64(i.start_cycles);
        w.u64(i.start_retired);
    }
    w.seq(state.blocked.len());
    for &(core, b) in &state.blocked {
        w.usize(core);
        w.bool(b);
    }
    enc_report(&mut w, &state.report);
    w.finish()
}

/// Encodes the small state as named per-section byte blobs, in the same
/// order and with the exact field walks of [`encode_small_state`]. The
/// replica layer's `StateDigest` hashes each section independently so a
/// divergence report can name *which* section disagreed; concatenating
/// the blobs reproduces `encode_small_state`'s output byte for byte.
#[must_use]
pub fn encode_state_sections(state: &SystemState) -> Vec<(&'static str, Vec<u8>)> {
    fn section(f: impl FnOnce(&mut WireWriter)) -> Vec<u8> {
        let mut w = WireWriter::new();
        f(&mut w);
        w.finish()
    }
    vec![
        ("machine", section(|w| enc_machine(w, &state.machine))),
        ("os", section(|w| enc_os(w, &state.os))),
        ("monitor", section(|w| enc_monitor(w, &state.monitor))),
        ("scheme", section(|w| enc_scheme(w, &state.scheme))),
        (
            "hybrids",
            section(|w| {
                w.seq(state.hybrids.len());
                for (core, h) in &state.hybrids {
                    w.usize(*core);
                    enc_hybrid(w, h);
                }
            }),
        ),
        (
            "macros",
            section(|w| {
                w.seq(state.macro_ckpts.len());
                for (core, c) in &state.macro_ckpts {
                    w.usize(*core);
                    enc_macro_ckpt(w, c);
                }
            }),
        ),
        (
            "in_flight",
            section(|w| {
                w.seq(state.in_flight.len());
                for (core, i) in &state.in_flight {
                    w.usize(*core);
                    w.u64(i.request_id);
                    w.bool(i.malicious);
                    w.u64(i.start_cycles);
                    w.u64(i.start_retired);
                }
            }),
        ),
        (
            "blocked",
            section(|w| {
                w.seq(state.blocked.len());
                for &(core, b) in &state.blocked {
                    w.usize(core);
                    w.bool(b);
                }
            }),
        ),
        ("report", section(|w| enc_report(w, &state.report))),
    ]
}

/// Decodes a blob written by [`encode_small_state`]. The returned state
/// has an **empty** physical frame table — the caller merges the frames
/// it recovered from the snapshot + journal into
/// `state.machine.phys.frames` before injecting.
///
/// # Errors
///
/// Any truncation, unknown enum tag or trailing garbage is a typed
/// [`PersistError`]; this function never panics on hostile input.
pub fn decode_small_state(bytes: &[u8]) -> WireResult<SystemState> {
    let mut r = WireReader::new(bytes);
    let machine = dec_machine(&mut r)?;
    let os = dec_os(&mut r)?;
    let monitor = dec_monitor(&mut r)?;
    let scheme = dec_scheme(&mut r)?;
    let n = r.seq(1, "hybrids")?;
    let mut hybrids = Vec::with_capacity(n);
    for _ in 0..n {
        let core = r.usize("hybrid core")?;
        hybrids.push((core, dec_hybrid(&mut r)?));
    }
    let n = r.seq(1, "macro checkpoints")?;
    let mut macro_ckpts = Vec::with_capacity(n);
    for _ in 0..n {
        let core = r.usize("macro core")?;
        macro_ckpts.push((core, dec_macro_ckpt(&mut r)?));
    }
    let n = r.seq(1, "in-flight")?;
    let mut in_flight = Vec::with_capacity(n);
    for _ in 0..n {
        let core = r.usize("in-flight core")?;
        in_flight.push((
            core,
            InFlightState {
                request_id: r.u64("in-flight id")?,
                malicious: r.bool("in-flight tag")?,
                start_cycles: r.u64("in-flight cycles")?,
                start_retired: r.u64("in-flight retired")?,
            },
        ));
    }
    let n = r.seq(1, "blocked")?;
    let mut blocked = Vec::with_capacity(n);
    for _ in 0..n {
        let core = r.usize("blocked core")?;
        blocked.push((core, r.bool("blocked flag")?));
    }
    let report = dec_report(&mut r)?;
    r.expect_exhausted("small state trailing bytes")?;
    Ok(SystemState {
        machine,
        os,
        monitor,
        scheme,
        hybrids,
        macro_ckpts,
        in_flight,
        blocked,
        report,
    })
}

// ---- machine ---------------------------------------------------------

fn enc_machine(w: &mut WireWriter, m: &MachineState) {
    w.seq(m.cores.len());
    for c in &m.cores {
        enc_core(w, c);
    }
    w.seq(m.mems.len());
    for mem in &m.mems {
        enc_cache(w, &mem.il1);
        enc_cache(w, &mem.dl1);
        enc_cache(w, &mem.l2);
        enc_tlb(w, &mem.itlb);
        enc_tlb(w, &mem.dtlb);
    }
    w.seq(m.cams.len());
    for cam in &m.cams {
        w.seq(cam.entries.len());
        for &(page, stamp) in &cam.entries {
            w.u32(page);
            w.u64(stamp);
        }
        w.u64(cam.stamp);
        w.u64(cam.stats.lookups);
        w.u64(cam.stats.hits);
    }
    w.seq(m.dram.open_rows.len());
    for &row in &m.dram.open_rows {
        w.opt_u32(row);
    }
    w.u64(m.dram.stats.accesses);
    w.u64(m.dram.stats.row_hits);
    w.u64(m.dram.stats.row_closed);
    w.u64(m.dram.stats.row_conflicts);
    w.u64(m.dram.stats.bytes);
    // phys frames intentionally absent — see module docs.
    w.seq(m.watchdog.cores.len());
    for wc in &m.watchdog.cores {
        w.bool(wc.privileged);
        w.seq(wc.ranges.len());
        for range in &wc.ranges {
            w.u32(range.base);
            w.u32(range.end);
        }
    }
    w.u64(m.watchdog.stats.checks);
    w.u64(m.watchdog.stats.violations);
    w.seq(m.fifo.queue.len());
    for ev in &m.fifo.queue {
        enc_event(w, ev);
    }
    w.u64(m.fifo.stats.pushes);
    w.u64(m.fifo.stats.pops);
    w.u64(m.fifo.stats.full_stalls);
    w.usize(m.fifo.stats.high_water);
    w.seq(m.spaces.len());
    for s in &m.spaces {
        w.u16(s.asid);
        w.seq(s.pages.len());
        for &(vpn, pte) in &s.pages {
            w.u32(vpn);
            w.u32(pte.ppn);
            w.bool(pte.read);
            w.bool(pte.write);
            w.bool(pte.execute);
        }
    }
    enc_frame_alloc(w, &m.rts_frames);
    enc_frame_alloc(w, &m.backup_frames);
    enc_frame_alloc(w, &m.service_frames);
    w.bool(m.monitoring);
    w.bool(m.booted);
}

fn dec_machine(r: &mut WireReader<'_>) -> WireResult<MachineState> {
    let n = r.seq(1, "cores")?;
    let mut cores = Vec::with_capacity(n);
    for _ in 0..n {
        cores.push(dec_core(r)?);
    }
    let n = r.seq(1, "core memories")?;
    let mut mems = Vec::with_capacity(n);
    for _ in 0..n {
        mems.push(CoreMemState {
            il1: dec_cache(r)?,
            dl1: dec_cache(r)?,
            l2: dec_cache(r)?,
            itlb: dec_tlb(r)?,
            dtlb: dec_tlb(r)?,
        });
    }
    let n = r.seq(1, "cams")?;
    let mut cams = Vec::with_capacity(n);
    for _ in 0..n {
        let e = r.seq(12, "cam entries")?;
        let mut entries = Vec::with_capacity(e);
        for _ in 0..e {
            entries.push((r.u32("cam page")?, r.u64("cam stamp")?));
        }
        cams.push(CamState {
            entries,
            stamp: r.u64("cam clock")?,
            stats: CamStats { lookups: r.u64("cam lookups")?, hits: r.u64("cam hits")? },
        });
    }
    let n = r.seq(1, "dram rows")?;
    let mut open_rows = Vec::with_capacity(n);
    for _ in 0..n {
        open_rows.push(r.opt_u32("dram row")?);
    }
    let dram = DramState {
        open_rows,
        stats: DramStats {
            accesses: r.u64("dram accesses")?,
            row_hits: r.u64("dram row hits")?,
            row_closed: r.u64("dram row closed")?,
            row_conflicts: r.u64("dram row conflicts")?,
            bytes: r.u64("dram bytes")?,
        },
    };
    let n = r.seq(1, "watchdog cores")?;
    let mut wcores = Vec::with_capacity(n);
    for _ in 0..n {
        let privileged = r.bool("watchdog privileged")?;
        let m = r.seq(8, "watchdog ranges")?;
        let mut ranges = Vec::with_capacity(m);
        for _ in 0..m {
            ranges.push(PhysRange { base: r.u32("range base")?, end: r.u32("range end")? });
        }
        wcores.push(WatchdogCoreState { privileged, ranges });
    }
    let watchdog = WatchdogState {
        cores: wcores,
        stats: WatchdogStats {
            checks: r.u64("watchdog checks")?,
            violations: r.u64("watchdog violations")?,
        },
    };
    let n = r.seq(1, "fifo queue")?;
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        queue.push(dec_event(r)?);
    }
    let fifo = FifoState {
        queue,
        stats: FifoStats {
            pushes: r.u64("fifo pushes")?,
            pops: r.u64("fifo pops")?,
            full_stalls: r.u64("fifo stalls")?,
            high_water: r.usize("fifo high water")?,
        },
    };
    let n = r.seq(1, "spaces")?;
    let mut spaces = Vec::with_capacity(n);
    for _ in 0..n {
        let asid = r.u16("space asid")?;
        let m = r.seq(11, "space pages")?;
        let mut pages = Vec::with_capacity(m);
        for _ in 0..m {
            let vpn = r.u32("pte vpn")?;
            pages.push((
                vpn,
                Pte {
                    ppn: r.u32("pte ppn")?,
                    read: r.bool("pte read")?,
                    write: r.bool("pte write")?,
                    execute: r.bool("pte execute")?,
                },
            ));
        }
        spaces.push(SpaceState { asid, pages });
    }
    let rts_frames = dec_frame_alloc(r)?;
    let backup_frames = dec_frame_alloc(r)?;
    let service_frames = dec_frame_alloc(r)?;
    Ok(MachineState {
        cores,
        mems,
        cams,
        dram,
        phys: PhysMemState::default(),
        watchdog,
        fifo,
        spaces,
        rts_frames,
        backup_frames,
        service_frames,
        monitoring: r.bool("monitoring")?,
        booted: r.bool("booted")?,
    })
}

fn enc_core(w: &mut WireWriter, c: &CoreState) {
    enc_context(w, &c.ctx);
    w.u16(c.asid);
    w.bool(c.halted);
    w.bool(c.stalled);
    w.u64(c.cycles);
    w.u64(c.retired);
    w.u32(c.group);
    w.opt_u32(c.last_fetch_line);
}

fn dec_core(r: &mut WireReader<'_>) -> WireResult<CoreState> {
    Ok(CoreState {
        ctx: dec_context(r)?,
        asid: r.u16("core asid")?,
        halted: r.bool("core halted")?,
        stalled: r.bool("core stalled")?,
        cycles: r.u64("core cycles")?,
        retired: r.u64("core retired")?,
        group: r.u32("core group")?,
        last_fetch_line: r.opt_u32("core fetch line")?,
    })
}

fn enc_context(w: &mut WireWriter, ctx: &CpuContext) {
    for reg in &ctx.regs {
        w.u32(*reg);
    }
    w.u32(ctx.pc);
}

fn dec_context(r: &mut WireReader<'_>) -> WireResult<CpuContext> {
    let mut ctx = CpuContext::default();
    for reg in &mut ctx.regs {
        *reg = r.u32("context reg")?;
    }
    ctx.pc = r.u32("context pc")?;
    Ok(ctx)
}

fn enc_cache(w: &mut WireWriter, c: &CacheState) {
    w.seq(c.lines.len());
    for line in &c.lines {
        w.u32(line.tag);
        w.bool(line.valid);
        w.bool(line.dirty);
        w.u64(line.lru);
    }
    w.u64(c.stamp);
    w.u64(c.stats.accesses);
    w.u64(c.stats.misses);
    w.u64(c.stats.writebacks);
}

fn dec_cache(r: &mut WireReader<'_>) -> WireResult<CacheState> {
    let n = r.seq(14, "cache lines")?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        lines.push(CacheLineState {
            tag: r.u32("line tag")?,
            valid: r.bool("line valid")?,
            dirty: r.bool("line dirty")?,
            lru: r.u64("line lru")?,
        });
    }
    Ok(CacheState {
        lines,
        stamp: r.u64("cache stamp")?,
        stats: CacheStats {
            accesses: r.u64("cache accesses")?,
            misses: r.u64("cache misses")?,
            writebacks: r.u64("cache writebacks")?,
        },
    })
}

fn enc_tlb(w: &mut WireWriter, t: &TlbState) {
    w.seq(t.entries.len());
    for e in &t.entries {
        w.u32(e.vpn);
        w.u16(e.asid);
        w.bool(e.valid);
        w.u64(e.lru);
    }
    w.u64(t.stamp);
    w.u64(t.stats.accesses);
    w.u64(t.stats.misses);
}

fn dec_tlb(r: &mut WireReader<'_>) -> WireResult<TlbState> {
    let n = r.seq(15, "tlb entries")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(TlbEntryState {
            vpn: r.u32("tlb vpn")?,
            asid: r.u16("tlb asid")?,
            valid: r.bool("tlb valid")?,
            lru: r.u64("tlb lru")?,
        });
    }
    Ok(TlbState {
        entries,
        stamp: r.u64("tlb stamp")?,
        stats: TlbStats { accesses: r.u64("tlb accesses")?, misses: r.u64("tlb misses")? },
    })
}

fn enc_frame_alloc(w: &mut WireWriter, f: &FrameAllocatorState) {
    w.u32(f.base);
    w.u32(f.next);
    w.u32(f.limit);
    w.seq(f.free.len());
    for &ppn in &f.free {
        w.u32(ppn);
    }
    w.u64(f.allocated);
}

fn dec_frame_alloc(r: &mut WireReader<'_>) -> WireResult<FrameAllocatorState> {
    let base = r.u32("alloc base")?;
    let next = r.u32("alloc next")?;
    let limit = r.u32("alloc limit")?;
    let n = r.seq(4, "alloc free list")?;
    let mut free = Vec::with_capacity(n);
    for _ in 0..n {
        free.push(r.u32("free ppn")?);
    }
    Ok(FrameAllocatorState { base, next, limit, free, allocated: r.u64("alloc counter")? })
}

fn enc_event(w: &mut WireWriter, ev: &StampedEvent) {
    match ev.event {
        TraceEvent::Call { pc, target, return_addr, sp } => {
            w.u8(0);
            w.u32(pc);
            w.u32(target);
            w.u32(return_addr);
            w.u32(sp);
        }
        TraceEvent::IndirectCall { pc, target, return_addr, sp } => {
            w.u8(1);
            w.u32(pc);
            w.u32(target);
            w.u32(return_addr);
            w.u32(sp);
        }
        TraceEvent::Return { pc, target, sp } => {
            w.u8(2);
            w.u32(pc);
            w.u32(target);
            w.u32(sp);
        }
        TraceEvent::IndirectJump { pc, target } => {
            w.u8(3);
            w.u32(pc);
            w.u32(target);
        }
        TraceEvent::CodeFill { page_vaddr, pc } => {
            w.u8(4);
            w.u32(page_vaddr);
            w.u32(pc);
        }
        TraceEvent::SyscallSync { pc, code } => {
            w.u8(5);
            w.u32(pc);
            w.u16(code);
        }
    }
    w.u64(ev.cycle);
    w.u16(ev.asid);
}

fn dec_event(r: &mut WireReader<'_>) -> WireResult<StampedEvent> {
    let event = match r.u8("event tag")? {
        0 => TraceEvent::Call {
            pc: r.u32("event pc")?,
            target: r.u32("event target")?,
            return_addr: r.u32("event ra")?,
            sp: r.u32("event sp")?,
        },
        1 => TraceEvent::IndirectCall {
            pc: r.u32("event pc")?,
            target: r.u32("event target")?,
            return_addr: r.u32("event ra")?,
            sp: r.u32("event sp")?,
        },
        2 => TraceEvent::Return {
            pc: r.u32("event pc")?,
            target: r.u32("event target")?,
            sp: r.u32("event sp")?,
        },
        3 => TraceEvent::IndirectJump { pc: r.u32("event pc")?, target: r.u32("event target")? },
        4 => TraceEvent::CodeFill { page_vaddr: r.u32("event page")?, pc: r.u32("event pc")? },
        5 => TraceEvent::SyscallSync { pc: r.u32("event pc")?, code: r.u16("event code")? },
        _ => return Err(PersistError::Corrupt { context: "unknown trace-event tag" }),
    };
    Ok(StampedEvent { event, cycle: r.u64("event cycle")?, asid: r.u16("event asid")? })
}

// ---- os --------------------------------------------------------------

fn enc_os(w: &mut WireWriter, os: &OsState) {
    w.seq(os.procs.len());
    for p in &os.procs {
        enc_process(w, p);
    }
    w.seq(os.core_to_pid.len());
    for &(core, pid) in &os.core_to_pid {
        w.usize(core);
        w.u32(pid);
    }
    w.u32(os.next_pid);
    w.u16(os.next_asid);
    w.seq(os.fs.files.len());
    for (path, contents) in &os.fs.files {
        w.str(path);
        w.bytes(contents);
    }
    w.seq(os.audit.len());
    for line in &os.audit {
        w.str(line);
    }
    w.u64(os.next_request_id);
}

fn dec_os(r: &mut WireReader<'_>) -> WireResult<OsState> {
    let n = r.seq(1, "processes")?;
    let mut procs = Vec::with_capacity(n);
    for _ in 0..n {
        procs.push(dec_process(r)?);
    }
    let n = r.seq(12, "core-to-pid")?;
    let mut core_to_pid = Vec::with_capacity(n);
    for _ in 0..n {
        core_to_pid.push((r.usize("scheduled core")?, r.u32("scheduled pid")?));
    }
    let next_pid = r.u32("next pid")?;
    let next_asid = r.u16("next asid")?;
    let n = r.seq(8, "fs files")?;
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        let path = r.str("file path")?;
        files.push((path, r.bytes("file contents")?.to_vec()));
    }
    let n = r.seq(4, "audit log")?;
    let mut audit = Vec::with_capacity(n);
    for _ in 0..n {
        audit.push(r.str("audit line")?);
    }
    Ok(OsState {
        procs,
        core_to_pid,
        next_pid,
        next_asid,
        fs: FsState { files },
        audit,
        next_request_id: r.u64("next request id")?,
    })
}

fn enc_process(w: &mut WireWriter, p: &ProcessState) {
    w.u32(p.pid);
    w.str(&p.name);
    w.u16(p.asid);
    w.usize(p.core);
    w.u32(p.brk);
    w.seq(p.heap_pages.len());
    for &(vpn, ppn) in &p.heap_pages {
        w.u32(vpn);
        w.u32(ppn);
    }
    w.seq(p.fds.len());
    for (fd, h) in &p.fds {
        w.u32(*fd);
        w.str(&h.path);
        w.usize(h.offset);
    }
    w.u32(p.next_fd);
    w.seq(p.children.len());
    for &pid in &p.children {
        w.u32(pid);
    }
    w.u64(p.rng);
    match p.waiting_recv {
        Some((buf, cap)) => {
            w.bool(true);
            w.u32(buf);
            w.u32(cap);
        }
        None => w.bool(false),
    }
    w.opt_u64(p.current_request);
    match &p.mark {
        Some(m) => {
            w.bool(true);
            w.seq(m.fds.len());
            for &fd in &m.fds {
                w.u32(fd);
            }
            w.seq(m.children.len());
            for &pid in &m.children {
                w.u32(pid);
            }
            w.u32(m.brk);
            w.usize(m.heap_pages_len);
            enc_context(w, &m.context);
            w.u64(m.request_id);
        }
        None => w.bool(false),
    }
    w.seq(p.endpoint.inbox.len());
    for req in &p.endpoint.inbox {
        w.u64(req.id);
        w.bytes(&req.data);
        w.bool(req.malicious);
    }
    w.seq(p.endpoint.outbox.len());
    for resp in &p.endpoint.outbox {
        w.u64(resp.request_id);
        w.bytes(&resp.data);
    }
    w.u64(p.endpoint.delivered);
    w.u64(p.served);
    w.u64(p.rollbacks);
    match &p.last_delivered {
        Some(req) => {
            w.bool(true);
            w.u64(req.id);
            w.bytes(&req.data);
            w.bool(req.malicious);
        }
        None => w.bool(false),
    }
    w.seq(p.arena_pages.len());
    for &(vpn, ppn) in &p.arena_pages {
        w.u32(vpn);
        w.u32(ppn);
    }
    w.u32(p.arena_brk);
}

fn dec_process(r: &mut WireReader<'_>) -> WireResult<ProcessState> {
    let pid = r.u32("pid")?;
    let name = r.str("process name")?;
    let asid = r.u16("process asid")?;
    let core = r.usize("process core")?;
    let brk = r.u32("process brk")?;
    let n = r.seq(8, "heap pages")?;
    let mut heap_pages = Vec::with_capacity(n);
    for _ in 0..n {
        heap_pages.push((r.u32("heap vpn")?, r.u32("heap ppn")?));
    }
    let n = r.seq(16, "fds")?;
    let mut fds = Vec::with_capacity(n);
    for _ in 0..n {
        let fd = r.u32("fd")?;
        let path = r.str("fd path")?;
        fds.push((fd, FileHandle { path, offset: r.usize("fd offset")? }));
    }
    let next_fd = r.u32("next fd")?;
    let n = r.seq(4, "children")?;
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        children.push(r.u32("child pid")?);
    }
    let rng = r.u64("process rng")?;
    let waiting_recv =
        if r.bool("waiting recv")? { Some((r.u32("recv buf")?, r.u32("recv cap")?)) } else { None };
    let current_request = r.opt_u64("current request")?;
    let mark = if r.bool("mark present")? {
        let n = r.seq(4, "mark fds")?;
        let mut mfds = std::collections::BTreeSet::new();
        for _ in 0..n {
            mfds.insert(r.u32("mark fd")?);
        }
        let n = r.seq(4, "mark children")?;
        let mut mchildren = std::collections::BTreeSet::new();
        for _ in 0..n {
            mchildren.insert(r.u32("mark child")?);
        }
        let mbrk = r.u32("mark brk")?;
        let heap_pages_len = r.usize("mark heap len")?;
        let context = dec_context(r)?;
        Some(ResourceMark {
            fds: mfds,
            children: mchildren,
            brk: mbrk,
            heap_pages_len,
            context,
            request_id: r.u64("mark request id")?,
        })
    } else {
        None
    };
    let n = r.seq(13, "inbox")?;
    let mut inbox = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64("request id")?;
        let data = r.bytes("request data")?.to_vec();
        inbox.push(Request { id, data, malicious: r.bool("request tag")? });
    }
    let n = r.seq(12, "outbox")?;
    let mut outbox = Vec::with_capacity(n);
    for _ in 0..n {
        let request_id = r.u64("response id")?;
        outbox.push(Response { request_id, data: r.bytes("response data")?.to_vec() });
    }
    let endpoint = EndpointState { inbox, outbox, delivered: r.u64("delivered")? };
    let served = r.u64("process served")?;
    let rollbacks = r.u64("process rollbacks")?;
    let last_delivered = if r.bool("last delivered present")? {
        let id = r.u64("last delivered id")?;
        let data = r.bytes("last delivered data")?.to_vec();
        Some(Request { id, data, malicious: r.bool("last delivered tag")? })
    } else {
        None
    };
    let n = r.seq(8, "arena pages")?;
    let mut arena_pages = Vec::with_capacity(n);
    for _ in 0..n {
        arena_pages.push((r.u32("arena vpn")?, r.u32("arena ppn")?));
    }
    Ok(ProcessState {
        pid,
        name,
        asid,
        core,
        brk,
        heap_pages,
        fds,
        next_fd,
        children,
        rng,
        waiting_recv,
        current_request,
        mark,
        endpoint,
        served,
        rollbacks,
        last_delivered,
        arena_pages,
        arena_brk: r.u32("arena brk")?,
    })
}

// ---- monitor ---------------------------------------------------------

fn enc_monitor(w: &mut WireWriter, m: &MonitorState) {
    w.seq(m.apps.len());
    for app in &m.apps {
        w.u16(app.asid);
        enc_metadata(w, &app.meta);
        enc_shadow(w, &app.shadow);
        enc_shadow(w, &app.saved_shadow);
    }
    w.u64(m.clock);
    w.u64(m.seq);
    w.u64(m.stats.events);
    w.u64(m.stats.call_return_checks);
    w.u64(m.stats.code_origin_checks);
    w.u64(m.stats.indirect_checks);
    w.u64(m.stats.violations);
    w.u64(m.stats.busy_cycles);
    w.seq(m.violations.len());
    for v in &m.violations {
        w.u8(violation_kind_tag(v.kind));
        w.u64(v.seq);
        w.u32(v.pc);
        w.u32(v.addr);
        w.u16(v.asid);
    }
}

fn dec_monitor(r: &mut WireReader<'_>) -> WireResult<MonitorState> {
    let n = r.seq(2, "monitor apps")?;
    let mut apps = Vec::with_capacity(n);
    for _ in 0..n {
        let asid = r.u16("app asid")?;
        let meta = dec_metadata(r)?;
        let shadow = dec_shadow(r)?;
        apps.push(MonitorAppState { asid, meta, shadow, saved_shadow: dec_shadow(r)? });
    }
    let clock = r.u64("monitor clock")?;
    let seq = r.u64("monitor seq")?;
    let stats = MonitorStats {
        events: r.u64("monitor events")?,
        call_return_checks: r.u64("monitor cr checks")?,
        code_origin_checks: r.u64("monitor co checks")?,
        indirect_checks: r.u64("monitor ind checks")?,
        violations: r.u64("monitor violation count")?,
        busy_cycles: r.u64("monitor busy")?,
    };
    let n = r.seq(19, "violations")?;
    let mut violations = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = violation_kind_from_tag(r.u8("violation kind")?)?;
        violations.push(Violation {
            kind,
            seq: r.u64("violation seq")?,
            pc: r.u32("violation pc")?,
            addr: r.u32("violation addr")?,
            asid: r.u16("violation asid")?,
        });
    }
    Ok(MonitorState { apps, clock, seq, stats, violations })
}

fn enc_metadata(w: &mut WireWriter, m: &AppMetadata) {
    w.seq(m.executable_pages.len());
    for &vpn in &m.executable_pages {
        w.u32(vpn);
    }
    w.seq(m.indirect_targets.len());
    for &t in &m.indirect_targets {
        w.u32(t);
    }
    w.seq(m.longjmp_targets.len());
    for &t in &m.longjmp_targets {
        w.u32(t);
    }
    w.seq(m.dynamic_regions.len());
    for &(base, size) in &m.dynamic_regions {
        w.u32(base);
        w.u32(size);
    }
}

fn dec_metadata(r: &mut WireReader<'_>) -> WireResult<AppMetadata> {
    let mut meta = AppMetadata::default();
    for _ in 0..r.seq(4, "executable pages")? {
        meta.executable_pages.insert(r.u32("executable vpn")?);
    }
    for _ in 0..r.seq(4, "indirect targets")? {
        meta.indirect_targets.insert(r.u32("indirect target")?);
    }
    for _ in 0..r.seq(4, "longjmp targets")? {
        meta.longjmp_targets.insert(r.u32("longjmp target")?);
    }
    for _ in 0..r.seq(8, "dynamic regions")? {
        let base = r.u32("region base")?;
        meta.dynamic_regions.push((base, r.u32("region size")?));
    }
    Ok(meta)
}

fn enc_shadow(w: &mut WireWriter, frames: &[ShadowFrameState]) {
    w.seq(frames.len());
    for f in frames {
        w.u32(f.return_addr);
        w.u32(f.sp);
    }
}

fn dec_shadow(r: &mut WireReader<'_>) -> WireResult<Vec<ShadowFrameState>> {
    let n = r.seq(8, "shadow stack")?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let return_addr = r.u32("shadow ra")?;
        frames.push(ShadowFrameState { return_addr, sp: r.u32("shadow sp")? });
    }
    Ok(frames)
}

fn violation_kind_tag(kind: ViolationKind) -> u8 {
    match kind {
        ViolationKind::ReturnMismatch => 0,
        ViolationKind::ShadowStackUnderflow => 1,
        ViolationKind::CodeInjection => 2,
        ViolationKind::InvalidIndirectTarget => 3,
        ViolationKind::Custom => 4,
    }
}

fn violation_kind_from_tag(tag: u8) -> WireResult<ViolationKind> {
    Ok(match tag {
        0 => ViolationKind::ReturnMismatch,
        1 => ViolationKind::ShadowStackUnderflow,
        2 => ViolationKind::CodeInjection,
        3 => ViolationKind::InvalidIndirectTarget,
        4 => ViolationKind::Custom,
        _ => return Err(PersistError::Corrupt { context: "unknown violation kind" }),
    })
}

// ---- scheme ----------------------------------------------------------

fn enc_scheme_stats(w: &mut WireWriter, s: &SchemeStats) {
    w.u64(s.stores_observed);
    w.u64(s.line_copies);
    w.u64(s.page_copies);
    w.u64(s.log_entries);
    w.u64(s.lazy_restores);
    w.u64(s.rollbacks);
    w.u64(s.boundary_cycles);
    w.u64(s.recovery_cycles);
}

fn dec_scheme_stats(r: &mut WireReader<'_>) -> WireResult<SchemeStats> {
    Ok(SchemeStats {
        stores_observed: r.u64("stores observed")?,
        line_copies: r.u64("line copies")?,
        page_copies: r.u64("page copies")?,
        log_entries: r.u64("log entries")?,
        lazy_restores: r.u64("lazy restores")?,
        rollbacks: r.u64("rollbacks")?,
        boundary_cycles: r.u64("boundary cycles")?,
        recovery_cycles: r.u64("recovery cycles")?,
    })
}

fn enc_scheme(w: &mut WireWriter, s: &SchemeState) {
    match s {
        SchemeState::NoBackup { stats } => {
            w.u8(0);
            enc_scheme_stats(w, stats);
        }
        SchemeState::Delta(d) => {
            w.u8(1);
            enc_frame_alloc(w, &d.frames);
            w.seq(d.procs.len());
            for p in &d.procs {
                w.u16(p.asid);
                w.u64(p.gts);
                w.u64(p.rollback_pending);
                w.seq(p.pages.len());
                for pg in &p.pages {
                    w.u32(pg.vpn);
                    w.u32(pg.backup_ppn);
                    w.u64(pg.lts);
                    w.u128(pg.dirty);
                    w.u128(pg.rollback);
                    w.seq(pg.hist.len());
                    for &(gts, bits) in &pg.hist {
                        w.u64(gts);
                        w.u128(bits);
                    }
                }
                match p.last_load {
                    Some((vpn, line)) => {
                        w.bool(true);
                        w.u32(vpn);
                        w.u32(line);
                    }
                    None => w.bool(false),
                }
                w.seq(p.seals.len());
                for s in &p.seals {
                    w.u64(s.gts);
                    w.u64(s.request_id);
                    w.bool(s.malicious);
                }
            }
            enc_scheme_stats(w, &d.stats);
        }
        SchemeState::PageCkpt(p) => {
            w.u8(2);
            enc_frame_alloc(w, &p.frames);
            w.seq(p.procs.len());
            for proc in &p.procs {
                w.u16(proc.asid);
                w.seq(proc.saved.len());
                for &(vpn, ppn) in &proc.saved {
                    w.u32(vpn);
                    w.u32(ppn);
                }
            }
            enc_scheme_stats(w, &p.stats);
        }
        SchemeState::UndoLog(u) => {
            w.u8(3);
            w.seq(u.logs.len());
            for (asid, entries) in &u.logs {
                w.u16(*asid);
                w.seq(entries.len());
                for e in entries {
                    w.u32(e.paddr);
                    w.u32(e.old);
                }
            }
            enc_scheme_stats(w, &u.stats);
        }
    }
}

fn dec_scheme(r: &mut WireReader<'_>) -> WireResult<SchemeState> {
    Ok(match r.u8("scheme tag")? {
        0 => SchemeState::NoBackup { stats: dec_scheme_stats(r)? },
        1 => {
            let frames = dec_frame_alloc(r)?;
            let n = r.seq(22, "delta procs")?;
            let mut procs = Vec::with_capacity(n);
            for _ in 0..n {
                let asid = r.u16("delta asid")?;
                let gts = r.u64("delta gts")?;
                let rollback_pending = r.u64("delta pending")?;
                let m = r.seq(48, "delta pages")?;
                let mut pages = Vec::with_capacity(m);
                for _ in 0..m {
                    let vpn = r.u32("delta vpn")?;
                    let backup_ppn = r.u32("delta backup ppn")?;
                    let lts = r.u64("delta lts")?;
                    let dirty = r.u128("delta dirty")?;
                    let rollback = r.u128("delta rollback")?;
                    let h = r.seq(17, "delta hist")?;
                    let mut hist = Vec::with_capacity(h);
                    for _ in 0..h {
                        hist.push((r.u64("hist gts")?, r.u128("hist bits")?));
                    }
                    pages.push(DeltaPageState { vpn, backup_ppn, lts, dirty, rollback, hist });
                }
                let last_load = if r.bool("last load present")? {
                    Some((r.u32("last load vpn")?, r.u32("last load line")?))
                } else {
                    None
                };
                let s = r.seq(17, "delta seals")?;
                let mut seals = Vec::with_capacity(s);
                for _ in 0..s {
                    seals.push(SealedCompartment {
                        gts: r.u64("seal gts")?,
                        request_id: r.u64("seal request")?,
                        malicious: r.bool("seal tag")?,
                    });
                }
                procs.push(DeltaProcState { asid, gts, rollback_pending, pages, last_load, seals });
            }
            SchemeState::Delta(DeltaState { frames, procs, stats: dec_scheme_stats(r)? })
        }
        2 => {
            let frames = dec_frame_alloc(r)?;
            let n = r.seq(6, "page-ckpt procs")?;
            let mut procs = Vec::with_capacity(n);
            for _ in 0..n {
                let asid = r.u16("page-ckpt asid")?;
                let m = r.seq(8, "page-ckpt pages")?;
                let mut saved = Vec::with_capacity(m);
                for _ in 0..m {
                    saved.push((r.u32("saved vpn")?, r.u32("saved ppn")?));
                }
                procs.push(PageCkptProcState { asid, saved });
            }
            SchemeState::PageCkpt(PageCkptState { frames, procs, stats: dec_scheme_stats(r)? })
        }
        3 => {
            let n = r.seq(6, "undo logs")?;
            let mut logs = Vec::with_capacity(n);
            for _ in 0..n {
                let asid = r.u16("log asid")?;
                let m = r.seq(8, "log entries")?;
                let mut entries = Vec::with_capacity(m);
                for _ in 0..m {
                    entries.push(UndoEntryState {
                        paddr: r.u32("log paddr")?,
                        old: r.u32("log old")?,
                    });
                }
                logs.push((asid, entries));
            }
            SchemeState::UndoLog(UndoLogState { logs, stats: dec_scheme_stats(r)? })
        }
        _ => return Err(PersistError::Corrupt { context: "unknown scheme tag" }),
    })
}

// ---- hybrid / macro / report ----------------------------------------

fn enc_hybrid(w: &mut WireWriter, h: &HybridControllerState) {
    w.u64(h.requests_seen);
    w.u64(h.requests_at_last_macro);
    w.u32(h.consecutive_failures);
    w.u64(h.stats.macro_checkpoints);
    w.u64(h.stats.micro_recoveries);
    w.u64(h.stats.macro_recoveries);
}

fn dec_hybrid(r: &mut WireReader<'_>) -> WireResult<HybridControllerState> {
    Ok(HybridControllerState {
        requests_seen: r.u64("hybrid seen")?,
        requests_at_last_macro: r.u64("hybrid last macro")?,
        consecutive_failures: r.u32("hybrid failures")?,
        stats: HybridStats {
            macro_checkpoints: r.u64("hybrid ckpts")?,
            micro_recoveries: r.u64("hybrid micro")?,
            macro_recoveries: r.u64("hybrid macro")?,
        },
    })
}

fn enc_macro_ckpt(w: &mut WireWriter, c: &MacroCheckpointState) {
    w.seq(c.pages.len());
    for (vpn, contents) in &c.pages {
        w.u32(*vpn);
        w.bytes(contents);
    }
    enc_context(w, &c.context);
    w.u64(c.request_seq);
}

fn dec_macro_ckpt(r: &mut WireReader<'_>) -> WireResult<MacroCheckpointState> {
    let n = r.seq(8, "macro pages")?;
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        let vpn = r.u32("macro vpn")?;
        let contents = r.bytes("macro page contents")?.to_vec();
        // A checkpoint page that is not exactly one page would scribble
        // over the restore target; reject the blob instead.
        if contents.len() != 4096 {
            return Err(PersistError::Corrupt { context: "macro page length" });
        }
        pages.push((vpn, contents));
    }
    let context = dec_context(r)?;
    Ok(MacroCheckpointState { pages, context, request_seq: r.u64("macro seq")? })
}

fn enc_report(w: &mut WireWriter, report: &RunReport) {
    w.u64(report.served);
    w.u64(report.benign_served);
    w.seq(report.detections.len());
    for d in &report.detections {
        match d.cause {
            FailureCause::Violation(kind) => {
                w.u8(0);
                w.u8(violation_kind_tag(kind));
            }
            FailureCause::Fault => w.u8(1),
            FailureCause::Timeout => w.u8(2),
        }
        w.opt_u64(d.request_id);
        w.bool(d.was_malicious);
        w.u8(match d.level {
            RecoveryLevel::Micro => 0,
            RecoveryLevel::Macro => 1,
        });
        w.u64(d.at_cycle);
        w.u64(d.insns_into_request);
        w.usize(d.core);
        w.bool(d.retried);
        w.opt_u64(d.discarded);
        w.bool(d.discarded_was_malicious);
    }
    w.seq(report.samples.len());
    for s in &report.samples {
        w.u64(s.request_id);
        w.u64(s.cycles);
        w.u64(s.instructions);
        w.bool(s.malicious);
        w.usize(s.core);
        w.u64(s.completed_at);
    }
    w.seq(report.quarantined.len());
    for &idx in &report.quarantined {
        w.u64(idx);
    }
    w.u64(report.policy.services);
    w.u64(report.policy.declared_targets);
    w.u64(report.policy.proven_targets);
    w.u64(report.policy.registered_targets);
    w.u64(report.policy.executable_pages);
    w.u64(report.policy.static_findings);
}

fn dec_report(r: &mut WireReader<'_>) -> WireResult<RunReport> {
    let served = r.u64("report served")?;
    let benign_served = r.u64("report benign")?;
    let n = r.seq(20, "detections")?;
    let mut detections = Vec::with_capacity(n);
    for _ in 0..n {
        let cause = match r.u8("cause tag")? {
            0 => FailureCause::Violation(violation_kind_from_tag(r.u8("cause kind")?)?),
            1 => FailureCause::Fault,
            2 => FailureCause::Timeout,
            _ => return Err(PersistError::Corrupt { context: "unknown failure cause" }),
        };
        detections.push(Detection {
            cause,
            request_id: r.opt_u64("detection request")?,
            was_malicious: r.bool("detection tag")?,
            level: match r.u8("detection level")? {
                0 => RecoveryLevel::Micro,
                1 => RecoveryLevel::Macro,
                _ => return Err(PersistError::Corrupt { context: "unknown recovery level" }),
            },
            at_cycle: r.u64("detection cycle")?,
            insns_into_request: r.u64("detection insns")?,
            core: r.usize("detection core")?,
            retried: r.bool("detection retried")?,
            discarded: r.opt_u64("detection discarded")?,
            discarded_was_malicious: r.bool("detection discarded tag")?,
        });
    }
    let n = r.seq(34, "samples")?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(RequestSample {
            request_id: r.u64("sample id")?,
            cycles: r.u64("sample cycles")?,
            instructions: r.u64("sample insns")?,
            malicious: r.bool("sample tag")?,
            core: r.usize("sample core")?,
            completed_at: r.u64("sample completed")?,
        });
    }
    let n = r.seq(8, "quarantined")?;
    let mut quarantined = Vec::with_capacity(n);
    for _ in 0..n {
        quarantined.push(r.u64("quarantined index")?);
    }
    let policy = PolicyStats {
        services: r.u64("policy services")?,
        declared_targets: r.u64("policy declared")?,
        proven_targets: r.u64("policy proven")?,
        registered_targets: r.u64("policy registered")?,
        executable_pages: r.u64("policy exec pages")?,
        static_findings: r.u64("policy findings")?,
    };
    Ok(RunReport { served, benign_served, detections, samples, quarantined, policy })
}
