//! In-tree CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant).
//!
//! The container build is fully offline, so the checksum lives here
//! instead of pulling `crc32fast`. A 256-entry table is built once at
//! first use; throughput is irrelevant next to the page copies the
//! checkpoint writer already does.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let mut flipped = b"hello world".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
