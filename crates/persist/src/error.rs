//! Typed errors of the durable-checkpoint subsystem.
//!
//! Recovery code must never panic on bad bytes: a half-written snapshot,
//! a torn journal tail or a bit-flipped sector all decode to a
//! [`PersistError`] (or, for a torn *tail*, to a clean prefix — see the
//! journal module), and the caller decides whether to fall back to an
//! older checkpoint or start fresh.

use std::fmt;

/// Everything that can go wrong reading or writing durable state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic — not one of ours.
    BadMagic {
        /// The magic the decoder expected.
        expected: &'static [u8; 8],
        /// What the file actually starts with.
        found: [u8; 8],
    },
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        supported: u32,
    },
    /// A CRC-protected section failed its integrity check.
    ChecksumMismatch {
        /// Which section failed ("header", "state", "frames", …).
        section: &'static str,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the bytes actually read.
        computed: u32,
    },
    /// The byte stream ended mid-field or a length field points past the
    /// end of the buffer.
    Truncated {
        /// What the decoder was reading when it ran out.
        context: &'static str,
    },
    /// A value decoded cleanly but is semantically impossible (an unknown
    /// enum tag, a count contradicting an invariant).
    Corrupt {
        /// What was wrong.
        context: &'static str,
    },
    /// The checkpoint metadata disagrees with the requested resume (e.g.
    /// a snapshot written under a different scheme kind).
    ConfigMismatch {
        /// What disagreed.
        context: String,
    },
    /// `fleet.meta` promises a shard whose `shard-NNNN/` directory is
    /// gone. Distinct from a shard that never checkpointed (its
    /// directory exists but holds no base snapshot — a normal fresh
    /// start): a missing directory means the store was externally
    /// damaged, and resuming would silently replay that shard from
    /// scratch.
    MissingShard {
        /// The shard whose directory is missing.
        shard: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad magic: expected {:?}, found {:?}",
                    String::from_utf8_lossy(&expected[..]),
                    String::from_utf8_lossy(&found[..])
                )
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build supports {supported})")
            }
            PersistError::ChecksumMismatch { section, stored, computed } => {
                write!(
                    f,
                    "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            PersistError::Truncated { context } => {
                write!(f, "truncated data while reading {context}")
            }
            PersistError::Corrupt { context } => write!(f, "corrupt data: {context}"),
            PersistError::ConfigMismatch { context } => write!(f, "config mismatch: {context}"),
            PersistError::MissingShard { shard } => {
                write!(f, "shard {shard} directory is missing from the checkpoint store")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PersistError::ChecksumMismatch { section: "state", stored: 1, computed: 2 };
        let s = e.to_string();
        assert!(s.contains("state") && s.contains("0x00000001"));
        let t = PersistError::Truncated { context: "frame table" };
        assert!(t.to_string().contains("frame table"));
    }
}
