//! Append-only per-shard ingress log for the service daemon.
//!
//! The live control plane (`crates/serve`) admits requests that arrive
//! over a socket — traffic that, unlike the batch executor's schedules,
//! is *not* a pure function of any seed. Determinism is recovered by
//! write-ahead logging: every admitted request is appended here
//! *before* it is delivered into the simulated system, so the log is
//! the authoritative replayable history. Feeding the same log back
//! through the same engine reproduces the run byte-for-byte.
//!
//! Layout (same framing discipline as the delta journal):
//!
//! ```text
//! "INDRAILG"        8-byte magic
//! version: u32      FORMAT_VERSION
//! shard: u32        owning shard index
//! record*           u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! A crash mid-append leaves a torn tail; [`read_ingress_log`] stops at
//! the first record whose length runs past the end of the file or whose
//! CRC fails, and returns the valid prefix. A torn tail is the expected
//! shape of a killed daemon, not an error — the torn request was never
//! answered, so dropping it keeps the at-most-once admission contract.

use std::fs::{File, OpenOptions};
use std::io::{Seek, Write};
use std::path::Path;

use crate::snapshot::{read_header, FORMAT_VERSION};
use crate::{crc32, PersistError, WireReader, WireWriter};

/// Magic bytes opening every ingress log file.
pub const MAGIC_INGRESS: &[u8; 8] = b"INDRAILG";

/// Default file name of a shard's ingress log.
pub const INGRESS_FILE: &str = "ingress.log";

/// What one ingress record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressKind {
    /// An admitted client request (the payload bytes follow).
    Request,
    /// A quarantine tombstone: the request at `seq` proved poisonous
    /// (killed its shard twice) and replay must skip it.
    Quarantine,
}

/// One entry of a shard's admitted-request history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngressRecord {
    /// Admission sequence number. `Request` records carry their own
    /// (strictly increasing) seq; a `Quarantine` tombstone names the
    /// seq of the request it retroactively poisons.
    pub seq: u64,
    /// Record type.
    pub kind: IngressKind,
    /// Wire-protocol request id (client-chosen; echoing only).
    pub request_id: u64,
    /// Ground-truth malicious tag as declared by the load generator.
    pub malicious: bool,
    /// Raw request payload (empty for tombstones).
    pub data: Vec<u8>,
}

/// Encodes the log file header.
#[must_use]
pub fn encode_ingress_header(shard: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(MAGIC_INGRESS);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out
}

/// Encodes one record (length prefix + CRC + payload), ready to append.
#[must_use]
pub fn encode_ingress_record(rec: &IngressRecord) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(rec.seq);
    w.u8(match rec.kind {
        IngressKind::Request => 0,
        IngressKind::Quarantine => 1,
    });
    w.u64(rec.request_id);
    w.bool(rec.malicious);
    w.bytes(&rec.data);
    let payload = w.finish();

    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record too large").to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<IngressRecord, PersistError> {
    let mut r = WireReader::new(payload);
    let seq = r.u64("ingress seq")?;
    let kind = match r.u8("ingress kind")? {
        0 => IngressKind::Request,
        1 => IngressKind::Quarantine,
        _ => return Err(PersistError::Corrupt { context: "unknown ingress kind" }),
    };
    let request_id = r.u64("ingress request id")?;
    let malicious = r.bool("ingress malicious")?;
    let data = r.bytes("ingress data")?.to_vec();
    r.expect_exhausted("ingress trailing bytes")?;
    Ok(IngressRecord { seq, kind, request_id, malicious, data })
}

/// A parsed ingress log: its records plus the byte length of the valid
/// prefix (so a recovering writer can truncate a torn tail away before
/// appending).
#[derive(Debug)]
pub struct IngressLogContents {
    /// Shard index from the header.
    pub shard: u32,
    /// The longest valid record prefix, in append order.
    pub records: Vec<IngressRecord>,
    /// Bytes of `header + records` — everything past this is torn.
    pub valid_len: u64,
}

/// Parses an ingress log, tolerating a torn tail.
///
/// Mirrors [`crate::read_journal`]: a record that is truncated, fails
/// its CRC, or does not decode ends the scan cleanly and everything
/// before it is returned. A file shorter than the header is an empty
/// log (the header write itself may have been torn).
///
/// # Errors
///
/// [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`]
/// only when the header bytes are present but foreign or damaged.
pub fn read_ingress_log(bytes: &[u8]) -> Result<IngressLogContents, PersistError> {
    if bytes.len() < 16 {
        if bytes.len() >= 8 && &bytes[..8] != MAGIC_INGRESS {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[..8]);
            return Err(PersistError::BadMagic { expected: MAGIC_INGRESS, found });
        }
        return Ok(IngressLogContents { shard: 0, records: Vec::new(), valid_len: 0 });
    }
    let mut r = WireReader::new(bytes);
    read_header(&mut r, MAGIC_INGRESS)?;
    let shard = r.u32("ingress shard")?;

    let mut records = Vec::new();
    let mut valid_len = (bytes.len() - r.remaining()) as u64;
    loop {
        if r.remaining() < 8 {
            break; // torn length/CRC prefix
        }
        let len = r.u32("ingress record length")? as usize;
        let stored = r.u32("ingress record crc")?;
        if len > r.remaining() {
            break; // torn payload
        }
        let payload = r.raw(len, "ingress record payload")?;
        if crc32(payload) != stored {
            break; // bit rot — stop at the last good record
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // CRC passed but the payload is malformed
        }
        valid_len = (bytes.len() - r.remaining()) as u64;
    }
    Ok(IngressLogContents { shard, records, valid_len })
}

/// Append-only writer for one shard's ingress log.
///
/// Records are written with `write_all` per append (no buffering), so a
/// process kill never loses an admitted request — only machine-level
/// power loss can, and the torn-tail reader absorbs that too.
/// [`IngressWriter::sync`] forces the file to disk at checkpoint and
/// drain boundaries.
#[derive(Debug)]
pub struct IngressWriter {
    file: File,
}

impl IngressWriter {
    /// Opens (or creates) the log at `path` for shard `shard`,
    /// truncating any torn tail so appends continue from the last valid
    /// record. Returns the writer plus the valid prefix already logged.
    ///
    /// # Errors
    ///
    /// I/O failure, or a foreign/corrupt header (wrong magic, wrong
    /// shard index, unsupported version).
    pub fn recover(
        path: &Path,
        shard: u32,
    ) -> Result<(IngressWriter, Vec<IngressRecord>), PersistError> {
        let existing = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if existing.len() < 16 {
            // Fresh (or torn-header) log: rewrite the header from scratch.
            let mut file = File::create(path)?;
            file.write_all(&encode_ingress_header(shard))?;
            file.sync_all()?;
            return Ok((IngressWriter { file }, Vec::new()));
        }
        let contents = read_ingress_log(&existing)?;
        if contents.shard != shard {
            return Err(PersistError::Corrupt { context: "ingress log belongs to another shard" });
        }
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(contents.valid_len)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok((IngressWriter { file }, contents.records))
    }

    /// Appends one record. Not synced — pair with [`IngressWriter::sync`]
    /// at durability boundaries.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn append(&mut self, rec: &IngressRecord) -> Result<(), PersistError> {
        self.file.write_all(&encode_ingress_record(rec))?;
        Ok(())
    }

    /// Forces everything appended so far to disk.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64) -> IngressRecord {
        IngressRecord {
            seq,
            kind: IngressKind::Request,
            request_id: 100 + seq,
            malicious: seq.is_multiple_of(3),
            data: vec![seq as u8; 5],
        }
    }

    fn log_with(records: &[IngressRecord], shard: u32) -> Vec<u8> {
        let mut bytes = encode_ingress_header(shard);
        for rec in records {
            bytes.extend_from_slice(&encode_ingress_record(rec));
        }
        bytes
    }

    #[test]
    fn roundtrip() {
        let recs = vec![
            req(0),
            IngressRecord {
                seq: 0,
                kind: IngressKind::Quarantine,
                request_id: 0,
                malicious: false,
                data: Vec::new(),
            },
            req(1),
        ];
        let bytes = log_with(&recs, 7);
        let got = read_ingress_log(&bytes).unwrap();
        assert_eq!(got.shard, 7);
        assert_eq!(got.records, recs);
        assert_eq!(got.valid_len, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_returns_valid_prefix() {
        let recs = vec![req(0), req(1)];
        let full = log_with(&recs, 0);
        let first_len = log_with(&recs[..1], 0).len();
        for cut in first_len..full.len() {
            let got = read_ingress_log(&full[..cut]).unwrap();
            assert_eq!(got.records, recs[..1], "cut at {cut}");
            assert_eq!(got.valid_len, first_len as u64, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let recs = vec![req(0), req(1)];
        let mut bytes = log_with(&recs, 0);
        let first_len = log_with(&recs[..1], 0).len();
        bytes[first_len + 10] ^= 0xFF;
        assert_eq!(read_ingress_log(&bytes).unwrap().records, recs[..1]);
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let err = read_ingress_log(b"NOTANILGxxxxxxxx").unwrap_err();
        assert!(matches!(err, PersistError::BadMagic { .. }));
    }

    #[test]
    fn recover_truncates_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("indra-ingress-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(INGRESS_FILE);

        let (mut w, prior) = IngressWriter::recover(&path, 3).unwrap();
        assert!(prior.is_empty());
        w.append(&req(0)).unwrap();
        w.append(&req(1)).unwrap();
        w.sync().unwrap();
        drop(w);

        // Tear the tail: chop 3 bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut w, prior) = IngressWriter::recover(&path, 3).unwrap();
        assert_eq!(prior, vec![req(0)]);
        w.append(&req(1)).unwrap();
        w.sync().unwrap();
        drop(w);

        let got = read_ingress_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(got.records, vec![req(0), req(1)]);

        // Wrong shard is a typed error.
        assert!(IngressWriter::recover(&path, 4).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
