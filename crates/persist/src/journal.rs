//! Append-only write-ahead delta journal.
//!
//! Between full snapshots, each checkpoint appends one *record* instead
//! of rewriting every page: the small state travels in full (it is tiny
//! next to the frame table), but page frames are journaled as a delta —
//! only pages that changed since the previous record, plus the page
//! numbers that disappeared. Recovery replays the record sequence over
//! the base snapshot.
//!
//! Layout:
//!
//! ```text
//! "INDRAJNL"        8-byte magic
//! version: u32      FORMAT_VERSION
//! base_id: u32      CRC-32 of the base.snap file this journal extends
//! record*           u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! A crash mid-append leaves a torn tail; [`read_journal`] stops at the
//! first record whose length runs past the end of the file or whose CRC
//! does not match, and returns the valid prefix — a torn tail is *not*
//! an error, it is the expected shape of a crashed run. Only a damaged
//! header (wrong magic, unsupported version) is a hard error. The
//! `base_id` ties a journal to the exact base snapshot it was started
//! against: after a crash between rewriting `base.snap` and resetting
//! the journal, the stale journal's `base_id` no longer matches and its
//! records are ignored rather than replayed onto the wrong base.

use crate::snapshot::{dec_frames, enc_frames, read_header, Frame, FORMAT_VERSION};
use crate::{crc32, PersistError, WireReader, WireResult, WireWriter};

/// Magic bytes opening every journal file.
pub const MAGIC_JOURNAL: &[u8; 8] = b"INDRAJNL";

/// One checkpoint delta: everything that changed since the previous
/// journal record (or since the base snapshot, for the first record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Monotonic checkpoint sequence number (base snapshot is 0).
    pub seq: u64,
    /// Full small-state blob (see [`crate::codec`]) at this checkpoint.
    pub small: Vec<u8>,
    /// Frames whose contents changed, or that are newly resident.
    pub changed: Vec<Frame>,
    /// Page numbers no longer resident.
    pub removed: Vec<u32>,
    /// Caller-opaque progress blob at this checkpoint.
    pub progress: Vec<u8>,
}

/// Encodes the journal file header.
#[must_use]
pub fn encode_journal_header(base_id: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(MAGIC_JOURNAL);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&base_id.to_le_bytes());
    out
}

/// Encodes one record (length prefix + CRC + payload), ready to append.
#[must_use]
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(rec.seq);
    w.bytes(&rec.small);
    enc_frames(&mut w, &rec.changed);
    w.seq(rec.removed.len());
    for &ppn in &rec.removed {
        w.u32(ppn);
    }
    w.bytes(&rec.progress);
    let payload = w.finish();

    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record too large").to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> WireResult<JournalRecord> {
    let mut r = WireReader::new(payload);
    let seq = r.u64("record seq")?;
    let small = r.bytes("record state")?.to_vec();
    let changed = dec_frames(&mut r)?;
    let n = r.seq(4, "record removals")?;
    let mut removed = Vec::with_capacity(n);
    for _ in 0..n {
        removed.push(r.u32("removed ppn")?);
    }
    let progress = r.bytes("record progress")?.to_vec();
    r.expect_exhausted("record trailing bytes")?;
    Ok(JournalRecord { seq, small, changed, removed, progress })
}

/// Parses a journal file, tolerating a torn tail.
///
/// Returns the longest valid prefix of records whose header `base_id`
/// matches `expected_base_id`; a journal written against a *different*
/// base decodes to an empty record list (stale journal — its deltas do
/// not apply). A record that is truncated, fails its CRC, or does not
/// decode ends the scan cleanly: everything before it is returned.
///
/// # Errors
///
/// [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`]
/// when the header itself is damaged (a journal always has its header
/// written before any record — only a foreign or corrupted file fails
/// here). A file shorter than the header is treated as empty: the
/// header write itself may have been torn by a crash.
pub fn read_journal(
    bytes: &[u8],
    expected_base_id: u32,
) -> Result<Vec<JournalRecord>, PersistError> {
    if bytes.len() < 16 {
        // Torn header: the journal never held a record, so there is
        // nothing to replay — but a foreign file prefix is still an error.
        if bytes.len() >= 8 && &bytes[..8] != MAGIC_JOURNAL {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[..8]);
            return Err(PersistError::BadMagic { expected: MAGIC_JOURNAL, found });
        }
        return Ok(Vec::new());
    }
    let mut r = WireReader::new(bytes);
    read_header(&mut r, MAGIC_JOURNAL)?;
    let base_id = r.u32("journal base id")?;
    if base_id != expected_base_id {
        return Ok(Vec::new());
    }

    let mut records = Vec::new();
    loop {
        if r.remaining() < 8 {
            break; // torn length/CRC prefix
        }
        let len = r.u32("record length")? as usize;
        let stored = r.u32("record crc")?;
        if len > r.remaining() {
            break; // torn payload
        }
        let payload = r.raw(len, "record payload")?;
        if crc32(payload) != stored {
            break; // bit rot or a torn rewrite — stop at the last good record
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // CRC passed but the payload is malformed
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(seq: u64) -> JournalRecord {
        let mut page = Box::new([0u8; indra_mem::PAGE_SIZE as usize]);
        page[0] = seq as u8;
        page[4095] = 0xAB;
        JournalRecord {
            seq,
            small: vec![1, 2, 3, seq as u8],
            changed: vec![(7, page)],
            removed: vec![42, 43],
            progress: vec![9, 9],
        }
    }

    fn journal_with(records: &[JournalRecord], base_id: u32) -> Vec<u8> {
        let mut bytes = encode_journal_header(base_id);
        for rec in records {
            bytes.extend_from_slice(&encode_record(rec));
        }
        bytes
    }

    #[test]
    fn roundtrip() {
        let recs = vec![sample_record(1), sample_record(2)];
        let bytes = journal_with(&recs, 0xAA55);
        assert_eq!(read_journal(&bytes, 0xAA55).unwrap(), recs);
    }

    #[test]
    fn stale_base_id_yields_empty() {
        let bytes = journal_with(&[sample_record(1)], 1);
        assert!(read_journal(&bytes, 2).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_returns_valid_prefix() {
        let recs = vec![sample_record(1), sample_record(2)];
        let full = journal_with(&recs, 5);
        let first_len = journal_with(&recs[..1], 5).len();
        // Truncate anywhere inside the second record: first survives.
        for cut in first_len..full.len() {
            let got = read_journal(&full[..cut], 5).unwrap();
            assert_eq!(got, recs[..1], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_record_stops_scan() {
        let recs = vec![sample_record(1), sample_record(2)];
        let mut bytes = journal_with(&recs, 5);
        let first_len = journal_with(&recs[..1], 5).len();
        bytes[first_len + 20] ^= 0xFF; // inside the second record's payload
        assert_eq!(read_journal(&bytes, 5).unwrap(), recs[..1]);
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        let err = read_journal(b"NOTAJRNLxxxxxxxx", 0).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic { .. }));
    }

    #[test]
    fn empty_and_torn_header_are_empty_journals() {
        assert!(read_journal(b"", 0).unwrap().is_empty());
        assert!(read_journal(&MAGIC_JOURNAL[..5], 0).unwrap().is_empty());
    }
}
