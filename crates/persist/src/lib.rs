//! `indra-persist` — durable snapshot store and write-ahead delta
//! journal for crash-safe fleet resume.
//!
//! The INDRA determinism contract makes a run's `FleetStats` a pure
//! function of its `FleetConfig`; this crate extends that contract
//! across process death. A frozen [`indra_core::SystemState`] is a
//! *total* capture — cache and TLB warmth, DRAM open rows, trace FIFO,
//! monitor shadow stacks, backup-scheme bitvectors, OS tables, the run
//! report — so a system thawed from a checkpoint replays the remaining
//! requests cycle-for-cycle identically to the uninterrupted run.
//!
//! Three layers:
//!
//! * **wire / codec** — a length-checked little-endian encoding of the
//!   full system state, deterministic byte-for-byte (equal states →
//!   equal bytes), with the physical page frames split out so they can
//!   be delta-journaled.
//! * **snapshot / journal** — the file formats: a versioned, per-section
//!   CRC-protected full snapshot (`base.snap`, magic `INDRASNP`) and an
//!   append-only record journal (`journal.wal`, magic `INDRAJNL`) that
//!   tolerates a torn tail after a crash.
//! * **store** — the on-disk layout (`fleet.meta` + `shard-NNNN/`
//!   directories), the atomic temp-file-and-rename protocol, the
//!   frame-diff checkpoint writer and journal-replay recovery.
//!
//! Everything is in-tree: no serialization or checksum crates, matching
//! the fully-offline container build.

#![warn(missing_docs)]

mod codec;
mod crc;
mod error;
mod ingress;
mod journal;
mod snapshot;
mod store;
mod wire;

pub use codec::{decode_small_state, encode_small_state, encode_state_sections};
pub use crc::crc32;
pub use error::PersistError;
pub use ingress::{
    encode_ingress_header, encode_ingress_record, read_ingress_log, IngressKind,
    IngressLogContents, IngressRecord, IngressWriter, INGRESS_FILE, MAGIC_INGRESS,
};
pub use journal::{
    encode_journal_header, encode_record, read_journal, JournalRecord, MAGIC_JOURNAL,
};
pub use snapshot::{decode_snapshot, encode_snapshot, Frame, FORMAT_VERSION, MAGIC_SNAPSHOT};
pub use store::{
    CheckpointReceipt, LoadedShard, ShardCheckpointWriter, SnapshotStore, BASE_FILE, JOURNAL_FILE,
    MAGIC_META, META_FILE,
};
pub use wire::{WireReader, WireResult, WireWriter};
