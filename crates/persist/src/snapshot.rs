//! Versioned binary snapshot format — a complete frozen system in one
//! file.
//!
//! Layout (all little-endian):
//!
//! ```text
//! "INDRASNP"            8-byte magic
//! version: u32          FORMAT_VERSION
//! section "state"       u32 len | u32 crc32 | small-state blob
//! section "frames"      u32 len | u32 crc32 | frame table
//! section "progress"    u32 len | u32 crc32 | caller-opaque blob
//! ```
//!
//! The frame table is `u32 count` followed by `count` entries of
//! `u32 ppn` + one raw 4 KiB page. Each section carries its own CRC so
//! a flipped bit anywhere decodes to a precise
//! [`ChecksumMismatch`](crate::PersistError::ChecksumMismatch) instead
//! of garbage state. The progress section is opaque to this crate — the
//! fleet layer stores its shard cursor there.

use indra_core::SystemState;
use indra_mem::PAGE_SIZE;

use crate::codec::{decode_small_state, encode_small_state};
use crate::{crc32, PersistError, WireReader, WireResult, WireWriter};

/// Magic bytes opening every snapshot file.
pub const MAGIC_SNAPSHOT: &[u8; 8] = b"INDRASNP";
/// Format version written (and the only one read) by this build.
/// v5 added the per-detection `insns_into_request` scoring counter.
pub const FORMAT_VERSION: u32 = 5;

/// One physical page frame: page number + contents.
pub type Frame = (u32, Box<[u8; PAGE_SIZE as usize]>);

pub(crate) fn enc_frames(w: &mut WireWriter, frames: &[Frame]) {
    w.seq(frames.len());
    for (ppn, data) in frames {
        w.u32(*ppn);
        w.raw(&data[..]);
    }
}

pub(crate) fn dec_frames(r: &mut WireReader<'_>) -> WireResult<Vec<Frame>> {
    let page = PAGE_SIZE as usize;
    let n = r.seq(4 + page, "frame table")?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let ppn = r.u32("frame ppn")?;
        let raw = r.raw(page, "frame contents")?;
        let mut data = Box::new([0u8; PAGE_SIZE as usize]);
        data.copy_from_slice(raw);
        frames.push((ppn, data));
    }
    Ok(frames)
}

fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&u32::try_from(payload.len()).expect("section too large").to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn read_section<'a>(
    r: &mut WireReader<'a>,
    section: &'static str,
) -> Result<&'a [u8], PersistError> {
    let len = r.seq(1, section)?;
    let stored = r.u32(section)?;
    let payload = r.raw(len, section)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch { section, stored, computed });
    }
    Ok(payload)
}

/// Checks an 8-byte magic + `u32` version header.
pub(crate) fn read_header(
    r: &mut WireReader<'_>,
    expected: &'static [u8; 8],
) -> Result<(), PersistError> {
    let raw = r.raw(8, "file magic")?;
    if raw != expected {
        let mut found = [0u8; 8];
        found.copy_from_slice(raw);
        return Err(PersistError::BadMagic { expected, found });
    }
    let found = r.u32("format version")?;
    if found != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found, supported: FORMAT_VERSION });
    }
    Ok(())
}

/// Encodes a full snapshot file: the frozen system plus an opaque
/// `progress` blob for the caller's own bookkeeping.
#[must_use]
pub fn encode_snapshot(state: &SystemState, progress: &[u8]) -> Vec<u8> {
    let small = encode_small_state(state);
    let mut fw = WireWriter::new();
    enc_frames(&mut fw, &state.machine.phys.frames);
    let frames = fw.finish();

    let mut out = Vec::with_capacity(20 + small.len() + frames.len() + progress.len() + 24);
    out.extend_from_slice(MAGIC_SNAPSHOT);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    write_section(&mut out, &small);
    write_section(&mut out, &frames);
    write_section(&mut out, progress);
    out
}

/// Decodes a snapshot file back into a [`SystemState`] (physical frames
/// included) and the caller's progress blob.
///
/// # Errors
///
/// Typed [`PersistError`] on bad magic, unsupported version, any
/// section CRC mismatch, truncation or trailing garbage. Never panics.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SystemState, Vec<u8>), PersistError> {
    let mut r = WireReader::new(bytes);
    read_header(&mut r, MAGIC_SNAPSHOT)?;
    let small = read_section(&mut r, "state")?;
    let frames_raw = read_section(&mut r, "frames")?;
    let progress = read_section(&mut r, "progress")?;
    r.expect_exhausted("snapshot trailing bytes")?;

    let mut state = decode_small_state(small)?;
    let mut fr = WireReader::new(frames_raw);
    state.machine.phys.frames = dec_frames(&mut fr)?;
    fr.expect_exhausted("frame table trailing bytes")?;
    Ok((state, progress.to_vec()))
}
