//! On-disk checkpoint store: one directory per fleet, one subdirectory
//! per shard.
//!
//! ```text
//! <root>/
//!   fleet.meta            fleet-level config blob (caller-opaque)
//!   shard-0000/
//!     base.snap           full snapshot (see `snapshot` module)
//!     journal.wal         delta records since base (see `journal`)
//!   shard-0001/ ...
//! ```
//!
//! Durability protocol:
//!
//! * `base.snap` and `fleet.meta` are written to a temp file in the same
//!   directory, synced, then atomically renamed into place — a reader
//!   (or a crash) never observes a half-written file under the final
//!   name.
//! * `journal.wal` is append-only; each record is synced after the
//!   append. A crash tears at most the tail record, which recovery
//!   discards (see [`read_journal`]).
//! * The journal header embeds the CRC-32 of the exact `base.snap` bytes
//!   it extends, so a crash *between* rewriting the base and resetting
//!   the journal cannot cause stale deltas to be replayed onto a new
//!   base — they are detected and ignored.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use indra_core::SystemState;
use indra_mem::PAGE_SIZE;

use crate::journal::{encode_journal_header, encode_record, read_journal, JournalRecord};
use crate::snapshot::{decode_snapshot, encode_snapshot, Frame};
use crate::{crc32, PersistError};

/// File name of the fleet-level metadata blob.
pub const META_FILE: &str = "fleet.meta";
/// File name of a shard's full base snapshot.
pub const BASE_FILE: &str = "base.snap";
/// File name of a shard's write-ahead delta journal.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Magic bytes opening the fleet metadata file.
pub const MAGIC_META: &[u8; 8] = b"INDRAMET";

/// A checkpoint directory holding one fleet's durable state.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    root: PathBuf,
}

/// A shard's state as recovered from `base.snap` + journal replay.
#[derive(Debug)]
pub struct LoadedShard {
    /// The frozen system, frames included, at the last valid checkpoint.
    pub state: SystemState,
    /// The caller's progress blob from that checkpoint.
    pub progress: Vec<u8>,
    /// Sequence number of that checkpoint (0 = the base snapshot).
    pub seq: u64,
}

/// Writes `bytes` to `path` atomically: temp file, sync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

impl SnapshotStore {
    /// Creates (or reuses) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn create(root: impl Into<PathBuf>) -> Result<SnapshotStore, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SnapshotStore { root })
    }

    /// Opens an existing checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] when the path is not a directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<SnapshotStore, PersistError> {
        let root = root.into();
        if !root.is_dir() {
            return Err(PersistError::Corrupt { context: "checkpoint path is not a directory" });
        }
        Ok(SnapshotStore { root })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the shard subdirectory for `shard`.
    #[must_use]
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:04}"))
    }

    /// Writes the fleet metadata blob (atomic replace), wrapped with
    /// magic, version and a CRC.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn write_meta(&self, payload: &[u8]) -> Result<(), PersistError> {
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(MAGIC_META);
        bytes.extend_from_slice(&crate::snapshot::FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        write_atomic(&self.root.join(META_FILE), &bytes)
    }

    /// Reads back the fleet metadata blob written by
    /// [`SnapshotStore::write_meta`].
    ///
    /// # Errors
    ///
    /// I/O failure, bad magic, unsupported version or CRC mismatch.
    pub fn read_meta(&self) -> Result<Vec<u8>, PersistError> {
        let bytes = fs::read(self.root.join(META_FILE))?;
        let mut r = crate::WireReader::new(&bytes);
        crate::snapshot::read_header(&mut r, MAGIC_META)?;
        let stored = r.u32("meta crc")?;
        let payload = r.raw(r.remaining(), "meta payload")?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { section: "meta", stored, computed });
        }
        Ok(payload.to_vec())
    }

    /// Opens a checkpoint writer for `shard`, creating its directory.
    /// The writer's first checkpoint rewrites `base.snap` from scratch
    /// and resets the journal; later checkpoints append deltas.
    ///
    /// # Errors
    ///
    /// I/O failure creating the shard directory.
    pub fn shard_writer(&self, shard: usize) -> Result<ShardCheckpointWriter, PersistError> {
        let dir = self.shard_dir(shard);
        fs::create_dir_all(&dir)?;
        Ok(ShardCheckpointWriter { dir, cache: BTreeMap::new(), seq: 0, journal: None })
    }

    /// Recovers a shard's last valid checkpoint, replaying the journal
    /// over the base snapshot. Returns `Ok(None)` when the shard has no
    /// base snapshot yet (fresh start).
    ///
    /// # Errors
    ///
    /// [`PersistError::MissingShard`] when the shard's directory does
    /// not exist at all — every shard creates its directory at startup,
    /// so a missing one means the store was externally damaged (a fresh
    /// shard that never checkpointed has a directory with no base
    /// snapshot, and loads as `Ok(None)`). A damaged *base* snapshot is
    /// a hard error (it is written atomically, so damage means real
    /// corruption, not a crash). A torn or stale journal is not —
    /// replay simply stops at the last valid record.
    pub fn load_shard(&self, shard: usize) -> Result<Option<LoadedShard>, PersistError> {
        let dir = self.shard_dir(shard);
        if !dir.is_dir() {
            return Err(PersistError::MissingShard { shard });
        }
        let base_path = dir.join(BASE_FILE);
        let base_bytes = match fs::read(&base_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let base_id = crc32(&base_bytes);
        let (mut state, mut progress) = decode_snapshot(&base_bytes)?;
        let mut seq = 0u64;

        let journal_bytes = match fs::read(dir.join(JOURNAL_FILE)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let records = read_journal(&journal_bytes, base_id)?;
        if let Some(last) = records.last() {
            // Frame deltas compose record by record; only the final
            // small state and progress matter.
            let mut frames: BTreeMap<u32, Box<[u8; PAGE_SIZE as usize]>> =
                state.machine.phys.frames.drain(..).collect();
            for rec in &records {
                for (ppn, data) in &rec.changed {
                    frames.insert(*ppn, data.clone());
                }
                for ppn in &rec.removed {
                    frames.remove(ppn);
                }
            }
            state = crate::codec::decode_small_state(&last.small)?;
            state.machine.phys.frames = frames.into_iter().collect();
            progress = last.progress.clone();
            seq = last.seq;
        }
        Ok(Some(LoadedShard { state, progress, seq }))
    }
}

/// What one durable checkpoint cost: page frames serialized and bytes
/// written to disk. Host-side accounting only — it feeds the operator
/// report (`FleetReport`), never deterministic guest state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReceipt {
    /// Bytes this checkpoint added to the store.
    pub bytes: u64,
    /// Page frames serialized (base: all resident; delta: only pages
    /// dirtied since the previous cut).
    pub pages: u64,
}

impl CheckpointReceipt {
    /// Accumulates another checkpoint's cost.
    pub fn absorb(&mut self, other: CheckpointReceipt) {
        self.bytes += other.bytes;
        self.pages += other.pages;
    }
}

/// Incremental checkpoint writer for one shard.
///
/// Keeps an in-memory copy of the frames as last written, so each
/// checkpoint after the first only serializes the pages that actually
/// changed — the amortized cost of a checkpoint is proportional to the
/// write set of the interval, not to resident memory.
#[derive(Debug)]
pub struct ShardCheckpointWriter {
    dir: PathBuf,
    cache: BTreeMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
    seq: u64,
    journal: Option<File>,
}

impl ShardCheckpointWriter {
    /// Sequence number of the last checkpoint written (0 = base only).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Durably records `state` + `progress`. The first call writes a
    /// fresh `base.snap` (atomic replace) and resets the journal; every
    /// later call appends one delta record and syncs it. Returns what
    /// the cut cost — with per-request compartment tagging upstream the
    /// delta records shrink to the pages actually dirtied since the
    /// last cut, and the receipt is how that shows up in reports.
    ///
    /// # Errors
    ///
    /// I/O failure; on error the previous checkpoint remains recoverable.
    pub fn checkpoint(
        &mut self,
        state: &SystemState,
        progress: &[u8],
    ) -> Result<CheckpointReceipt, PersistError> {
        if let Some(journal) = self.journal.as_mut() {
            self.seq += 1;
            let mut changed: Vec<Frame> = Vec::new();
            let mut live = std::collections::BTreeSet::new();
            for (ppn, data) in &state.machine.phys.frames {
                live.insert(*ppn);
                if self.cache.get(ppn).is_none_or(|old| old[..] != data[..]) {
                    changed.push((*ppn, data.clone()));
                }
            }
            let removed: Vec<u32> =
                self.cache.keys().copied().filter(|ppn| !live.contains(ppn)).collect();
            let rec = JournalRecord {
                seq: self.seq,
                small: crate::codec::encode_small_state(state),
                changed,
                removed,
                progress: progress.to_vec(),
            };
            let encoded = encode_record(&rec);
            let receipt =
                CheckpointReceipt { bytes: encoded.len() as u64, pages: rec.changed.len() as u64 };
            journal.write_all(&encoded)?;
            journal.sync_all()?;
            for (ppn, data) in rec.changed {
                self.cache.insert(ppn, data);
            }
            for ppn in rec.removed {
                self.cache.remove(&ppn);
            }
            Ok(receipt)
        } else {
            // First checkpoint: full base snapshot, then a fresh journal
            // bound to it. Order matters — see the module docs.
            let bytes = encode_snapshot(state, progress);
            let base_id = crc32(&bytes);
            let receipt = CheckpointReceipt {
                bytes: bytes.len() as u64,
                pages: state.machine.phys.frames.len() as u64,
            };
            write_atomic(&self.dir.join(BASE_FILE), &bytes)?;
            write_atomic(&self.dir.join(JOURNAL_FILE), &encode_journal_header(base_id))?;
            let journal = OpenOptions::new().append(true).open(self.dir.join(JOURNAL_FILE))?;
            self.journal = Some(journal);
            self.seq = 0;
            self.cache = state.machine.phys.frames.iter().map(|(p, d)| (*p, d.clone())).collect();
            Ok(receipt)
        }
    }
}
