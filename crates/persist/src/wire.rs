//! Length-checked little-endian wire primitives.
//!
//! Every multi-byte value is little-endian; every variable-length field
//! is length-prefixed with a `u32`. The reader bounds-checks *before*
//! touching the buffer and validates length prefixes against the bytes
//! actually remaining, so a truncated or hostile file can never cause a
//! panic or an absurd allocation — only a typed [`PersistError`].

use crate::PersistError;

/// Serializer: appends fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a collection length as a `u32` prefix.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds `u32::MAX` (no in-memory state comes
    /// close; a silent wrap would corrupt the stream).
    pub fn seq(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("sequence too long for wire format"));
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.seq(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (fixed-size payloads whose
    /// length the format dictates, e.g. page frames).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends an `Option<u32>` as a presence byte + value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u32(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends an `Option<u64>` as a presence byte + value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }
}

/// Deserializer: consumes fields from a byte slice, front to back.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Shorthand for the reader's error type.
pub type WireResult<T> = Result<T, PersistError>;

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer was consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> WireResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool; any value other than 0/1 is corrupt.
    pub fn bool(&mut self, context: &'static str) -> WireResult<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt { context }),
        }
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, context: &'static str) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, context)?.try_into().expect("sized")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("sized")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("sized")))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self, context: &'static str) -> WireResult<u128> {
        Ok(u128::from_le_bytes(self.take(16, context)?.try_into().expect("sized")))
    }

    /// Reads a `usize` written by [`WireWriter::usize`].
    pub fn usize(&mut self, context: &'static str) -> WireResult<usize> {
        usize::try_from(self.u64(context)?).map_err(|_| PersistError::Corrupt { context })
    }

    /// Reads a sequence length and validates it against the bytes left:
    /// a claimed `len` of elements each at least `min_elem_size` bytes
    /// cannot exceed the remainder, so hostile lengths cannot trigger
    /// huge allocations.
    pub fn seq(&mut self, min_elem_size: usize, context: &'static str) -> WireResult<usize> {
        let len = self.u32(context)? as usize;
        if len.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(PersistError::Truncated { context });
        }
        Ok(len)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> WireResult<&'a [u8]> {
        let len = self.seq(1, context)?;
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> WireResult<String> {
        let raw = self.bytes(context)?;
        String::from_utf8(raw.to_vec()).map_err(|_| PersistError::Corrupt { context })
    }

    /// Reads exactly `n` un-prefixed bytes.
    pub fn raw(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        self.take(n, context)
    }

    /// Reads an `Option<u32>` written by [`WireWriter::opt_u32`].
    pub fn opt_u32(&mut self, context: &'static str) -> WireResult<Option<u32>> {
        Ok(if self.bool(context)? { Some(self.u32(context)?) } else { None })
    }

    /// Reads an `Option<u64>` written by [`WireWriter::opt_u64`].
    pub fn opt_u64(&mut self, context: &'static str) -> WireResult<Option<u64>> {
        Ok(if self.bool(context)? { Some(self.u64(context)?) } else { None })
    }

    /// Errors unless every byte was consumed — catches encoder/decoder
    /// drift early instead of silently ignoring trailing garbage.
    pub fn expect_exhausted(&self, context: &'static str) -> WireResult<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(PersistError::Corrupt { context })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX - 9);
        w.usize(123_456);
        w.bytes(b"abc");
        w.str("snapshot");
        w.opt_u32(Some(5));
        w.opt_u32(None);
        w.opt_u64(Some(99));
        let bytes = w.finish();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert!(r.bool("t").unwrap());
        assert_eq!(r.u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 3);
        assert_eq!(r.u128("t").unwrap(), u128::MAX - 9);
        assert_eq!(r.usize("t").unwrap(), 123_456);
        assert_eq!(r.bytes("t").unwrap(), b"abc");
        assert_eq!(r.str("t").unwrap(), "snapshot");
        assert_eq!(r.opt_u32("t").unwrap(), Some(5));
        assert_eq!(r.opt_u32("t").unwrap(), None);
        assert_eq!(r.opt_u64("t").unwrap(), Some(99));
        r.expect_exhausted("t").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.u64(1);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(matches!(r.u64("t"), Err(PersistError::Truncated { .. })));
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = WireWriter::new();
        w.u32(u32::MAX); // claims 4 GiB of elements
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.seq(1, "t"), Err(PersistError::Truncated { .. })));
        let mut r2 = WireReader::new(&bytes);
        assert!(r2.bytes("t").is_err());
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(r.bool("t"), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = WireReader::new(&[0, 1]);
        let _ = r.u8("t").unwrap();
        assert!(r.expect_exhausted("t").is_err());
    }
}
