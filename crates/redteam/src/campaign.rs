//! Coverage-guided campaign: evaluate, evolve and minimize payloads.
//!
//! Each candidate [`Genome`] runs against a *fresh* [`IndraSystem`]
//! (deterministic — no state leaks between candidates): a benign warmup,
//! the payload request(s), then trailing benign traffic so dormant
//! corruption can express. The [`Score`] measures how far the attack got
//! before detection — instructions retired into the failing request,
//! writes that actually landed (read back through the MMU after the run,
//! so post-recovery memory is what counts), policy checks the monitor
//! approved, and benign requests served afterwards. Undetected payloads
//! score highest; within a detected family, later detection wins.
//!
//! [`run_campaign`] does a small seeded evolutionary loop per family
//! (random cohort → keep the fittest → mutate it), then greedily
//! [`minimize`]s the best payload while preserving its *outcome class*
//! (detected? same cause? writes still landing?) — the shrunken genomes
//! become the regression corpus.

use indra_core::{FailureCause, IndraSystem, RunState, SystemConfig, ViolationKind};
use indra_isa::Image;
use indra_rng::{derive_seed, Rng};
use indra_workloads::{benign_request, build_app_scaled, ServiceApp};

use crate::genome::{AttackFamily, Genome};

/// How a run ended, collapsed to the classes the corpus pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CauseClass {
    /// No detection at all.
    None,
    /// Monitor inspection fired (any [`ViolationKind`]).
    Violation,
    /// Hardware fault (page fault, illegal instruction, …).
    Fault,
    /// Watchdog instruction-budget timeout.
    Timeout,
}

impl CauseClass {
    /// Stable name for fixtures and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CauseClass::None => "none",
            CauseClass::Violation => "violation",
            CauseClass::Fault => "fault",
            CauseClass::Timeout => "timeout",
        }
    }

    /// Inverse of [`CauseClass::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<CauseClass> {
        [CauseClass::None, CauseClass::Violation, CauseClass::Fault, CauseClass::Timeout]
            .into_iter()
            .find(|c| c.as_str() == s)
    }

    fn from_cause(c: FailureCause) -> CauseClass {
        match c {
            FailureCause::Violation(_) => CauseClass::Violation,
            FailureCause::Fault => CauseClass::Fault,
            FailureCause::Timeout => CauseClass::Timeout,
        }
    }
}

impl std::fmt::Display for CauseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How far one payload got before the framework stopped it (or didn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Score {
    /// Whether any detection fired after the warmup.
    pub detected: bool,
    /// The detection's cause class ([`CauseClass::None`] if undetected).
    pub cause: CauseClass,
    /// The precise violation kind, when the cause was a violation.
    pub violation: Option<ViolationKind>,
    /// Detection latency: instructions the failing request had retired
    /// at detection. For undetected payloads, the instructions the
    /// payload request retired end-to-end (its full budget of damage).
    pub insns_into_request: u64,
    /// Attack writes that *survived* the run (read back post-recovery).
    pub writes_landed: u32,
    /// Indirect-target checks the monitor approved during the run —
    /// every one a policy gate the payload passed.
    pub policy_checks_passed: u64,
    /// Benign requests served after the payload went in.
    pub requests_survived: u32,
    /// Scalar fitness: undetected ≫ late-detected ≫ early-detected,
    /// with landed writes and surviving traffic as tiebreakers.
    pub fitness: u64,
}

/// Evaluation harness configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Which generated service to attack.
    pub app: ServiceApp,
    /// Workload scale factor. Scaling *divides* per-request work, so a
    /// larger factor keeps per-candidate cost down (httpd at 8 retires
    /// ≈ 135 K instructions per benign request).
    pub scale: u32,
    /// Watchdog budget per request. Must comfortably exceed a benign
    /// request's instruction count at `scale`, while keeping exhaustion
    /// attacks from running forever.
    pub request_timeout_insns: u64,
    /// Benign requests after the payload (floor; dormant genomes may ask
    /// for more via [`Genome::trailing`]).
    pub trailing: u32,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { app: ServiceApp::Httpd, scale: 8, request_timeout_insns: 400_000, trailing: 3 }
    }
}

/// Reusable evaluator: builds the target image once, runs each candidate
/// in a fresh system.
pub struct Evaluator {
    cfg: EvalConfig,
    image: Image,
}

/// Warmup traffic before the payload (establishes the benign baseline).
const WARMUP: u32 = 2;

impl Evaluator {
    /// Builds the target service for `cfg`.
    #[must_use]
    pub fn new(cfg: EvalConfig) -> Evaluator {
        let image = build_app_scaled(cfg.app, cfg.scale);
        Evaluator { cfg, image }
    }

    /// The image under attack (for symbol lookups in validation tests).
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// The harness configuration.
    #[must_use]
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// Runs `genome` once and scores it. Deterministic: same genome,
    /// same score, always.
    ///
    /// # Panics
    ///
    /// Panics if the service image fails to deploy (a harness bug, not
    /// an attack outcome).
    #[must_use]
    pub fn evaluate(&self, genome: &Genome) -> Score {
        let sys_cfg = SystemConfig {
            request_timeout_insns: self.cfg.request_timeout_insns,
            ..SystemConfig::default()
        };
        let mut sys = IndraSystem::new(sys_cfg);
        let pid = sys.deploy(&self.image).expect("service image deploys");
        let asid = sys.os().asid_of(pid);

        for i in 0..WARMUP {
            sys.push_request(benign_request((i % 4) as u8, 0x11), false);
            settle(&mut sys);
        }
        let warm_detections = sys.report().detections.len();
        assert_eq!(warm_detections, 0, "benign warmup must not trip detection");
        let warm_benign = sys.report().benign_served;

        let mut payload_ids = Vec::new();
        for data in genome.requests(&self.image) {
            payload_ids.push(sys.push_request(data, true));
            settle(&mut sys);
        }
        let trailing = self.cfg.trailing.max(genome.trailing());
        for i in 0..trailing {
            sys.push_request(benign_request((i % 4) as u8, 0x22), false);
            settle(&mut sys);
        }
        drop(sys.take_responses());

        let report = sys.report();
        let detection = report.detections.get(warm_detections).copied();
        let detected = detection.is_some();
        let (cause, violation) = match detection.map(|d| d.cause) {
            Some(FailureCause::Violation(v)) => (CauseClass::Violation, Some(v)),
            Some(c) => (CauseClass::from_cause(c), None),
            None => (CauseClass::None, None),
        };
        let insns_into_request = match detection {
            Some(d) => d.insns_into_request,
            // Undetected: the payload ran to completion — its full
            // instruction count is how much work the monitor approved.
            None => report
                .samples
                .iter()
                .filter(|s| payload_ids.contains(&s.request_id))
                .map(|s| s.instructions)
                .sum(),
        };
        let writes_landed = writes_landed(genome, &sys, asid, &self.image);
        let requests_survived = (sys.report().benign_served - warm_benign) as u32;
        let policy_checks_passed =
            sys.monitor().stats().indirect_checks.saturating_sub(sys.monitor().stats().violations);

        let fitness = if detected { 0 } else { 1_000_000 }
            + insns_into_request
            + 50_000 * u64::from(writes_landed)
            + 10_000 * u64::from(requests_survived);

        Score {
            detected,
            cause,
            violation,
            insns_into_request,
            writes_landed,
            policy_checks_passed,
            requests_survived,
            fitness,
        }
    }
}

/// Runs the system until the request queue drains (bounded).
fn settle(sys: &mut IndraSystem) {
    for _ in 0..64 {
        match sys.run(100_000) {
            RunState::BudgetExhausted => continue,
            _ => break,
        }
    }
}

/// Counts attack writes that survived the run, by reading the planted
/// locations back through the MMU (post-recovery memory — rolled-back
/// writes do *not* count as landed).
fn writes_landed(genome: &Genome, sys: &IndraSystem, asid: u16, image: &Image) -> u32 {
    match genome {
        Genome::JopChain { slots, target, .. } => {
            let handlers = image.addr_of("handlers").expect("service symbol `handlers`");
            let planted =
                image.addr_of(&format!("handler_{}", target & 3)).expect("service handler symbol");
            slots
                .iter()
                .filter(|&&s| {
                    sys.machine().read_virtual_u32(asid, handlers + 4 * u32::from(s & 3))
                        == Some(planted)
                })
                .count() as u32
        }
        Genome::DormantSpan { mapped, .. } => {
            let latch = image.addr_of("latch").expect("service symbol `latch`");
            let expect = if *mapped {
                image.addr_of("workset").expect("service symbol `workset`") + 256
            } else {
                crate::genome::UNMAPPED_ADDR
            };
            u32::from(sys.machine().read_virtual_u32(asid, latch) == Some(expect))
        }
        // Stack and scan families leave nothing durable behind.
        Genome::RopRet { .. } | Genome::Exhaust { .. } => 0,
    }
}

/// The outcome class minimization must preserve: a shrunken payload that
/// changes any of these is a *different* attack, not a smaller one.
#[must_use]
pub fn outcome_class(score: &Score) -> (bool, CauseClass, bool) {
    (score.detected, score.cause, score.writes_landed > 0)
}

/// Greedy genome minimization: try family-specific shrink steps, keep
/// each one that preserves [`outcome_class`]. Returns the smallest
/// genome found and its score.
#[must_use]
pub fn minimize(eval: &Evaluator, genome: &Genome, score: &Score) -> (Genome, Score) {
    let class = outcome_class(score);
    let mut best = genome.clone();
    let mut best_score = *score;
    loop {
        let mut improved = false;
        for candidate in shrink_steps(&best) {
            let s = eval.evaluate(&candidate);
            if outcome_class(&s) == class {
                best = candidate;
                best_score = s;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, best_score);
        }
    }
}

/// Strictly-smaller candidates, most aggressive first.
fn shrink_steps(genome: &Genome) -> Vec<Genome> {
    let mut out = Vec::new();
    match genome {
        Genome::JopChain { slots, target, pad } => {
            if slots.len() > 1 {
                out.push(Genome::JopChain {
                    slots: slots[..1].to_vec(),
                    target: *target,
                    pad: *pad,
                });
                out.push(Genome::JopChain {
                    slots: slots[..slots.len() - 1].to_vec(),
                    target: *target,
                    pad: *pad,
                });
            }
            if *pad > 0 {
                out.push(Genome::JopChain { slots: slots.clone(), target: *target, pad: 0 });
                out.push(Genome::JopChain { slots: slots.clone(), target: *target, pad: pad / 2 });
            }
        }
        Genome::RopRet { off } => {
            if *off > 1 {
                out.push(Genome::RopRet { off: 1 });
                out.push(Genome::RopRet { off: off / 2 });
            }
        }
        Genome::DormantSpan { mapped, span } => {
            if *span > 1 {
                out.push(Genome::DormantSpan { mapped: *mapped, span: 1 });
                out.push(Genome::DormantSpan { mapped: *mapped, span: span / 2 });
            }
        }
        Genome::Exhaust { scan_len } => {
            if *scan_len > 100 {
                out.push(Genome::Exhaust { scan_len: scan_len / 2 });
                out.push(Genome::Exhaust { scan_len: scan_len - scan_len / 4 });
            }
        }
    }
    out.retain(|g| g != genome);
    out
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The payload.
    pub genome: Genome,
    /// Its score.
    pub score: Score,
}

/// Per-family campaign results.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// The family.
    pub family: AttackFamily,
    /// Every candidate evaluated, in evaluation order.
    pub evaluated: Vec<Candidate>,
    /// The fittest candidate, minimized.
    pub best: Candidate,
}

impl FamilyReport {
    /// Detection latencies (sorted) over the detected candidates.
    #[must_use]
    pub fn latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .evaluated
            .iter()
            .filter(|c| c.score.detected)
            .map(|c| c.score.insns_into_request)
            .collect();
        v.sort_unstable();
        v
    }

    /// Candidates that were never detected.
    #[must_use]
    pub fn undetected(&self) -> usize {
        self.evaluated.iter().filter(|c| !c.score.detected).count()
    }
}

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Evaluation harness settings.
    pub eval: EvalConfig,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Random candidates per family in the seeding cohort.
    pub cohort: u32,
    /// Mutation steps applied to the running best after the cohort.
    pub mutations: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { eval: EvalConfig::default(), seed: 1, cohort: 4, mutations: 4 }
    }
}

/// Full campaign output.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the run derived from.
    pub seed: u64,
    /// One report per family, in [`AttackFamily::ALL`] order.
    pub families: Vec<FamilyReport>,
}

impl CampaignReport {
    /// Total candidates evaluated.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.families.iter().map(|f| f.evaluated.len()).sum()
    }

    /// Total detections across families.
    #[must_use]
    pub fn detections(&self) -> usize {
        self.families.iter().map(|f| f.latencies().len()).sum()
    }
}

/// Runs the full seeded campaign: per family, a random cohort, then
/// hill-climbing mutations of the fittest, then greedy minimization of
/// the winner. Byte-deterministic for a given `cfg`.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let eval = Evaluator::new(cfg.eval.clone());
    let mut families = Vec::new();
    for (fi, family) in AttackFamily::ALL.into_iter().enumerate() {
        let mut rng = Rng::seed_from_u64(derive_seed(cfg.seed, fi as u64));
        let mut evaluated: Vec<Candidate> = Vec::new();
        for _ in 0..cfg.cohort {
            let genome = Genome::random(family, &mut rng);
            let score = eval.evaluate(&genome);
            evaluated.push(Candidate { genome, score });
        }
        let mut best =
            evaluated.iter().max_by_key(|c| c.score.fitness).expect("cohort is non-empty").clone();
        for _ in 0..cfg.mutations {
            let genome = best.genome.mutate(&mut rng);
            let score = eval.evaluate(&genome);
            let better = score.fitness > best.score.fitness;
            evaluated.push(Candidate { genome: genome.clone(), score });
            if better {
                best = Candidate { genome, score };
            }
        }
        let (genome, score) = minimize(&eval, &best.genome, &best.score);
        families.push(FamilyReport { family, evaluated, best: Candidate { genome, score } });
    }
    CampaignReport { seed: cfg.seed, families }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator() -> Evaluator {
        Evaluator::new(EvalConfig::default())
    }

    #[test]
    fn jop_chain_lands_writes_undetected() {
        // The headline result: planting a *registered* target into the
        // dispatch table via format writes passes every inspection. The
        // hijack is monitor-approved — that's the residual surface.
        let eval = evaluator();
        let g = Genome::JopChain { slots: vec![3], target: 2, pad: 4 };
        let s = eval.evaluate(&g);
        assert!(!s.detected, "in-policy plant must not be detected: {s:?}");
        assert_eq!(s.writes_landed, 1, "the planted slot survives: {s:?}");
        assert!(s.policy_checks_passed > 0);
        assert!(s.requests_survived >= 3, "service keeps serving: {s:?}");
    }

    #[test]
    fn rop_ret_is_detected_early_by_the_shadow_stack() {
        let eval = evaluator();
        let s = eval.evaluate(&Genome::RopRet { off: 2 });
        assert!(s.detected);
        assert_eq!(s.cause, CauseClass::Violation);
        assert_eq!(s.violation, Some(ViolationKind::ReturnMismatch));
        assert_eq!(s.writes_landed, 0, "smashed stack is rolled back");
    }

    #[test]
    fn dormant_unmapped_fells_a_later_benign_request() {
        let eval = evaluator();
        let s = eval.evaluate(&Genome::DormantSpan { mapped: false, span: 3 });
        assert!(s.detected, "the planted pointer faults a victim: {s:?}");
        assert_eq!(s.cause, CauseClass::Fault);
    }

    #[test]
    fn dormant_mapped_plant_is_never_detected() {
        let eval = evaluator();
        let s = eval.evaluate(&Genome::DormantSpan { mapped: true, span: 3 });
        assert!(!s.detected, "mapped plant never faults: {s:?}");
        assert_eq!(s.writes_landed, 1, "the latch survives: {s:?}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = evaluator();
        for g in [
            Genome::JopChain { slots: vec![1, 3], target: 0, pad: 16 },
            Genome::Exhaust { scan_len: 30_000 },
        ] {
            assert_eq!(eval.evaluate(&g), eval.evaluate(&g), "{g:?}");
        }
    }

    #[test]
    fn minimize_preserves_the_outcome_class() {
        let eval = evaluator();
        let g = Genome::JopChain { slots: vec![1, 1, 3], target: 2, pad: 64 };
        let s = eval.evaluate(&g);
        let (small, ss) = minimize(&eval, &g, &s);
        assert_eq!(outcome_class(&ss), outcome_class(&s));
        if let Genome::JopChain { slots, pad, .. } = &small {
            assert_eq!(slots.len(), 1, "minimizer drops redundant slots: {small:?}");
            assert_eq!(*pad, 0, "minimizer drops the pad: {small:?}");
        } else {
            panic!("minimization stays in-family");
        }
    }
}
