//! Regression corpus: minimized payloads committed as text fixtures.
//!
//! Each fixture file under `corpus/redteam/` pins one minimized payload
//! and the outcome class it must keep producing — the red-team analogue
//! of a regression test. The format is deliberately dumb
//! (`key=value` lines, `#` comments) so fixtures diff cleanly and can be
//! hand-audited:
//!
//! ```text
//! # minimized by the seeded campaign; see crates/redteam
//! version=1
//! app=httpd
//! scale=8
//! timeout=400000
//! trailing=3
//! genome=jop_chain;slots=3;target=2;pad=0
//! expect_detected=false
//! expect_cause=none
//! expect_writes_min=1
//! expect_survived_min=3
//! ```
//!
//! [`replay`] re-evaluates the genome in a fresh harness and checks
//! every expectation; `tests/redteam_corpus.rs` runs it over the whole
//! committed corpus.

use indra_workloads::ServiceApp;

use crate::campaign::{CauseClass, EvalConfig, Evaluator, Score};
use crate::genome::Genome;

/// Current fixture format version.
pub const FIXTURE_VERSION: u32 = 1;

/// The outcome a fixture pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Must (not) be detected.
    pub detected: bool,
    /// Required cause class.
    pub cause: CauseClass,
    /// Minimum writes that must land.
    pub writes_min: u32,
    /// Minimum benign requests that must still be served afterwards.
    pub survived_min: u32,
}

/// One corpus fixture: harness settings + genome + pinned outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fixture {
    /// Target service.
    pub app: ServiceApp,
    /// Workload scale.
    pub scale: u32,
    /// Watchdog budget used at minimization time.
    pub timeout: u64,
    /// Trailing benign floor used at minimization time.
    pub trailing: u32,
    /// The minimized payload.
    pub genome: Genome,
    /// What replay must observe.
    pub expect: Expectation,
}

impl Fixture {
    /// Serializes to the committed text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "# minimized by the seeded campaign; see crates/redteam\n\
             version={FIXTURE_VERSION}\n\
             app={}\n\
             scale={}\n\
             timeout={}\n\
             trailing={}\n\
             genome={}\n\
             expect_detected={}\n\
             expect_cause={}\n\
             expect_writes_min={}\n\
             expect_survived_min={}\n",
            self.app,
            self.scale,
            self.timeout,
            self.trailing,
            self.genome.serialize(),
            self.expect.detected,
            self.expect.cause,
            self.expect.writes_min,
            self.expect.survived_min,
        )
    }

    /// Parses the text format. Returns `Err` with a line-anchored
    /// message on any malformed content (hostile fixtures must not
    /// panic the test harness).
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let get = |key: &str| -> Result<&str, String> {
            text.lines()
                .filter(|l| !l.trim_start().starts_with('#'))
                .find_map(|l| l.strip_prefix(key)?.strip_prefix('='))
                .map(str::trim)
                .ok_or_else(|| format!("missing `{key}=` line"))
        };
        let version: u32 = get("version")?.parse().map_err(|e| format!("bad version: {e}"))?;
        if version != FIXTURE_VERSION {
            return Err(format!("unsupported fixture version {version}"));
        }
        let app_name = get("app")?;
        let app = ServiceApp::ALL
            .into_iter()
            .find(|a| a.name() == app_name)
            .ok_or_else(|| format!("unknown app `{app_name}`"))?;
        let genome_text = get("genome")?;
        let genome = Genome::parse(genome_text)
            .ok_or_else(|| format!("malformed genome `{genome_text}`"))?;
        let cause_name = get("expect_cause")?;
        let cause =
            CauseClass::parse(cause_name).ok_or_else(|| format!("unknown cause `{cause_name}`"))?;
        Ok(Fixture {
            app,
            scale: get("scale")?.parse().map_err(|e| format!("bad scale: {e}"))?,
            timeout: get("timeout")?.parse().map_err(|e| format!("bad timeout: {e}"))?,
            trailing: get("trailing")?.parse().map_err(|e| format!("bad trailing: {e}"))?,
            genome,
            expect: Expectation {
                detected: get("expect_detected")?
                    .parse()
                    .map_err(|e| format!("bad expect_detected: {e}"))?,
                cause,
                writes_min: get("expect_writes_min")?
                    .parse()
                    .map_err(|e| format!("bad expect_writes_min: {e}"))?,
                survived_min: get("expect_survived_min")?
                    .parse()
                    .map_err(|e| format!("bad expect_survived_min: {e}"))?,
            },
        })
    }

    /// The evaluation harness this fixture was minimized under.
    #[must_use]
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            app: self.app,
            scale: self.scale,
            request_timeout_insns: self.timeout,
            trailing: self.trailing,
        }
    }
}

/// Re-evaluates `fixture` and checks every pinned expectation. Returns
/// the fresh score and the list of violated expectations (empty = pass).
#[must_use]
pub fn replay(fixture: &Fixture) -> (Score, Vec<String>) {
    let eval = Evaluator::new(fixture.eval_config());
    let score = eval.evaluate(&fixture.genome);
    let mut failures = Vec::new();
    let e = &fixture.expect;
    if score.detected != e.detected {
        failures.push(format!("detected: expected {}, got {}", e.detected, score.detected));
    }
    if score.cause != e.cause {
        failures.push(format!("cause: expected {}, got {}", e.cause, score.cause));
    }
    if score.writes_landed < e.writes_min {
        failures.push(format!(
            "writes_landed: expected ≥ {}, got {}",
            e.writes_min, score.writes_landed
        ));
    }
    if score.requests_survived < e.survived_min {
        failures.push(format!(
            "requests_survived: expected ≥ {}, got {}",
            e.survived_min, score.requests_survived
        ));
    }
    (score, failures)
}

/// Builds the fixture pinning `genome`'s observed outcome under `cfg`.
#[must_use]
pub fn pin(cfg: &EvalConfig, genome: &Genome, score: &Score) -> Fixture {
    Fixture {
        app: cfg.app,
        scale: cfg.scale,
        timeout: cfg.request_timeout_insns,
        trailing: cfg.trailing,
        genome: genome.clone(),
        expect: Expectation {
            detected: score.detected,
            cause: score.cause,
            writes_min: score.writes_landed,
            survived_min: score.requests_survived,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fixture {
        Fixture {
            app: ServiceApp::Httpd,
            scale: 8,
            timeout: 400_000,
            trailing: 3,
            genome: Genome::JopChain { slots: vec![3], target: 2, pad: 0 },
            expect: Expectation {
                detected: false,
                cause: CauseClass::None,
                writes_min: 1,
                survived_min: 3,
            },
        }
    }

    #[test]
    fn fixture_text_round_trips() {
        let f = sample();
        assert_eq!(Fixture::parse(&f.to_text()), Ok(f));
    }

    #[test]
    fn hostile_fixture_text_is_a_typed_error() {
        for (bad, needle) in [
            ("", "missing `version=`"),
            ("version=2\n", "unsupported fixture version"),
            ("version=1\napp=skynet\n", "unknown app"),
            (
                "version=1\napp=httpd\nscale=2\ntimeout=1\ntrailing=1\ngenome=warp\n",
                "malformed genome",
            ),
        ] {
            let err = Fixture::parse(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?}: {err}");
        }
    }

    #[test]
    fn replay_pins_the_jop_fixture() {
        let (score, failures) = replay(&sample());
        assert!(failures.is_empty(), "{failures:?} (score {score:?})");
        assert!(!score.detected);
    }

    #[test]
    fn pin_then_replay_is_self_consistent() {
        let cfg = EvalConfig::default();
        let eval = Evaluator::new(cfg.clone());
        let g = Genome::RopRet { off: 1 };
        let s = eval.evaluate(&g);
        let f = pin(&cfg, &g, &s);
        let (_, failures) = replay(&f);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
