//! Attack genomes: the heritable payload shapes the campaign evolves.
//!
//! A [`Genome`] is a small, fully deterministic description of one attack
//! payload against a generated service. Families cover the offensive
//! surface the static analysis maps (`indra-analyze`'s gadget finder):
//!
//! * [`AttackFamily::JopChain`] — the CFI-*respecting* hijack: the
//!   opcode-9 formatter's write directives plant *registered* indirect
//!   targets (other handler entries, straight out of the tightened
//!   policy) into the `handlers` dispatch table. Every subsequent
//!   dispatch through a planted slot passes indirect-target inspection,
//!   so the monitor approves the hijacked control flow — the residual
//!   surface `ir32 gadgets` scores as `in_policy_pairs`.
//! * [`AttackFamily::RopRet`] — the classic smashed return address. The
//!   shadow stack makes this the *early-detected* contrast case
//!   (`ReturnMismatch` on the very next `ret`).
//! * [`AttackFamily::DormantSpan`] — opcode-8 latch plant: corruption
//!   that sleeps across requests. A *mapped* pointer never faults
//!   (undetected forever); an unmapped one fells a later benign victim
//!   (late detection, wrong request blamed — the compartment case).
//! * [`AttackFamily::Exhaust`] — opcode-9 overscan: the declared format
//!   length overshoots the payload, so the formatter walks the data
//!   segment burning instructions until the watchdog times it out or a
//!   segment-end fault lands (late detection either way; small scans
//!   complete undetected as pure resource waste).

use indra_isa::Image;
use indra_rng::Rng;
use indra_workloads::{attack_request, format_overscan_request, format_writes_request, Attack};

/// The four attack families the campaign evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    /// Format-write plant of registered targets into the dispatch table.
    JopChain,
    /// Smashed saved return address (early-detected contrast).
    RopRet,
    /// Dormant pointer corruption spanning requests.
    DormantSpan,
    /// Format-scan resource exhaustion.
    Exhaust,
}

impl AttackFamily {
    /// All four, in reporting order.
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::JopChain,
        AttackFamily::RopRet,
        AttackFamily::DormantSpan,
        AttackFamily::Exhaust,
    ];

    /// Stable snake_case name (JSON keys, corpus fixtures).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttackFamily::JopChain => "jop_chain",
            AttackFamily::RopRet => "rop_ret",
            AttackFamily::DormantSpan => "dormant_span",
            AttackFamily::Exhaust => "exhaust",
        }
    }

    /// Inverse of [`AttackFamily::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<AttackFamily> {
        AttackFamily::ALL.into_iter().find(|f| f.as_str() == s)
    }
}

impl std::fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An address mapped for no service (the dormant family's faulting gene).
pub const UNMAPPED_ADDR: u32 = indra_workloads::UNMAPPED_ADDR;

/// One heritable attack payload. Everything is plain data so that
/// serialization, mutation and replay are trivially deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Genome {
    /// Plant `handler_{target}`'s (registered) entry address into each
    /// listed `handlers` slot via opcode-9 write directives, after `pad`
    /// benign format bytes. The same request then dispatches through
    /// `handlers[1]` — possibly already the planted slot.
    JopChain {
        /// Dispatch-table slots to overwrite (taken mod 4).
        slots: Vec<u8>,
        /// Which handler entry to plant (mod 4).
        target: u8,
        /// Benign format bytes before the first directive.
        pad: u16,
    },
    /// Smash `parse`'s saved return address; the target lands mid-handler
    /// (`handler_0 + 4·off`), never on a registered entry.
    RopRet {
        /// Instruction offset into `handler_0` the smashed return jumps to.
        off: u8,
    },
    /// Opcode-8 latch plant followed by a span of benign requests.
    DormantSpan {
        /// Mapped pointer (silent, never faults) vs [`UNMAPPED_ADDR`]
        /// (fells a later benign request).
        mapped: bool,
        /// Benign requests to send after the plant.
        span: u8,
    },
    /// Opcode-9 format scan declaring `scan_len` bytes over a 16-byte
    /// payload.
    Exhaust {
        /// Declared scan length in bytes.
        scan_len: u32,
    },
}

impl Genome {
    /// The family this genome belongs to.
    #[must_use]
    pub fn family(&self) -> AttackFamily {
        match self {
            Genome::JopChain { .. } => AttackFamily::JopChain,
            Genome::RopRet { .. } => AttackFamily::RopRet,
            Genome::DormantSpan { .. } => AttackFamily::DormantSpan,
            Genome::Exhaust { .. } => AttackFamily::Exhaust,
        }
    }

    /// A random genome of `family`, drawn deterministically from `rng`.
    #[must_use]
    pub fn random(family: AttackFamily, rng: &mut Rng) -> Genome {
        match family {
            AttackFamily::JopChain => {
                let n = 1 + rng.range_usize(0, 3);
                let slots = (0..n).map(|_| rng.gen_u8() & 3).collect();
                Genome::JopChain {
                    slots,
                    target: rng.gen_u8() & 3,
                    pad: rng.range_u32(0, 96) as u16,
                }
            }
            AttackFamily::RopRet => Genome::RopRet { off: 1 + (rng.gen_u8() % 6) },
            AttackFamily::DormantSpan => {
                Genome::DormantSpan { mapped: rng.gen_bool(), span: 1 + (rng.gen_u8() % 5) }
            }
            AttackFamily::Exhaust => Genome::Exhaust { scan_len: rng.range_u32(1_000, 80_000) },
        }
    }

    /// One mutation step: tweak a single gene, staying in-family.
    #[must_use]
    pub fn mutate(&self, rng: &mut Rng) -> Genome {
        let mut g = self.clone();
        match &mut g {
            Genome::JopChain { slots, target, pad } => match rng.gen_u8() % 4 {
                0 => {
                    if slots.len() < 4 {
                        slots.push(rng.gen_u8() & 3);
                    }
                }
                1 => {
                    if slots.len() > 1 {
                        let k = rng.range_usize(0, slots.len());
                        slots.remove(k);
                    }
                }
                2 => *target = rng.gen_u8() & 3,
                _ => *pad = rng.range_u32(0, 96) as u16,
            },
            Genome::RopRet { off } => *off = 1 + (rng.gen_u8() % 6),
            Genome::DormantSpan { mapped, span } => {
                if rng.gen_bool() {
                    *mapped = !*mapped;
                } else {
                    *span = 1 + (rng.gen_u8() % 5);
                }
            }
            Genome::Exhaust { scan_len } => {
                *scan_len = if rng.gen_bool() {
                    (*scan_len / 2).max(100)
                } else {
                    (*scan_len).saturating_mul(2).min(200_000)
                };
            }
        }
        g
    }

    /// The malicious request(s) this genome delivers against `image`.
    ///
    /// # Panics
    ///
    /// Panics if `image` lacks the standard service symbols (it must come
    /// from [`indra_workloads::build_app_scaled`]).
    #[must_use]
    pub fn requests(&self, image: &Image) -> Vec<Vec<u8>> {
        match self {
            Genome::JopChain { slots, target, pad } => {
                let handlers = image.addr_of("handlers").expect("service symbol `handlers`");
                let planted = image
                    .addr_of(&format!("handler_{}", target & 3))
                    .expect("service handler symbol");
                let writes: Vec<(u32, u32)> =
                    slots.iter().map(|&s| (handlers + 4 * u32::from(s & 3), planted)).collect();
                vec![format_writes_request(&writes, usize::from(*pad))]
            }
            Genome::RopRet { off } => {
                let target = image.addr_of("handler_0").expect("service symbol `handler_0`")
                    + 4 * u32::from(*off);
                vec![attack_request(Attack::StackSmash { target }, image)]
            }
            Genome::DormantSpan { mapped, .. } => {
                let addr = if *mapped {
                    // Deep inside `workset`: mapped, data-only, harmless
                    // to read — the plant that never trips anything.
                    image.addr_of("workset").expect("service symbol `workset`") + 256
                } else {
                    UNMAPPED_ADDR
                };
                vec![attack_request(Attack::Dormant { addr }, image)]
            }
            Genome::Exhaust { scan_len } => vec![format_overscan_request(*scan_len)],
        }
    }

    /// Benign requests the evaluator must send *after* the payload for
    /// the attack to express (dormant corruption needs victims).
    #[must_use]
    pub fn trailing(&self) -> u32 {
        match self {
            Genome::DormantSpan { span, .. } => u32::from(*span),
            _ => 0,
        }
    }

    /// Compact one-line serialization (corpus fixtures, JSON `genome`
    /// strings). Inverse of [`Genome::parse`].
    #[must_use]
    pub fn serialize(&self) -> String {
        match self {
            Genome::JopChain { slots, target, pad } => {
                let s: Vec<String> = slots.iter().map(u8::to_string).collect();
                format!("jop_chain;slots={};target={target};pad={pad}", s.join(","))
            }
            Genome::RopRet { off } => format!("rop_ret;off={off}"),
            Genome::DormantSpan { mapped, span } => {
                format!("dormant_span;mapped={mapped};span={span}")
            }
            Genome::Exhaust { scan_len } => format!("exhaust;scan_len={scan_len}"),
        }
    }

    /// Parses [`Genome::serialize`] output. Returns `None` on any
    /// malformed field (no panics on hostile fixture files).
    #[must_use]
    pub fn parse(text: &str) -> Option<Genome> {
        let mut parts = text.trim().split(';');
        let family = parts.next()?;
        let mut field =
            |name: &str| -> Option<&str> { parts.next()?.strip_prefix(name)?.strip_prefix('=') };
        match family {
            "jop_chain" => {
                let slots: Vec<u8> =
                    field("slots")?.split(',').map(|s| s.parse().ok()).collect::<Option<_>>()?;
                if slots.is_empty() || slots.len() > 8 {
                    return None;
                }
                Some(Genome::JopChain {
                    slots,
                    target: field("target")?.parse().ok()?,
                    pad: field("pad")?.parse().ok()?,
                })
            }
            "rop_ret" => Some(Genome::RopRet { off: field("off")?.parse().ok()? }),
            "dormant_span" => Some(Genome::DormantSpan {
                mapped: field("mapped")?.parse().ok()?,
                span: field("span")?.parse().ok()?,
            }),
            "exhaust" => Some(Genome::Exhaust { scan_len: field("scan_len")?.parse().ok()? }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_parse_round_trips_every_family() {
        let mut rng = Rng::seed_from_u64(7);
        for family in AttackFamily::ALL {
            for _ in 0..32 {
                let g = Genome::random(family, &mut rng);
                let text = g.serialize();
                assert_eq!(Genome::parse(&text), Some(g.clone()), "round trip of {text}");
                let m = g.mutate(&mut rng);
                assert_eq!(m.family(), family, "mutation stays in-family");
                assert_eq!(Genome::parse(&m.serialize()), Some(m));
            }
        }
    }

    #[test]
    fn hostile_fixture_lines_parse_to_none() {
        for bad in [
            "",
            "jop_chain",
            "jop_chain;slots=;target=1;pad=0",
            "jop_chain;slots=1,2,3,4,5,6,7,8,9;target=1;pad=0",
            "rop_ret;off=banana",
            "dormant_span;mapped=maybe;span=1",
            "exhaust;scan_len=-4",
            "warp_core;breach=1",
        ] {
            assert_eq!(Genome::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn family_names_round_trip() {
        for f in AttackFamily::ALL {
            assert_eq!(AttackFamily::parse(f.as_str()), Some(f));
        }
        assert_eq!(AttackFamily::parse("nope"), None);
    }

    #[test]
    fn jop_requests_write_registered_targets_only() {
        let image = indra_workloads::build_app_scaled(indra_workloads::ServiceApp::Httpd, 2);
        let registered = indra_analyze::tighten(&image).indirect_targets;
        let g = Genome::JopChain { slots: vec![1, 3], target: 2, pad: 8 };
        let req = &g.requests(&image)[0];
        // Every 9-byte directive in the payload plants a value that is a
        // *registered* indirect target — the CFI-respecting property.
        let planted = image.addr_of("handler_2").unwrap();
        assert!(registered.contains(&planted), "planted value is in the tightened policy");
        let payload = &req[10..];
        let directives = payload.iter().filter(|&&b| b == 0xFF).count();
        assert_eq!(directives, 2, "one directive per slot");
    }
}
