#![warn(missing_docs)]
//! # indra-redteam — coverage-guided offensive campaign
//!
//! The defensive complement to `indra-analyze`'s gadget finder: where
//! the static pass *maps* the residual attack surface a tightened CFI
//! policy still leaves open (registered indirect targets × dispatch
//! sites), this crate *probes* it. A deterministic, seeded mutation
//! engine ([`Genome`], four [`AttackFamily`]s) evolves real payloads
//! against the generated services and scores each by how far it gets
//! before the framework stops it ([`Score`]): instructions retired into
//! the failing request, writes that survive recovery, policy checks
//! passed, benign requests served afterwards.
//!
//! The headline adversary is the **in-policy JOP plant**: format-string
//! write directives copy one *registered* handler entry over another
//! dispatch-table slot. Every subsequent dispatch passes indirect-target
//! inspection — the monitor approves the hijacked control flow, exactly
//! the residual surface `ir32 gadgets` prices as `in_policy_pairs`.
//! Detected families (smashed returns, dormant faults, exhaustion
//! timeouts) calibrate the detection-latency distribution the
//! `redteambench` binary reports.
//!
//! Undetected or late-detected winners are [`minimize`]d — greedy
//! shrinking that preserves the outcome class — and committed as text
//! fixtures ([`Fixture`]) under `corpus/redteam/`, replayed forever
//! after by `tests/redteam_corpus.rs`.
//!
//! ```
//! use indra_redteam::{CampaignConfig, run_campaign};
//!
//! let mut cfg = CampaignConfig::default();
//! cfg.cohort = 1;
//! cfg.mutations = 0;
//! let report = run_campaign(&cfg);
//! assert_eq!(report.families.len(), 4);
//! assert!(report.detections() >= 1, "some family is caught");
//! ```

mod campaign;
mod corpus;
mod genome;

pub use campaign::{
    minimize, outcome_class, run_campaign, CampaignConfig, CampaignReport, Candidate, CauseClass,
    EvalConfig, Evaluator, FamilyReport, Score,
};
pub use corpus::{pin, replay, Expectation, Fixture, FIXTURE_VERSION};
pub use genome::{AttackFamily, Genome, UNMAPPED_ADDR};
