//! The replica benchmark: detection rate and overhead across K.
//!
//! Produces `results/BENCH_replica.json` with three run families:
//!
//! * `overhead` — clean runs at K = 1/2/3: wall ratio vs K = 1 (the
//!   replication tax; sim stats are identical by construction).
//! * `stealth` — seeded silent-corruption runs at K = 1/2/3: detection
//!   rate (divergences over strikes applied) and whether the final
//!   deterministic stats matched the clean run byte-for-byte. K = 1
//!   cannot vote, so its rate is 0 — that row *is* the paper's case
//!   for replication.
//! * `rejuvenation` — K = 3 with a cadence sweep: scheduled restarts
//!   performed, mean revive wall ms (the MTTR proxy) and wall overhead
//!   vs the no-rejuvenation K = 3 run.

use indra_core::json::{json_array, JsonObject};
use indra_fleet::{ChaosConfig, FleetConfig, FleetReport};

use crate::runner::{run_fleet_replicated, ReplicaOptions};

/// The fleet shape the bench sweeps (kept small: every run is K full
/// deterministic fleets on a possibly single-CPU host).
fn bench_config(quick: bool) -> FleetConfig {
    let mut cfg = FleetConfig::quick();
    cfg.shards = 2;
    if quick {
        cfg.requests_per_shard = 8;
    }
    cfg
}

fn run(
    cfg: &FleetConfig,
    replicas: usize,
    rejuvenate: Option<u64>,
    chaos: &ChaosConfig,
) -> Result<FleetReport, String> {
    run_fleet_replicated(
        cfg,
        &ReplicaOptions { replicas, rejuvenate_every: rejuvenate, chaos: *chaos },
    )
}

/// Runs the sweep and returns the `BENCH_replica.json` document.
///
/// # Errors
///
/// Propagates any run failure as a message.
pub fn replica_bench_json(quick: bool) -> Result<String, String> {
    let cfg = bench_config(quick);
    let off = ChaosConfig::off();
    let stealth = ChaosConfig::profile("stealth").expect("stealth profile exists");

    let mut runs: Vec<String> = Vec::new();

    // Family 1: clean overhead vs K=1.
    let mut clean_stats_json: Vec<String> = Vec::new();
    let mut base_wall = 0.0f64;
    for k in 1..=3usize {
        let report = run(&cfg, k, None, &off)?;
        if k == 1 {
            base_wall = report.wall_seconds.max(1e-9);
        }
        clean_stats_json.push(report.stats.to_json());
        runs.push(
            JsonObject::new()
                .str("kind", "overhead")
                .u64("replicas", k as u64)
                .f64("wall_seconds", report.wall_seconds)
                .f64("wall_x", report.wall_seconds / base_wall)
                .u64("sim_cycles", report.stats.max_shard_cycles)
                .u64("served", report.stats.served)
                .finish(),
        );
    }

    // Family 2: stealth detection at each K.
    for k in 1..=3usize {
        let report = run(&cfg, k, None, &stealth)?;
        let sup = report.supervision.as_ref().expect("replicated runs report supervision");
        let strikes = sup.per_shard.len() as u64; // the profile plans one strike per shard
        let rate = if strikes == 0 { 0.0 } else { sup.divergences as f64 / strikes as f64 };
        let identical = report.stats.to_json() == clean_stats_json[k - 1];
        runs.push(
            JsonObject::new()
                .str("kind", "stealth")
                .u64("replicas", k as u64)
                .u64("strikes", strikes)
                .u64("divergences", sup.divergences)
                .f64("detection_rate", rate)
                .u64("divergent_masked", sup.divergent_masked)
                .bool("stats_identical_to_clean", identical)
                .finish(),
        );
    }

    // Family 3: rejuvenation cadence sweep at K=3.
    let k3_wall = run(&cfg, 3, None, &off)?.wall_seconds.max(1e-9);
    for every in [4u64, 8, 16] {
        let report = run(&cfg, 3, Some(every), &off)?;
        let sup = report.supervision.as_ref().expect("replicated runs report supervision");
        runs.push(
            JsonObject::new()
                .str("kind", "rejuvenation")
                .u64("replicas", 3)
                .u64("every", every)
                .u64("rejuvenations", sup.rejuvenations)
                .f64("mean_revive_ms", sup.mean_time_to_revive_ms)
                .f64("wall_seconds", report.wall_seconds)
                .f64("wall_x_vs_k3", report.wall_seconds / k3_wall)
                .finish(),
        );
    }

    Ok(JsonObject::new()
        .str("bench", "replica")
        .str("mode", if quick { "quick" } else { "full" })
        .u64("shards", bench_config(quick).shards as u64)
        .u64("requests_per_shard", u64::from(bench_config(quick).requests_per_shard))
        .raw("runs", &json_array(runs))
        .finish())
}
