//! One replica: a complete [`IndraSystem`] cell plus its digest cache.
//!
//! A cell is the unit the voting layer replicates — the same shape as a
//! fleet shard (same config, same deployed image, both pure functions
//! of the [`ShardPlan`]), driven closed-loop one request at a time so
//! the group can vote between deliveries. Replicas of one group are
//! built identically and fed the identical admitted stream; any ballot
//! disagreement is therefore evidence of corruption, not of scheduling.

use std::time::Instant;

use indra_core::{IndraSystem, RecoveryLevel, RunReport, RunState, SystemConfig, SystemState};
use indra_fleet::{FleetConfig, ShardError, ShardPlan};
use indra_mem::{PAGE_SHIFT, PAGE_SIZE};
use indra_workloads::{build_app_scaled, WorkloadSpec};

use crate::digest::{fnv1a, DigestCache, StateDigest, FNV_OFFSET};

/// Ballot verdict tag: request served.
pub const TAG_SERVED: u8 = 0;
/// Ballot verdict tag: attack detected and recovered.
pub const TAG_DETECTED: u8 = 1;
/// Ballot verdict tag: request quarantined by the group protocol.
pub const TAG_QUARANTINED: u8 = 2;
/// Ballot verdict tag: the cell died (halt, budget, or panic).
pub const TAG_DEAD: u8 = 255;

/// What one replica concluded about one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVerdict {
    /// Served; payload is the response latency in resurrectee cycles.
    Served {
        /// Delivery-to-response resurrectee cycles.
        cycles: u64,
    },
    /// The monitor fired and recovery ran at `level`.
    Detected {
        /// The recovery level applied.
        level: RecoveryLevel,
    },
    /// The cell halted or exhausted its instruction budget.
    Dead,
}

impl CellVerdict {
    /// Collapses the verdict into the `(tag, value)` pair a ballot
    /// carries. Latency cycles are deterministic, so they vote too.
    #[must_use]
    pub fn key(self) -> (u8, u64) {
        match self {
            CellVerdict::Served { cycles } => (TAG_SERVED, cycles),
            CellVerdict::Detected { level: RecoveryLevel::Micro } => (TAG_DETECTED, 0),
            CellVerdict::Detected { level: RecoveryLevel::Macro } => (TAG_DETECTED, 1),
            CellVerdict::Dead => (TAG_DEAD, 0),
        }
    }
}

/// One deterministic replica of a logical shard.
#[derive(Debug)]
pub struct ReplicaCell {
    sys: IndraSystem,
    slice: u64,
    budget_slices: u64,
    cache: DigestCache,
    started: Instant,
}

impl ReplicaCell {
    /// Builds a fresh cell for `plan`: same system config and deployed
    /// image as a fleet shard, with phys dirty tracking enabled so
    /// digests are incremental from the first request.
    pub fn build(cfg: &FleetConfig, plan: &ShardPlan) -> Result<ReplicaCell, ShardError> {
        let image = build_app_scaled(plan.app, cfg.scale);
        let sys_cfg = SystemConfig {
            machine: indra_sim::MachineConfig {
                fifo_entries: cfg.fifo_entries,
                cam_entries: cfg.cam_entries,
                fast_paths: cfg.fast_paths,
                superblocks: cfg.superblocks,
                ..indra_sim::MachineConfig::default()
            },
            scheme: cfg.scheme,
            monitoring: true,
            ..SystemConfig::default()
        };
        let mut sys = IndraSystem::new(sys_cfg);
        sys.deploy(&image).map_err(ShardError::Deploy)?;
        sys.machine_mut().phys_mut().enable_dirty_tracking();
        let per_request = WorkloadSpec::for_app(plan.app)
            .scaled_down(cfg.scale.max(1))
            .approx_insns_per_request()
            .max(50_000);
        let slice = cfg.run_slice_steps.max(1);
        let budget_slices = (per_request * 16).div_ceil(slice) + 2;
        Ok(ReplicaCell {
            sys,
            slice,
            budget_slices,
            cache: DigestCache::new(),
            started: Instant::now(),
        })
    }

    /// Delivers one request and runs the system to idle. Returns the
    /// verdict plus an FNV digest over the drained response bytes (the
    /// "output" leg of the ballot).
    pub fn deliver(&mut self, data: Vec<u8>, malicious: bool) -> (CellVerdict, u64) {
        let s0 = self.sys.report().samples.len();
        let d0 = self.sys.report().detections.len();
        let rid = self.sys.push_request(data, malicious);
        let mut slices_left = self.budget_slices;
        loop {
            match self.sys.run(self.slice) {
                RunState::Idle => break,
                RunState::Halted => return (CellVerdict::Dead, 0),
                RunState::BudgetExhausted => {
                    slices_left -= 1;
                    if slices_left == 0 {
                        return (CellVerdict::Dead, 0);
                    }
                }
            }
        }
        let mut output_hash = FNV_OFFSET;
        for r in &self.sys.take_responses() {
            output_hash = fnv1a(output_hash, &r.request_id.to_le_bytes());
            output_hash = fnv1a(output_hash, &r.data);
        }
        let report = self.sys.report();
        if let Some(s) = report.samples[s0..].iter().find(|s| s.request_id == rid) {
            return (CellVerdict::Served { cycles: s.cycles }, output_hash);
        }
        if let Some(d) = report.detections[d0..].last() {
            return (CellVerdict::Detected { level: d.level }, output_hash);
        }
        (CellVerdict::Dead, output_hash)
    }

    /// Incrementally digests the cell's current state.
    pub fn digest(&mut self) -> StateDigest {
        self.cache.digest(&mut self.sys)
    }

    /// The per-section small-state blobs the digest hashes (frames
    /// excluded) — what the property tests corrupt byte-by-byte.
    #[must_use]
    pub fn small_state_sections(&self) -> Vec<(&'static str, Vec<u8>)> {
        indra_persist::encode_state_sections(&self.sys.freeze_sans_phys())
    }

    /// Full restorable freeze (frames included) for checkpointing.
    #[must_use]
    pub fn freeze(&self) -> SystemState {
        self.sys.freeze()
    }

    /// Overwrites the cell with a frozen capture. The phys generation
    /// bump invalidates the digest cache automatically.
    pub fn restore(&mut self, state: &SystemState) {
        self.sys.restore_state(state);
    }

    /// Records a quarantined schedule index in the cell's report.
    pub fn quarantine(&mut self, seq: u64) {
        self.sys.note_quarantined(seq);
    }

    /// Flips one bit of one resident physical frame, selected by the
    /// salts — the stealth-chaos strike. Goes through the ordinary
    /// phys write path, so *no* trace record, fault event, or panic is
    /// produced: the trace monitor is structurally blind to it and only
    /// divergence voting can catch it. Returns `false` if no frame is
    /// resident yet (the strike is dropped).
    pub fn corrupt_bit(&mut self, frame_salt: u64, byte_salt: u64, bit: u8) -> bool {
        let ppns = self.sys.machine().phys().resident_ppns();
        if ppns.is_empty() {
            return false;
        }
        let ppn = ppns[usize::try_from(frame_salt % ppns.len() as u64).expect("index fits")];
        let offset = u32::try_from(byte_salt % u64::from(PAGE_SIZE)).expect("offset fits");
        let paddr = (ppn << PAGE_SHIFT) | offset;
        let phys = self.sys.machine_mut().phys_mut();
        let old = phys.read_u8(paddr);
        phys.write_u8(paddr, old ^ (1 << (bit % 8)));
        true
    }

    /// The cell's run report.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        self.sys.report()
    }

    /// Resurrectee cycles consumed by the service.
    #[must_use]
    pub fn sim_cycles(&self) -> u64 {
        self.sys.service_cycles()
    }

    /// Instructions retired across every core of the cell machine.
    #[must_use]
    pub fn insns(&self) -> u64 {
        let machine = self.sys.machine();
        (0..machine.num_cores()).map(|c| machine.core(c).retired()).sum()
    }

    /// Host wall-clock seconds since the cell was built.
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Superblock-engine counters summed over the cell machine's cores.
    #[must_use]
    pub fn superblock_stats(&self) -> indra_sim::SuperblockStats {
        let machine = self.sys.machine();
        let mut out = indra_sim::SuperblockStats::default();
        for c in 0..machine.num_cores() {
            out += machine.superblock_stats(c);
        }
        out
    }

    /// Predecode-cache counters summed over the cell machine's cores.
    #[must_use]
    pub fn predecode_stats(&self) -> indra_sim::PredecodeStats {
        let machine = self.sys.machine();
        let mut out = indra_sim::PredecodeStats::default();
        for c in 0..machine.num_cores() {
            out += machine.predecode_stats(c);
        }
        out
    }
}
