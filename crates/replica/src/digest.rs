//! Fast incremental state digests for divergence voting.
//!
//! Voting compares replicas after *every* request, so the digest must
//! cost O(dirty state), not O(full freeze). Two pieces make that work:
//!
//! * **Small state** — everything except physical frames — is captured
//!   with [`IndraSystem::freeze_sans_phys`] (no frame cloning) and
//!   walked per section by [`indra_persist::encode_state_sections`],
//!   reusing the persist codec's field walk so the digest covers
//!   exactly what a checkpoint covers. Each section hashes
//!   independently, which is what lets the property tests corrupt one
//!   section and pin that the digest moves.
//! * **Physical frames** are folded incrementally: the simulator's
//!   [dirty tracking](indra_mem::PhysicalMemory::take_dirty) names the
//!   frames written since the last digest, only those re-hash, and the
//!   per-frame digests fold in PPN order from a sorted map. A
//!   [restore](indra_mem::PhysicalMemory::restore_state) bumps the
//!   phys generation, which invalidates the cache wholesale.
//!
//! The hash is FNV-1a/64. Its per-byte step `h = (h ^ b) * PRIME` is a
//! bijection of the 64-bit state for fixed `b` (odd multiplier), so two
//! inputs of equal length differing in one byte *always* produce
//! different digests — single-byte-flip detection is a theorem, not a
//! probabilistic claim, which keeps the forall property tests
//! deterministic.

use std::collections::BTreeMap;

use indra_core::IndraSystem;
use indra_persist::encode_state_sections;

/// FNV-1a/64 offset basis — the seed every digest chain starts from.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into the running FNV-1a/64 state `h`.
#[must_use]
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a `u64` (little-endian) into the running digest.
#[must_use]
pub fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

/// One replica's state digest: per-section digests for diagnosis, the
/// folded physical-frame digest, and the single `value` ballots carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDigest {
    /// Per-section digests over the persist codec's small-state walk,
    /// in codec order (machine, os, monitor, scheme, hybrids, macros,
    /// in_flight, blocked, report).
    pub sections: Vec<(&'static str, u64)>,
    /// Digest over every resident physical frame, folded in PPN order.
    pub phys: u64,
    /// The chained whole-state digest (sections then phys).
    pub value: u64,
}

/// Incremental digest state for one replica cell.
///
/// Holds a per-frame digest per resident PPN plus the phys generation
/// it was built against. `digest` re-hashes only the frames dirtied
/// since the previous call; a generation bump (state restore) or first
/// use triggers a full rebuild. Frames are never unmapped outside a
/// restore, so the cache never holds a stale resident set.
#[derive(Debug, Default)]
pub struct DigestCache {
    frames: BTreeMap<u32, u64>,
    generation: u64,
    primed: bool,
}

impl DigestCache {
    /// An empty cache; the first `digest` call does a full build.
    #[must_use]
    pub fn new() -> DigestCache {
        DigestCache::default()
    }

    /// Digests `sys` — O(small state + dirty frames) when the cache is
    /// warm. Enables dirty tracking on the machine's physical memory if
    /// it is not already on (the enable itself forces a full rebuild).
    pub fn digest(&mut self, sys: &mut IndraSystem) -> StateDigest {
        let phys = sys.machine_mut().phys_mut();
        if !phys.dirty_tracking() {
            phys.enable_dirty_tracking();
            self.primed = false;
        }
        if !self.primed || phys.generation() != self.generation {
            self.frames.clear();
            let _ = phys.take_dirty();
            for ppn in phys.resident_ppns() {
                let frame = phys.frame(ppn).expect("listed frame is resident");
                self.frames.insert(ppn, fnv1a(FNV_OFFSET, frame));
            }
            self.generation = phys.generation();
            self.primed = true;
        } else {
            for ppn in phys.take_dirty() {
                let frame = phys.frame(ppn).expect("dirty frame is resident");
                self.frames.insert(ppn, fnv1a(FNV_OFFSET, frame));
            }
        }
        let mut phys_digest = FNV_OFFSET;
        for (&ppn, &d) in &self.frames {
            phys_digest = fnv1a_u64(phys_digest, u64::from(ppn));
            phys_digest = fnv1a_u64(phys_digest, d);
        }

        let state = sys.freeze_sans_phys();
        let sections: Vec<(&'static str, u64)> = encode_state_sections(&state)
            .iter()
            .map(|(name, bytes)| (*name, fnv1a(FNV_OFFSET, bytes)))
            .collect();
        let mut value = FNV_OFFSET;
        for &(name, d) in &sections {
            value = fnv1a(value, name.as_bytes());
            value = fnv1a_u64(value, d);
        }
        value = fnv1a_u64(value, phys_digest);
        StateDigest { sections, phys: phys_digest, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_flip_always_changes_the_hash() {
        // FNV-1a's per-byte step is a bijection for fixed input byte, so
        // equal-length inputs differing in exactly one byte must hash
        // apart. Exercise every position of a small buffer.
        let base = [0x5au8; 64];
        let h0 = fnv1a(FNV_OFFSET, &base);
        for pos in 0..base.len() {
            for bit in 0..8 {
                let mut b = base;
                b[pos] ^= 1 << bit;
                assert_ne!(fnv1a(FNV_OFFSET, &b), h0, "flip at {pos}.{bit} collided");
            }
        }
    }

    #[test]
    fn u64_fold_is_order_sensitive() {
        let a = fnv1a_u64(fnv1a_u64(FNV_OFFSET, 1), 2);
        let b = fnv1a_u64(fnv1a_u64(FNV_OFFSET, 2), 1);
        assert_ne!(a, b);
    }
}
