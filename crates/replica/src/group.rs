//! A replica group: K cells of one logical shard, voted per request.
//!
//! The group feeds every cell the identical admitted request stream and
//! votes on the resulting [`Ballot`]s — (verdict, output hash, state
//! digest). Byte-for-byte determinism (the repo's standing contract)
//! means agreement is the *only* correct outcome, so any disagreement
//! is a detection:
//!
//! * **K ≥ 3, strict majority** — the minority replicas are *masked*:
//!   revived from the durable majority checkpoint and replayed through
//!   the admitted tail (including the divergent request), after which
//!   their state matches the majority bit-for-bit. Service continues
//!   uninterrupted.
//! * **K = 2, or no majority** — divergence is *detected* but cannot be
//!   attributed. Every replica is revived to the pre-request checkpoint
//!   state and the request is retried once; transient corruption (the
//!   stealth-chaos case) is gone after revival, so the retry agrees. A
//!   repeat disagreement marks the request poison: it is quarantined on
//!   all replicas and the group moves on.
//!
//! Proactive rejuvenation restarts one replica at a time from the base
//! snapshot + WAL (the existing [`SnapshotStore`] path) on a staggered
//! cadence — replica `r` of `K` fires `r·N/K` requests out of phase —
//! so the group never loses its voting quorum to maintenance.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use indra_fleet::{shard_schedule, FleetConfig, ShardOutput, ShardPlan, StealthEvent};
use indra_persist::{CheckpointReceipt, PersistError, ShardCheckpointWriter, SnapshotStore};

use crate::cell::{ReplicaCell, TAG_DEAD, TAG_QUARANTINED};

/// What one replica submits to the vote for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ballot {
    /// Verdict tag (see the `TAG_*` constants).
    pub verdict_tag: u8,
    /// Verdict payload (latency cycles when served, recovery level
    /// when detected).
    pub verdict_val: u64,
    /// FNV digest over the drained response bytes.
    pub output_hash: u64,
    /// Whole-state digest after the delivery.
    pub digest: u64,
}

/// Group-level counters surfaced into the fleet's supervision stats.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupCounters {
    /// Requests on which any ballot disagreed.
    pub divergences: u64,
    /// Divergent replicas masked and revived from a majority checkpoint.
    pub divergent_masked: u64,
    /// Scheduled proactive rejuvenations performed.
    pub rejuvenations: u64,
    /// Requests quarantined after a persistent (post-retry) divergence.
    pub quarantined: u64,
    /// Stealth corruption strikes actually applied to a replica.
    pub stealth_applied: u64,
    /// Total wall milliseconds spent in revivals (masking, retries and
    /// rejuvenations).
    pub revive_wall_ms: f64,
    /// Number of revive events behind `revive_wall_ms`.
    pub revive_events: u64,
}

/// Returns the ballot held by a strict majority (> K/2), if any.
fn majority(ballots: &[Ballot]) -> Option<Ballot> {
    for b in ballots {
        if ballots.iter().filter(|o| *o == b).count() * 2 > ballots.len() {
            return Some(*b);
        }
    }
    None
}

fn all_equal(ballots: &[Ballot]) -> bool {
    ballots.windows(2).all(|w| w[0] == w[1])
}

/// K replicas of one logical shard plus the voting/revival protocol.
#[derive(Debug)]
pub struct ReplicaGroup {
    cfg: FleetConfig,
    plan: ShardPlan,
    k: usize,
    cells: Vec<ReplicaCell>,
    /// The full deterministic schedule; `cursor` admitted so far.
    schedule: Vec<(Vec<u8>, bool)>,
    tombstones: BTreeSet<u64>,
    cursor: u64,
    store: SnapshotStore,
    writer: ShardCheckpointWriter,
    checkpoint_every: u32,
    rejuvenate_every: Option<u64>,
    stealth: Vec<StealthEvent>,
    stealth_next: usize,
    wal: CheckpointReceipt,
    /// Counters the runner folds into [`indra_fleet::SupervisionStats`].
    pub counters: GroupCounters,
}

impl ReplicaGroup {
    /// Builds a K-cell group for `plan` over the store at `store`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(
        cfg: &FleetConfig,
        plan: ShardPlan,
        k: usize,
        checkpoint_every: u32,
        rejuvenate_every: Option<u64>,
        store: SnapshotStore,
        stealth: Vec<StealthEvent>,
    ) -> Result<ReplicaGroup, PersistError> {
        assert!(k >= 1, "a replica group needs at least one cell");
        let cells = (0..k)
            .map(|_| ReplicaCell::build(cfg, &plan).expect("replica cell builds from a valid plan"))
            .collect();
        let writer = store.shard_writer(plan.shard)?;
        let schedule =
            shard_schedule(cfg, &plan).into_iter().map(|t| (t.data, t.malicious)).collect();
        Ok(ReplicaGroup {
            cfg: cfg.clone(),
            plan,
            k,
            cells,
            schedule,
            tombstones: BTreeSet::new(),
            cursor: 0,
            store,
            writer,
            checkpoint_every,
            rejuvenate_every,
            stealth,
            stealth_next: 0,
            wal: CheckpointReceipt::default(),
            counters: GroupCounters::default(),
        })
    }

    /// Drives the whole schedule through the group. Returns whether the
    /// run completed (false = a majority of replicas died, which under
    /// determinism means the service itself deterministically dies).
    pub fn run(&mut self) -> Result<bool, PersistError> {
        for seq in 0..self.schedule.len() as u64 {
            if !self.step(seq)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// One request: stealth strikes due now, parallel delivery on every
    /// replica, the vote, then checkpoint/rejuvenation bookkeeping.
    fn step(&mut self, seq: u64) -> Result<bool, PersistError> {
        while let Some(ev) = self.stealth.get(self.stealth_next).copied() {
            if ev.at_served > seq {
                break;
            }
            let victim = usize::try_from(ev.replica_salt % self.k as u64).expect("index fits");
            if self.cells[victim].corrupt_bit(ev.frame_salt, ev.byte_salt, ev.bit) {
                self.counters.stealth_applied += 1;
            }
            self.stealth_next += 1;
        }

        let mut ballots = self.deliver_all(seq);
        if self.k >= 2 && !all_equal(&ballots) {
            self.counters.divergences += 1;
            ballots = self.resolve_divergence(seq, ballots)?;
        }
        self.cursor = seq + 1;
        let alive = match majority(&ballots) {
            Some(b) => b.verdict_tag != TAG_DEAD,
            None => false,
        };
        if !alive {
            return Ok(false);
        }
        self.maybe_checkpoint()?;
        self.maybe_rejuvenate()?;
        Ok(true)
    }

    /// Delivers request `seq` on every replica in parallel (one scoped
    /// worker thread per cell) and collects ballots. A panicking cell
    /// votes Dead.
    fn deliver_all(&mut self, seq: u64) -> Vec<Ballot> {
        let (data, malicious) = self.schedule[usize::try_from(seq).expect("seq fits")].clone();
        let mut ballots = vec![Ballot::default(); self.k];
        std::thread::scope(|scope| {
            let workers: Vec<_> = self
                .cells
                .iter_mut()
                .map(|cell| {
                    let data = data.clone();
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| {
                            let (verdict, output_hash) = cell.deliver(data, malicious);
                            let (verdict_tag, verdict_val) = verdict.key();
                            let digest = cell.digest().value;
                            Ballot { verdict_tag, verdict_val, output_hash, digest }
                        }))
                        .unwrap_or(Ballot { verdict_tag: TAG_DEAD, ..Ballot::default() })
                    })
                })
                .collect();
            for (slot, worker) in ballots.iter_mut().zip(workers) {
                *slot = worker.join().expect("replica worker never panics past catch_unwind");
            }
        });
        ballots
    }

    /// The divergence protocol (see the module docs for the policy).
    fn resolve_divergence(
        &mut self,
        seq: u64,
        mut ballots: Vec<Ballot>,
    ) -> Result<Vec<Ballot>, PersistError> {
        if self.k >= 3 {
            if let Some(maj) = majority(&ballots) {
                // Mask-and-revive: replay *through* the divergent
                // request so the minority lands on the majority state.
                #[allow(clippy::needless_range_loop)] // r indexes both ballots and cells
                for r in 0..self.k {
                    if ballots[r] != maj {
                        self.revive_replica(r, seq + 1)?;
                        self.counters.divergent_masked += 1;
                        let healed = self.cells[r].digest().value;
                        debug_assert_eq!(healed, maj.digest, "revived replica must match majority");
                        ballots[r] = maj;
                    }
                }
                return Ok(ballots);
            }
        }
        // K = 2 (or a K-way split): rewind everyone to the pre-request
        // state and retry once — transient corruption dies in revival.
        for r in 0..self.k {
            self.revive_replica(r, seq)?;
        }
        let retry = self.deliver_all(seq);
        if all_equal(&retry) {
            return Ok(retry);
        }
        // Persistent divergence: the request itself is poison for the
        // vote. Quarantine it everywhere and move on.
        for r in 0..self.k {
            self.revive_replica(r, seq)?;
        }
        self.tombstones.insert(seq);
        for cell in &mut self.cells {
            cell.quarantine(seq);
        }
        self.counters.quarantined += 1;
        Ok(vec![Ballot { verdict_tag: TAG_QUARANTINED, ..Ballot::default() }; self.k])
    }

    /// Revives replica `r` from the durable majority checkpoint (base
    /// snapshot + WAL via [`SnapshotStore::load_shard`]; a fresh cell if
    /// nothing was checkpointed yet) and replays the admitted stream up
    /// to — excluding — `upto`, honoring tombstones.
    fn revive_replica(&mut self, r: usize, upto: u64) -> Result<(), PersistError> {
        let t0 = Instant::now();
        let mut from = 0u64;
        match self.store.load_shard(self.plan.shard)? {
            Some(loaded) => {
                self.cells[r].restore(&loaded.state);
                let bytes: [u8; 8] =
                    loaded.progress.as_slice().try_into().expect("progress blob is a u64 cursor");
                from = u64::from_le_bytes(bytes);
            }
            None => {
                self.cells[r] = ReplicaCell::build(&self.cfg, &self.plan)
                    .expect("replica cell rebuilds from the same plan");
            }
        }
        for seq in from..upto {
            if self.tombstones.contains(&seq) {
                self.cells[r].quarantine(seq);
            } else {
                let (data, malicious) =
                    self.schedule[usize::try_from(seq).expect("seq fits")].clone();
                let _ = self.cells[r].deliver(data, malicious);
            }
        }
        self.counters.revive_events += 1;
        self.counters.revive_wall_ms += t0.elapsed().as_secs_f64() * 1e3;
        Ok(())
    }

    /// Checkpoints the leader's (post-agreement) state every
    /// `checkpoint_every` admitted requests, cursor in the progress
    /// blob. Any replica would do — they agree — the leader is just the
    /// canonical pick.
    fn maybe_checkpoint(&mut self) -> Result<(), PersistError> {
        if self.checkpoint_every == 0
            || !self.cursor.is_multiple_of(u64::from(self.checkpoint_every))
        {
            return Ok(());
        }
        let state = self.cells[0].freeze();
        self.wal.absorb(self.writer.checkpoint(&state, &self.cursor.to_le_bytes())?);
        Ok(())
    }

    /// Fires due scheduled rejuvenations. Replica `r` restarts when
    /// `cursor + r·N/K ≡ 0 (mod N)` — the offsets interleave restarts
    /// so at most one replica is down per request boundary and the
    /// group keeps its quorum.
    fn maybe_rejuvenate(&mut self) -> Result<(), PersistError> {
        let Some(n) = self.rejuvenate_every else { return Ok(()) };
        for r in 0..self.k {
            let offset = (r as u64 * n) / self.k as u64;
            if (self.cursor + offset).is_multiple_of(n) {
                self.revive_replica(r, self.cursor)?;
                self.counters.rejuvenations += 1;
            }
        }
        Ok(())
    }

    /// Collapses the group into the leader's [`ShardOutput`] (the same
    /// shape an unreplicated shard emits) plus the group counters.
    #[must_use]
    pub fn finish(self, completed: bool) -> (ShardOutput, GroupCounters) {
        let benign_sent = self.schedule.iter().filter(|(_, m)| !m).count() as u64;
        let attacks_sent = self.schedule.len() as u64 - benign_sent;
        let leader = &self.cells[0];
        let output = ShardOutput {
            report: leader.report().clone(),
            benign_sent,
            attacks_sent,
            faults_injected: 0,
            sim_cycles: leader.sim_cycles(),
            completed,
            insns: leader.insns(),
            wall_seconds: leader.wall_seconds(),
            superblocks: leader.superblock_stats(),
            predecode: leader.predecode_stats(),
            wal: self.wal,
            plan: self.plan,
        };
        (output, self.counters)
    }

    /// The group's plan.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }
}
