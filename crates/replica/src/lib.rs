#![warn(missing_docs)]
//! # indra-replica — replicated cells, divergence voting, rejuvenation
//!
//! The paper's architecture detects *monitored* failure modes: the
//! trace monitor sees control-flow and pointer violations because they
//! pass through instrumented paths. A corruption that never crosses a
//! monitored path — a flipped bit in a resident page, silently planted
//! — is invisible to it. This crate adds the classic systems answer,
//! adapted to the repo's determinism contract: run K byte-for-byte
//! deterministic replicas of each logical shard, feed them the
//! identical admitted request stream, and vote after every request on
//! (verdict, output hash, state digest). Under determinism, *any*
//! disagreement is a detection.
//!
//! * [`digest`] — O(dirty-state) incremental state digests (FNV-1a/64
//!   chained per persist-codec section + per dirty frame).
//! * [`cell`] — one replica: a complete [`indra_core::IndraSystem`]
//!   driven closed-loop, one request per ballot.
//! * [`group`] — the voting/revival protocol: majority masks (K ≥ 3),
//!   2-way detects, retries once and quarantines; plus staggered
//!   proactive rejuvenation from the durable checkpoint store.
//! * [`runner`] — the fleet-shaped entry point
//!   ([`run_fleet_replicated`]) whose [`indra_fleet::FleetStats`]
//!   remain a pure function of the config: stealth corruption at
//!   K ≥ 2 leaves them byte-identical to an undisturbed run.
//! * [`bench`] — the `BENCH_replica.json` sweep: detection rate and
//!   wall overhead at K = 1/2/3 and a rejuvenation-cadence sweep.

pub mod bench;
pub mod cell;
pub mod digest;
pub mod group;
pub mod runner;

pub use bench::replica_bench_json;
pub use cell::{CellVerdict, ReplicaCell, TAG_DEAD, TAG_DETECTED, TAG_QUARANTINED, TAG_SERVED};
pub use digest::{fnv1a, fnv1a_u64, DigestCache, StateDigest, FNV_OFFSET};
pub use group::{Ballot, GroupCounters, ReplicaGroup};
pub use runner::{run_fleet_replicated, ReplicaOptions};
