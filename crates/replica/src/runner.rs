//! The replicated fleet runner: one [`ReplicaGroup`] per shard.
//!
//! Mirrors [`indra_fleet::run_fleet`]'s aggregation exactly — leader
//! outputs fold through [`indra_fleet::aggregate_stats`] in shard
//! order — so [`indra_fleet::FleetStats`] keeps its determinism
//! contract: for K ≥ 2 a stealth-corrupted run's stats are
//! byte-identical to an undisturbed run's, because every corrupted
//! replica is revived onto the majority trajectory before it can steer
//! the group. Replication/rejuvenation counters are wall-clock-ish
//! host observations and live in [`SupervisionStats`] on the outer
//! [`FleetReport`], never inside `stats`.

use std::sync::mpsc;
use std::time::Instant;

use indra_bench::Histogram;
use indra_fleet::{
    aggregate_stats, plan_for_shard, ChaosConfig, FleetConfig, FleetReport, ShardHostPerf,
    ShardOutput, ShardSupervision, SupervisionStats,
};
use indra_persist::SnapshotStore;

use crate::group::{GroupCounters, ReplicaGroup};

/// Replication knobs layered on top of a [`FleetConfig`].
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Replicas per shard (K). 1 disables voting (baseline), 2
    /// detects-and-quarantines, 3 masks via majority.
    pub replicas: usize,
    /// Proactively rejuvenate each replica every N admitted requests
    /// (staggered across the group); `None` disables.
    pub rejuvenate_every: Option<u64>,
    /// Chaos plan source — only the `stealth` leg is consumed here; the
    /// host-level legs (kills, stalls, tears) belong to the supervisor.
    pub chaos: ChaosConfig,
}

impl Default for ReplicaOptions {
    fn default() -> ReplicaOptions {
        ReplicaOptions { replicas: 3, rejuvenate_every: None, chaos: ChaosConfig::off() }
    }
}

/// Runs the fleet with K replicas per shard and per-request divergence
/// voting. Returns the standard [`FleetReport`] with `supervision`
/// populated (divergence/rejuvenation counters, availability).
///
/// # Errors
///
/// Returns a message when the checkpoint store cannot be created or a
/// group's persistence fails.
///
/// # Panics
///
/// Panics if `opts.replicas == 0` or a shard worker thread dies outside
/// the group's own panic containment.
pub fn run_fleet_replicated(
    cfg: &FleetConfig,
    opts: &ReplicaOptions,
) -> Result<FleetReport, String> {
    assert!(opts.replicas >= 1, "--replicas must be at least 1");
    let started = Instant::now();

    // Groups need durable checkpoints for revival; default a cadence
    // when the config doesn't set one, and a scratch store when the
    // config names no directory.
    let checkpoint_every = if cfg.checkpoint_every > 0 { cfg.checkpoint_every } else { 4 };
    let (store_dir, scratch) = match &cfg.store_dir {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => {
            let dir = std::env::temp_dir().join(format!(
                "indra-replica-{}-{:08x}",
                std::process::id(),
                cfg.seed
            ));
            (dir, true)
        }
    };

    let (tx, rx) = mpsc::channel::<Result<(usize, ShardOutput, GroupCounters), String>>();
    std::thread::scope(|scope| {
        for shard in 0..cfg.shards {
            let tx = tx.clone();
            let store_dir = store_dir.clone();
            scope.spawn(move || {
                let run = || -> Result<(ShardOutput, GroupCounters), String> {
                    let store = SnapshotStore::create(&store_dir)
                        .map_err(|e| format!("shard {shard}: store: {e}"))?;
                    let plan = cfg.plan(shard);
                    let stealth = plan_for_shard(&opts.chaos, cfg, shard).stealth;
                    let mut group = ReplicaGroup::new(
                        cfg,
                        plan,
                        opts.replicas,
                        checkpoint_every,
                        opts.rejuvenate_every,
                        store,
                        stealth,
                    )
                    .map_err(|e| format!("shard {shard}: {e}"))?;
                    let completed = group.run().map_err(|e| format!("shard {shard}: {e}"))?;
                    Ok(group.finish(completed))
                };
                let msg = run().map(|(out, counters)| (shard, out, counters));
                tx.send(msg).expect("aggregator outlives shard workers");
            });
        }
        drop(tx);
    });

    let mut rows: Vec<(usize, ShardOutput, GroupCounters)> = Vec::with_capacity(cfg.shards);
    for msg in rx {
        rows.push(msg?);
    }
    rows.sort_by_key(|(shard, _, _)| *shard);

    let mut latency = Histogram::new();
    for (_, out, _) in &rows {
        for s in &out.report.samples {
            latency.record(s.cycles);
        }
    }
    let outputs: Vec<ShardOutput> = rows.iter().map(|(_, out, _)| clone_output(out)).collect();
    let stats = aggregate_stats(&outputs, latency);

    let shard_host: Vec<ShardHostPerf> = outputs
        .iter()
        .map(|o| ShardHostPerf {
            shard: o.plan.shard,
            insns: o.insns,
            wall_seconds: o.wall_seconds,
            superblocks: o.superblocks,
            predecode: o.predecode,
            wal_bytes: o.wal.bytes,
            wal_pages: o.wal.pages,
        })
        .collect();

    let mut sup = SupervisionStats {
        revivals: 0,
        crashes: 0,
        hangs: 0,
        harness_errors: 0,
        chaos_host_events: 0,
        quarantined_requests: 0,
        abandoned_shards: 0,
        availability: 0.0,
        mean_time_to_revive_ms: 0.0,
        divergences: 0,
        divergent_masked: 0,
        rejuvenations: 0,
        per_shard: Vec::with_capacity(rows.len()),
    };
    let mut revive_ms = 0.0;
    let mut revive_events = 0u64;
    let mut disposed = 0u64;
    let mut scheduled = 0u64;
    for (shard, out, counters) in &rows {
        sup.divergences += counters.divergences;
        sup.divergent_masked += counters.divergent_masked;
        sup.rejuvenations += counters.rejuvenations;
        sup.quarantined_requests += counters.quarantined;
        revive_ms += counters.revive_wall_ms;
        revive_events += counters.revive_events;
        disposed += out.report.served + out.report.detections.len() as u64;
        scheduled += out.benign_sent + out.attacks_sent;
        sup.per_shard.push(ShardSupervision {
            shard: *shard,
            revivals: 0,
            crashes: 0,
            hangs: 0,
            harness_errors: 0,
            quarantined: out.report.quarantined.clone(),
            abandoned: false,
            mean_time_to_revive_ms: 0.0,
            divergences: u32::try_from(counters.divergences).unwrap_or(u32::MAX),
            divergent_masked: u32::try_from(counters.divergent_masked).unwrap_or(u32::MAX),
            rejuvenations: u32::try_from(counters.rejuvenations).unwrap_or(u32::MAX),
        });
    }
    sup.availability = if scheduled == 0 { 1.0 } else { disposed as f64 / scheduled as f64 };
    sup.mean_time_to_revive_ms =
        if revive_events == 0 { 0.0 } else { revive_ms / revive_events as f64 };

    if scratch {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    let wall_req_per_sec =
        if wall_seconds > 0.0 { stats.served as f64 / wall_seconds } else { 0.0 };
    Ok(FleetReport { stats, wall_seconds, wall_req_per_sec, shard_host, supervision: Some(sup) })
}

/// [`ShardOutput`] has no `Clone` derive (it carries a full report);
/// rebuild one field-by-field for the aggregation pass.
fn clone_output(out: &ShardOutput) -> ShardOutput {
    ShardOutput {
        plan: out.plan.clone(),
        report: out.report.clone(),
        benign_sent: out.benign_sent,
        attacks_sent: out.attacks_sent,
        faults_injected: out.faults_injected,
        sim_cycles: out.sim_cycles,
        completed: out.completed,
        insns: out.insns,
        wall_seconds: out.wall_seconds,
        superblocks: out.superblocks,
        predecode: out.predecode,
        wal: out.wal,
    }
}
