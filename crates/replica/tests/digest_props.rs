//! Property tests for the voting digest.
//!
//! The two properties the voting layer leans on:
//!
//! 1. **Determinism** — two cells built from the same plan and fed the
//!    identical request stream produce identical digests after every
//!    delivery (this is what makes agreement the only correct vote).
//! 2. **Sensitivity** — flipping any single byte of any small-state
//!    section, or any bit of any resident physical frame, changes the
//!    digest. For FNV-1a over equal-length inputs this is structural
//!    (the per-byte step is a bijection), so the forall never flakes.

use indra_fleet::{shard_schedule, FleetConfig};
use indra_replica::{fnv1a, ReplicaCell, FNV_OFFSET};
use indra_rng::forall;

fn tiny() -> FleetConfig {
    FleetConfig { shards: 1, requests_per_shard: 5, ..FleetConfig::quick() }
}

#[test]
fn same_seed_same_stream_means_identical_digests() {
    let cfg = tiny();
    let plan = cfg.plan(0);
    let schedule = shard_schedule(&cfg, &plan);
    let mut a = ReplicaCell::build(&cfg, &plan).expect("cell a");
    let mut b = ReplicaCell::build(&cfg, &plan).expect("cell b");
    assert_eq!(a.digest(), b.digest(), "fresh cells must digest alike");
    for (i, req) in schedule.into_iter().enumerate() {
        let va = a.deliver(req.data.clone(), req.malicious);
        let vb = b.deliver(req.data, req.malicious);
        assert_eq!(va, vb, "verdicts split at request {i}");
        let da = a.digest();
        let db = b.digest();
        assert_eq!(da, db, "digests split at request {i}");
    }
}

#[test]
fn any_single_byte_section_corruption_changes_the_digest() {
    let cfg = tiny();
    let plan = cfg.plan(0);
    let schedule = shard_schedule(&cfg, &plan);
    let mut cell = ReplicaCell::build(&cfg, &plan).expect("cell");
    for req in schedule.into_iter().take(2) {
        let _ = cell.deliver(req.data, req.malicious);
    }
    let digest = cell.digest();
    // Take the exact section blobs the digest hashed and corrupt them:
    // for every section, a random byte/bit flip must move that
    // section's digest — and therefore the chained whole-state value.
    let state = cell.small_state_sections();
    assert_eq!(digest.sections.len(), state.len(), "digest covers every codec section");
    forall("replica.section_corruption", 64, |rng| {
        for (i, (name, bytes)) in state.iter().enumerate() {
            if bytes.is_empty() {
                continue;
            }
            let pos = usize::try_from(rng.range_u64(0, bytes.len() as u64 - 1)).expect("fits");
            let bit = rng.gen_u8() % 8;
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            let clean_hash = fnv1a(FNV_OFFSET, bytes);
            let corrupt_hash = fnv1a(FNV_OFFSET, &corrupt);
            assert_eq!(clean_hash, digest.sections[i].1, "section {name} hash is the digest's");
            assert_ne!(
                clean_hash, corrupt_hash,
                "flip at {name}[{pos}].{bit} must change the section digest"
            );
        }
    });
}

#[test]
fn any_resident_frame_bit_flip_changes_the_digest() {
    let cfg = tiny();
    let plan = cfg.plan(0);
    forall("replica.phys_corruption", 12, |rng| {
        let mut cell = ReplicaCell::build(&cfg, &plan).expect("cell");
        let schedule = shard_schedule(&cfg, &plan);
        for req in schedule.into_iter().take(1) {
            let _ = cell.deliver(req.data, req.malicious);
        }
        let before = cell.digest();
        let struck = cell.corrupt_bit(rng.next_u64(), rng.next_u64(), rng.gen_u8() % 8);
        assert!(struck, "a deployed cell always has resident frames");
        let after = cell.digest();
        assert_ne!(before.phys, after.phys, "frame flip must move the phys digest");
        assert_ne!(before.value, after.value, "frame flip must move the chained value");
        assert_eq!(before.sections, after.sections, "small state is untouched");
    });
}
